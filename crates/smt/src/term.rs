//! Hash-consed term DAG for quantifier-free bitvector formulas.
//!
//! This is the workspace's stand-in for Z3 (§3.4.4): Symback builds one term
//! per symbolic stack value ("all data used in symbolic execution are
//! represented as Z3 bit vectors"), and the constraint flipper asserts
//! Boolean terms over them. Widths are 1–64 bits — every Wasm value fits
//! (the 128-bit `asset` struct is two 64-bit memory words).
//!
//! Constructors fold constants aggressively: on concolic traces most
//! operands are concrete, so the DAG stays small.

use std::collections::HashMap;

/// Index of a term in its [`TermPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

/// A term's sort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sort {
    /// Boolean.
    Bool,
    /// Bitvector of the given width (1..=64).
    BitVec(u32),
}

impl Sort {
    /// The bitvector width.
    ///
    /// # Panics
    ///
    /// Panics when called on `Bool`.
    pub fn width(self) -> u32 {
        match self {
            Sort::BitVec(w) => w,
            Sort::Bool => panic!("Bool has no width"),
        }
    }
}

/// Binary bitvector operators (both operands and result share a width,
/// except comparisons which are Bool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BvOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (x/0 = all-ones, the SMT-LIB convention).
    UDiv,
    /// Unsigned remainder (x%0 = x).
    URem,
    /// Signed division.
    SDiv,
    /// Signed remainder.
    SRem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (shift amount taken modulo width, Wasm-style).
    Shl,
    /// Logical shift right (amount modulo width).
    LShr,
    /// Arithmetic shift right (amount modulo width).
    AShr,
    /// Rotate left (amount modulo width).
    Rotl,
    /// Rotate right (amount modulo width).
    Rotr,
}

/// Bitvector comparison predicates (result sort Bool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
}

/// The structure of a term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermKind {
    /// Boolean constant.
    BoolConst(bool),
    /// Bitvector constant (`bits` is truncated to `width`).
    BvConst {
        /// Width in bits.
        width: u32,
        /// The value, LSB-aligned.
        bits: u64,
    },
    /// A free bitvector variable.
    Var {
        /// Width in bits.
        width: u32,
        /// Index into the pool's variable table.
        var: u32,
    },
    /// Boolean negation.
    Not(TermId),
    /// Boolean conjunction.
    AndB(TermId, TermId),
    /// Boolean disjunction.
    OrB(TermId, TermId),
    /// Binary bitvector operation.
    Bv(BvOp, TermId, TermId),
    /// Bitwise complement.
    BvNot(TermId),
    /// Two's-complement negation.
    BvNeg(TermId),
    /// Population count (same width as the operand) — the obfuscator's
    /// encoding primitive (§4.3), which WASAI must solve through.
    Popcnt(TermId),
    /// Comparison predicate.
    Cmp(CmpOp, TermId, TermId),
    /// Concatenation: `hi ++ lo` (hi occupies the upper bits).
    Concat(TermId, TermId),
    /// Bit extraction: bits `lo..=hi` of the operand.
    Extract {
        /// Operand.
        term: TermId,
        /// Highest extracted bit.
        hi: u32,
        /// Lowest extracted bit.
        lo: u32,
    },
    /// Zero extension by `add` bits.
    ZeroExt {
        /// Operand.
        term: TermId,
        /// Bits added.
        add: u32,
    },
    /// Sign extension by `add` bits.
    SignExt {
        /// Operand.
        term: TermId,
        /// Bits added.
        add: u32,
    },
    /// If-then-else over two terms of equal sort.
    Ite(TermId, TermId, TermId),
}

/// A registered variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    /// Human-readable name (unique).
    pub name: String,
    /// Width in bits.
    pub width: u32,
}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

fn sext(bits: u64, width: u32) -> i64 {
    let shift = 64 - width;
    ((bits << shift) as i64) >> shift
}

/// The arena of hash-consed terms.
#[derive(Debug, Default)]
pub struct TermPool {
    terms: Vec<(TermKind, Sort)>,
    intern: HashMap<TermKind, TermId>,
    vars: Vec<VarInfo>,
    var_names: HashMap<String, u32>,
}

impl TermPool {
    /// An empty pool.
    pub fn new() -> Self {
        TermPool::default()
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no terms exist.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The kind of a term.
    pub fn kind(&self, t: TermId) -> &TermKind {
        &self.terms[t.0 as usize].0
    }

    /// The sort of a term.
    pub fn sort(&self, t: TermId) -> Sort {
        self.terms[t.0 as usize].1
    }

    /// The registered variables, in creation order.
    pub fn vars(&self) -> &[VarInfo] {
        &self.vars
    }

    /// The constant value of a term, if it is a constant.
    pub fn as_const(&self, t: TermId) -> Option<u64> {
        match *self.kind(t) {
            TermKind::BvConst { bits, .. } => Some(bits),
            TermKind::BoolConst(b) => Some(b as u64),
            _ => None,
        }
    }

    fn intern(&mut self, kind: TermKind, sort: Sort) -> TermId {
        if let Some(&id) = self.intern.get(&kind) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push((kind.clone(), sort));
        self.intern.insert(kind, id);
        id
    }

    /// Boolean constant.
    pub fn bool_const(&mut self, v: bool) -> TermId {
        self.intern(TermKind::BoolConst(v), Sort::Bool)
    }

    /// Bitvector constant.
    ///
    /// # Panics
    ///
    /// Panics on width 0 or > 64.
    pub fn bv_const(&mut self, bits: u64, width: u32) -> TermId {
        assert!((1..=64).contains(&width), "width {width} out of range");
        self.intern(
            TermKind::BvConst {
                width,
                bits: bits & mask(width),
            },
            Sort::BitVec(width),
        )
    }

    /// A fresh-or-existing named variable.
    ///
    /// # Panics
    ///
    /// Panics if the name exists with a different width.
    pub fn var(&mut self, name: &str, width: u32) -> TermId {
        assert!((1..=64).contains(&width), "width {width} out of range");
        let var = match self.var_names.get(name) {
            Some(&v) => {
                assert_eq!(self.vars[v as usize].width, width, "width clash for {name}");
                v
            }
            None => {
                let v = self.vars.len() as u32;
                self.vars.push(VarInfo {
                    name: name.to_string(),
                    width,
                });
                self.var_names.insert(name.to_string(), v);
                v
            }
        };
        self.intern(TermKind::Var { width, var }, Sort::BitVec(width))
    }

    /// Look up a variable id by name.
    pub fn var_index(&self, name: &str) -> Option<u32> {
        self.var_names.get(name).copied()
    }

    /// Boolean negation (folds constants and double negation).
    pub fn not(&mut self, t: TermId) -> TermId {
        match *self.kind(t) {
            TermKind::BoolConst(b) => self.bool_const(!b),
            TermKind::Not(inner) => inner,
            _ => self.intern(TermKind::Not(t), Sort::Bool),
        }
    }

    /// Boolean conjunction.
    pub fn and(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.as_const(a), self.as_const(b)) {
            (Some(0), _) | (_, Some(0)) => self.bool_const(false),
            (Some(1), _) => b,
            (_, Some(1)) => a,
            _ if a == b => a,
            _ => self.intern(TermKind::AndB(a.min(b), a.max(b)), Sort::Bool),
        }
    }

    /// Boolean disjunction.
    pub fn or(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.as_const(a), self.as_const(b)) {
            (Some(1), _) | (_, Some(1)) => self.bool_const(true),
            (Some(0), _) => b,
            (_, Some(0)) => a,
            _ if a == b => a,
            _ => self.intern(TermKind::OrB(a.min(b), a.max(b)), Sort::Bool),
        }
    }

    /// Conjunction of many terms.
    pub fn and_all(&mut self, terms: &[TermId]) -> TermId {
        let mut acc = self.bool_const(true);
        for &t in terms {
            acc = self.and(acc, t);
        }
        acc
    }

    fn fold_bv(op: BvOp, x: u64, y: u64, w: u32) -> u64 {
        let m = mask(w);
        let sh = (y % w as u64) as u32;
        let r = match op {
            BvOp::Add => x.wrapping_add(y),
            BvOp::Sub => x.wrapping_sub(y),
            BvOp::Mul => x.wrapping_mul(y),
            BvOp::UDiv => x.checked_div(y).unwrap_or(m),
            BvOp::URem => {
                if y == 0 {
                    x
                } else {
                    x % y
                }
            }
            BvOp::SDiv => {
                let sx = sext(x, w);
                let sy = sext(y, w);
                if sy == 0 {
                    if sx < 0 {
                        1
                    } else {
                        m
                    }
                } else {
                    sx.wrapping_div(sy) as u64
                }
            }
            BvOp::SRem => {
                let sx = sext(x, w);
                let sy = sext(y, w);
                if sy == 0 {
                    x
                } else {
                    sx.wrapping_rem(sy) as u64
                }
            }
            BvOp::And => x & y,
            BvOp::Or => x | y,
            BvOp::Xor => x ^ y,
            BvOp::Shl => {
                if sh == 0 {
                    x
                } else {
                    x << sh
                }
            }
            BvOp::LShr => {
                if sh == 0 {
                    x
                } else {
                    (x & m) >> sh
                }
            }
            BvOp::AShr => (sext(x, w) >> sh) as u64,
            BvOp::Rotl => {
                if sh == 0 {
                    x
                } else {
                    ((x << sh) | ((x & m) >> (w - sh))) & m
                }
            }
            BvOp::Rotr => {
                if sh == 0 {
                    x
                } else {
                    (((x & m) >> sh) | (x << (w - sh))) & m
                }
            }
        };
        r & m
    }

    /// Binary bitvector operation.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn bv(&mut self, op: BvOp, a: TermId, b: TermId) -> TermId {
        let w = self.sort(a).width();
        assert_eq!(w, self.sort(b).width(), "width mismatch in {op:?}");
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            return self.bv_const(Self::fold_bv(op, x, y, w), w);
        }
        // Identity rewrites.
        match (op, self.as_const(a), self.as_const(b)) {
            (BvOp::Add | BvOp::Or | BvOp::Xor | BvOp::Shl | BvOp::LShr, _, Some(0)) => return a,
            (BvOp::Add | BvOp::Or | BvOp::Xor, Some(0), _) => return b,
            (BvOp::Sub, _, Some(0)) => return a,
            (BvOp::Mul | BvOp::And, _, Some(0)) => return self.bv_const(0, w),
            (BvOp::Mul | BvOp::And, Some(0), _) => return self.bv_const(0, w),
            (BvOp::Mul, _, Some(1)) => return a,
            (BvOp::Mul, Some(1), _) => return b,
            _ => {}
        }
        if op == BvOp::Xor && a == b {
            return self.bv_const(0, w);
        }
        if op == BvOp::Sub && a == b {
            return self.bv_const(0, w);
        }
        if (op == BvOp::And || op == BvOp::Or) && a == b {
            return a;
        }
        self.intern(TermKind::Bv(op, a, b), Sort::BitVec(w))
    }

    /// Bitwise complement.
    pub fn bv_not(&mut self, a: TermId) -> TermId {
        let w = self.sort(a).width();
        if let Some(x) = self.as_const(a) {
            return self.bv_const(!x, w);
        }
        if let TermKind::BvNot(inner) = *self.kind(a) {
            return inner;
        }
        self.intern(TermKind::BvNot(a), Sort::BitVec(w))
    }

    /// Two's-complement negation.
    pub fn bv_neg(&mut self, a: TermId) -> TermId {
        let w = self.sort(a).width();
        if let Some(x) = self.as_const(a) {
            return self.bv_const(x.wrapping_neg(), w);
        }
        self.intern(TermKind::BvNeg(a), Sort::BitVec(w))
    }

    /// Population count.
    pub fn popcnt(&mut self, a: TermId) -> TermId {
        let w = self.sort(a).width();
        if let Some(x) = self.as_const(a) {
            return self.bv_const((x & mask(w)).count_ones() as u64, w);
        }
        self.intern(TermKind::Popcnt(a), Sort::BitVec(w))
    }

    /// Comparison predicate.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn cmp(&mut self, op: CmpOp, a: TermId, b: TermId) -> TermId {
        let w = self.sort(a).width();
        assert_eq!(w, self.sort(b).width(), "width mismatch in {op:?}");
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            let r = match op {
                CmpOp::Eq => x == y,
                CmpOp::Ult => x < y,
                CmpOp::Ule => x <= y,
                CmpOp::Slt => sext(x, w) < sext(y, w),
                CmpOp::Sle => sext(x, w) <= sext(y, w),
            };
            return self.bool_const(r);
        }
        if a == b {
            return self.bool_const(matches!(op, CmpOp::Eq | CmpOp::Ule | CmpOp::Sle));
        }
        self.intern(TermKind::Cmp(op, a, b), Sort::Bool)
    }

    /// Equality shortcut.
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        self.cmp(CmpOp::Eq, a, b)
    }

    /// Inequality shortcut.
    pub fn ne(&mut self, a: TermId, b: TermId) -> TermId {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// Concatenation (`hi` above `lo`).
    ///
    /// # Panics
    ///
    /// Panics if the result exceeds 64 bits.
    pub fn concat(&mut self, hi: TermId, lo: TermId) -> TermId {
        let wh = self.sort(hi).width();
        let wl = self.sort(lo).width();
        assert!(wh + wl <= 64, "concat width {} exceeds 64", wh + wl);
        if let (Some(h), Some(l)) = (self.as_const(hi), self.as_const(lo)) {
            return self.bv_const((h << wl) | (l & mask(wl)), wh + wl);
        }
        self.intern(TermKind::Concat(hi, lo), Sort::BitVec(wh + wl))
    }

    /// Extract bits `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics when the range is invalid for the operand width.
    pub fn extract(&mut self, t: TermId, hi: u32, lo: u32) -> TermId {
        let w = self.sort(t).width();
        assert!(
            hi < w && lo <= hi,
            "extract [{hi}:{lo}] out of range for width {w}"
        );
        if hi == w - 1 && lo == 0 {
            return t;
        }
        if let Some(x) = self.as_const(t) {
            return self.bv_const((x >> lo) & mask(hi - lo + 1), hi - lo + 1);
        }
        self.intern(
            TermKind::Extract { term: t, hi, lo },
            Sort::BitVec(hi - lo + 1),
        )
    }

    /// Zero-extend by `add` bits (no-op for `add == 0`).
    pub fn zero_ext(&mut self, t: TermId, add: u32) -> TermId {
        if add == 0 {
            return t;
        }
        let w = self.sort(t).width();
        assert!(w + add <= 64, "zero_ext beyond 64 bits");
        if let Some(x) = self.as_const(t) {
            return self.bv_const(x & mask(w), w + add);
        }
        self.intern(TermKind::ZeroExt { term: t, add }, Sort::BitVec(w + add))
    }

    /// Sign-extend by `add` bits (no-op for `add == 0`).
    pub fn sign_ext(&mut self, t: TermId, add: u32) -> TermId {
        if add == 0 {
            return t;
        }
        let w = self.sort(t).width();
        assert!(w + add <= 64, "sign_ext beyond 64 bits");
        if let Some(x) = self.as_const(t) {
            return self.bv_const(sext(x, w) as u64, w + add);
        }
        self.intern(TermKind::SignExt { term: t, add }, Sort::BitVec(w + add))
    }

    /// If-then-else.
    ///
    /// # Panics
    ///
    /// Panics if the branches' sorts differ or `cond` is not Bool.
    pub fn ite(&mut self, cond: TermId, then_t: TermId, else_t: TermId) -> TermId {
        assert_eq!(self.sort(cond), Sort::Bool, "ite condition must be Bool");
        assert_eq!(
            self.sort(then_t),
            self.sort(else_t),
            "ite branch sorts differ"
        );
        match self.as_const(cond) {
            Some(1) => then_t,
            Some(0) => else_t,
            _ if then_t == else_t => then_t,
            _ => self.intern(TermKind::Ite(cond, then_t, else_t), self.sort(then_t)),
        }
    }

    /// Convert a Bool to a 1-bit-vector-like width-w 0/1 value.
    pub fn bool_to_bv(&mut self, b: TermId, width: u32) -> TermId {
        let one = self.bv_const(1, width);
        let zero = self.bv_const(0, width);
        self.ite(b, one, zero)
    }

    /// Evaluate a term under a full variable assignment (`values[var]`).
    ///
    /// Used for model validation and differential testing of the bit-blaster.
    pub fn eval(&self, t: TermId, values: &[u64]) -> u64 {
        match *self.kind(t) {
            TermKind::BoolConst(b) => b as u64,
            TermKind::BvConst { bits, .. } => bits,
            TermKind::Var { var, width } => values[var as usize] & mask(width),
            TermKind::Not(x) => (self.eval(x, values) == 0) as u64,
            TermKind::AndB(a, b) => (self.eval(a, values) != 0 && self.eval(b, values) != 0) as u64,
            TermKind::OrB(a, b) => (self.eval(a, values) != 0 || self.eval(b, values) != 0) as u64,
            TermKind::Bv(op, a, b) => {
                let w = self.sort(a).width();
                Self::fold_bv(op, self.eval(a, values), self.eval(b, values), w)
            }
            TermKind::BvNot(a) => !self.eval(a, values) & mask(self.sort(a).width()),
            TermKind::BvNeg(a) => self.eval(a, values).wrapping_neg() & mask(self.sort(a).width()),
            TermKind::Popcnt(a) => {
                (self.eval(a, values) & mask(self.sort(a).width())).count_ones() as u64
            }
            TermKind::Cmp(op, a, b) => {
                let w = self.sort(a).width();
                let x = self.eval(a, values);
                let y = self.eval(b, values);
                (match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ult => x < y,
                    CmpOp::Ule => x <= y,
                    CmpOp::Slt => sext(x, w) < sext(y, w),
                    CmpOp::Sle => sext(x, w) <= sext(y, w),
                }) as u64
            }
            TermKind::Concat(hi, lo) => {
                let wl = self.sort(lo).width();
                (self.eval(hi, values) << wl) | (self.eval(lo, values) & mask(wl))
            }
            TermKind::Extract { term, hi, lo } => {
                (self.eval(term, values) >> lo) & mask(hi - lo + 1)
            }
            TermKind::ZeroExt { term, .. } => {
                self.eval(term, values) & mask(self.sort(term).width())
            }
            TermKind::SignExt { term, add } => {
                let w = self.sort(term).width();
                (sext(self.eval(term, values), w) as u64) & mask(w + add)
            }
            TermKind::Ite(c, a, b) => {
                if self.eval(c, values) != 0 {
                    self.eval(a, values)
                } else {
                    self.eval(b, values)
                }
            }
        }
    }

    /// True when the term's DAG contains any variable (i.e., is symbolic).
    pub fn is_symbolic(&self, t: TermId) -> bool {
        match *self.kind(t) {
            TermKind::BoolConst(_) | TermKind::BvConst { .. } => false,
            TermKind::Var { .. } => true,
            TermKind::Not(a)
            | TermKind::BvNot(a)
            | TermKind::BvNeg(a)
            | TermKind::Popcnt(a)
            | TermKind::Extract { term: a, .. }
            | TermKind::ZeroExt { term: a, .. }
            | TermKind::SignExt { term: a, .. } => self.is_symbolic(a),
            TermKind::AndB(a, b)
            | TermKind::OrB(a, b)
            | TermKind::Bv(_, a, b)
            | TermKind::Cmp(_, a, b)
            | TermKind::Concat(a, b) => self.is_symbolic(a) || self.is_symbolic(b),
            TermKind::Ite(c, a, b) => {
                self.is_symbolic(c) || self.is_symbolic(a) || self.is_symbolic(b)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_deduplicates() {
        let mut p = TermPool::new();
        let a = p.bv_const(5, 32);
        let b = p.bv_const(5, 32);
        assert_eq!(a, b);
        let x = p.var("x", 32);
        let s1 = p.bv(BvOp::Add, x, a);
        let s2 = p.bv(BvOp::Add, x, b);
        assert_eq!(s1, s2);
    }

    #[test]
    fn constant_folding() {
        let mut p = TermPool::new();
        let a = p.bv_const(7, 32);
        let b = p.bv_const(5, 32);
        let sum = p.bv(BvOp::Add, a, b);
        assert_eq!(p.as_const(sum), Some(12));
        let cmp = p.cmp(CmpOp::Ult, b, a);
        assert_eq!(p.as_const(cmp), Some(1));
    }

    #[test]
    fn wrapping_and_division_conventions() {
        let mut p = TermPool::new();
        let max = p.bv_const(u64::MAX, 64);
        let one = p.bv_const(1, 64);
        let wrapped = p.bv(BvOp::Add, max, one);
        assert_eq!(p.as_const(wrapped), Some(0));
        let zero = p.bv_const(0, 32);
        let x = p.bv_const(10, 32);
        let div0 = p.bv(BvOp::UDiv, x, zero);
        assert_eq!(
            p.as_const(div0),
            Some(0xffff_ffff),
            "x/0 = all-ones (SMT-LIB)"
        );
        let rem0 = p.bv(BvOp::URem, x, zero);
        assert_eq!(p.as_const(rem0), Some(10), "x%0 = x (SMT-LIB)");
    }

    #[test]
    fn identity_rewrites() {
        let mut p = TermPool::new();
        let x = p.var("x", 64);
        let zero = p.bv_const(0, 64);
        assert_eq!(p.bv(BvOp::Add, x, zero), x);
        assert_eq!(p.bv(BvOp::Xor, x, x), zero);
        assert_eq!(p.bv(BvOp::And, x, zero), zero);
        let e = p.eq(x, x);
        assert_eq!(p.as_const(e), Some(1));
    }

    #[test]
    fn extract_concat_roundtrip() {
        let mut p = TermPool::new();
        let c = p.bv_const(0xdead_beef, 32);
        let hi = p.extract(c, 31, 16);
        let lo = p.extract(c, 15, 0);
        assert_eq!(p.as_const(hi), Some(0xdead));
        assert_eq!(p.as_const(lo), Some(0xbeef));
        let back = p.concat(hi, lo);
        assert_eq!(p.as_const(back), Some(0xdead_beef));
    }

    #[test]
    fn sign_extension_semantics() {
        let mut p = TermPool::new();
        let neg = p.bv_const(0x80, 8);
        let wide = p.sign_ext(neg, 24);
        assert_eq!(p.as_const(wide), Some(0xffff_ff80));
        let pos = p.bv_const(0x7f, 8);
        let wide2 = p.sign_ext(pos, 24);
        assert_eq!(p.as_const(wide2), Some(0x7f));
    }

    #[test]
    fn eval_agrees_with_folding_on_random_ops() {
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let y = p.var("y", 32);
        let ops = [
            BvOp::Add,
            BvOp::Sub,
            BvOp::Mul,
            BvOp::And,
            BvOp::Or,
            BvOp::Xor,
            BvOp::Shl,
        ];
        for op in ops {
            let t = p.bv(op, x, y);
            for (vx, vy) in [(3u64, 5u64), (0xffff_ffff, 1), (0, 0), (123_456, 654_321)] {
                let via_eval = p.eval(t, &[vx, vy]);
                let direct = TermPool::fold_bv(op, vx, vy, 32);
                assert_eq!(via_eval, direct, "{op:?} on ({vx}, {vy})");
            }
        }
    }

    #[test]
    fn popcnt_folds_and_evals() {
        let mut p = TermPool::new();
        let c = p.bv_const(0b1011_0110, 32);
        let pc = p.popcnt(c);
        assert_eq!(p.as_const(pc), Some(5));
        let x = p.var("x", 64);
        let pcx = p.popcnt(x);
        assert_eq!(p.eval(pcx, &[u64::MAX]), 64);
    }

    #[test]
    fn symbolic_detection() {
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let c = p.bv_const(4, 32);
        let mixed = p.bv(BvOp::Add, x, c);
        assert!(p.is_symbolic(mixed));
        assert!(!p.is_symbolic(c));
    }

    #[test]
    fn ite_simplifications() {
        let mut p = TermPool::new();
        let t = p.bool_const(true);
        let a = p.bv_const(1, 8);
        let b = p.bv_const(2, 8);
        assert_eq!(p.ite(t, a, b), a);
        let x = p.var("c", 32);
        let zero = p.bv_const(0, 32);
        let cond = p.ne(x, zero);
        assert_eq!(p.ite(cond, a, a), a);
    }
}
