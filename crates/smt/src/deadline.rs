//! Cooperative wall-clock deadlines (the campaign watchdog).
//!
//! The virtual clock bounds how much *simulated* work a campaign performs,
//! but an adversarial wild contract can still make one unit of simulated
//! work arbitrarily expensive in wall-clock terms (pathological SAT
//! instances, gigantic traces). A [`Deadline`] is the second line of
//! defence: a shared point in wall-clock time that every long-running stage
//! — the fuzzing loop, symbolic replay, the SAT search — polls cooperatively
//! and degrades gracefully at, instead of spinning.
//!
//! `Deadline` lives in `wasai-smt` (the lowest crate with a long-running
//! loop) so the solver, the replayer and the engine can all share one type
//! without a dependency cycle.
//!
//! A `Deadline` is `Copy`: threading it through configs and budgets costs
//! nothing, and [`Deadline::NONE`] (the default) compiles the checks down to
//! an `Option` test, preserving the fully deterministic no-watchdog mode.

use std::time::{Duration, Instant};

/// A point in wall-clock time after which cooperative stages should stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// No deadline: checks always pass, behavior is fully deterministic.
    pub const NONE: Deadline = Deadline { at: None };

    /// A deadline `d` from now.
    pub fn after(d: Duration) -> Self {
        Deadline {
            at: Instant::now().checked_add(d),
        }
    }

    /// A deadline a fractional number of seconds from now.
    pub fn after_secs(secs: f64) -> Self {
        Deadline::after(Duration::from_secs_f64(secs.max(0.0)))
    }

    /// True if a deadline is set (even if already expired).
    pub fn is_set(&self) -> bool {
        self.at.is_some()
    }

    /// True once the deadline has passed. Never true for [`Deadline::NONE`].
    pub fn expired(&self) -> bool {
        match self.at {
            Some(at) => Instant::now() >= at,
            None => false,
        }
    }

    /// Time left, `None` when no deadline is set, zero when expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// The earlier of two deadlines (`NONE` is treated as "never").
    pub fn earliest(self, other: Deadline) -> Deadline {
        match (self.at, other.at) {
            (Some(a), Some(b)) => Deadline { at: Some(a.min(b)) },
            (Some(a), None) => Deadline { at: Some(a) },
            (None, b) => Deadline { at: b },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        assert!(!Deadline::NONE.expired());
        assert!(!Deadline::NONE.is_set());
        assert_eq!(Deadline::NONE.remaining(), None);
    }

    #[test]
    fn past_deadline_is_expired() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.is_set());
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn future_deadline_is_live() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining().unwrap() > Duration::from_secs(3500));
    }

    #[test]
    fn earliest_picks_the_sooner_deadline() {
        let soon = Deadline::after(Duration::from_secs(1));
        let later = Deadline::after(Duration::from_secs(3600));
        assert_eq!(soon.earliest(later), soon);
        assert_eq!(later.earliest(soon), soon);
        assert_eq!(Deadline::NONE.earliest(soon), soon);
        assert_eq!(soon.earliest(Deadline::NONE), soon);
        assert_eq!(Deadline::NONE.earliest(Deadline::NONE), Deadline::NONE);
    }
}
