//! The CosmWasm-shaped substrate: `instantiate`/`execute`/`query` entry
//! model, env/info plumbing, bank + submessage/reply handling.
//!
//! Where the EOSIO chain ([`crate::Chain`]) dispatches every action through
//! one `apply(receiver, code, action)` export, CosmWasm-style contracts
//! export one function per entry point and receive their environment (the
//! calling address, attached funds) as arguments. This backend reproduces
//! that shape against the same first-party VM, adapted to value passing:
//! `sender`, `msg` and `funds` travel as `i64` scalars instead of
//! JSON-in-linear-memory, which keeps the host boundary small while
//! preserving the semantics the new oracle classes need — who may
//! instantiate, what happens to state when a submessage fails, and whether
//! `reply` inspects the success flag.
//!
//! Entry conventions (all exports optional except `execute`):
//!
//! | export        | signature                                  |
//! |---------------|--------------------------------------------|
//! | `instantiate` | `(sender: i64, msg: i64, funds: i64)`      |
//! | `execute`     | `(sender: i64, msg: i64, funds: i64)`      |
//! | `query`       | `(msg: i64) -> i64`                        |
//! | `reply`       | `(id: i64, success: i32)`                  |
//!
//! Host imports (module `"env"`), mirroring the CosmWasm `Deps`/`BankMsg`/
//! `SubMsg` surface:
//!
//! | import           | signature                                      |
//! |------------------|------------------------------------------------|
//! | `storage_read`   | `(key: i64) -> i64` (0 when absent)            |
//! | `storage_has`    | `(key: i64) -> i32`                            |
//! | `storage_write`  | `(key: i64, value: i64)`                       |
//! | `storage_remove` | `(key: i64)`                                   |
//! | `addr_eq`        | `(a: i64, b: i64) -> i32`                      |
//! | `cw_abort`       | `(code: i64)` — traps, rolls the dispatch back |
//! | `bank_send`      | `(to: i64, amount: i64)`                       |
//! | `submsg`         | `(target: i64, msg: i64, amount: i64, id: i64)`|
//!
//! Submessages queue during the entry call and dispatch after it returns,
//! as on the real chain. A failed submessage reverts only its own effects;
//! if it carried a nonzero `reply` id the caller's `reply` export still runs
//! with `success = 0` (the `ReplyOn::Always` contract), otherwise the
//! failure propagates and the whole dispatch rolls back. That ordering is
//! exactly what the unchecked-reply oracle class observes.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, OnceLock};

use wasai_vm::{
    CompiledModule, Fuel, Host, HostFnId, Instance, InstancePool, LinearMemory, TraceRecord,
    TraceSink, Trap, Value,
};
use wasai_wasm::types::FuncType;

use crate::error::ChainError;
use crate::name::Name;

/// Maximum nesting of submessage-driven contract-to-contract executes.
const MAX_CW_DEPTH: u32 = 8;

/// Host ids at or above this offset are WASAI trace hooks; below, chain APIs.
const HOOK_BASE: u32 = 1000;

/// Which entry export a dispatch targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CwEntry {
    /// One-time setup; the contract is expected to guard re-entry itself.
    Instantiate,
    /// The workhorse entry point.
    Execute,
    /// Read-only entry returning an `i64`.
    Query,
    /// Submessage completion callback.
    Reply,
}

impl CwEntry {
    /// The export name for this entry point.
    pub fn export(self) -> &'static str {
        match self {
            CwEntry::Instantiate => "instantiate",
            CwEntry::Execute => "execute",
            CwEntry::Query => "query",
            CwEntry::Reply => "reply",
        }
    }
}

/// One observable side effect of a dispatch, in execution order.
///
/// The CosmWasm oracle classes are behavioral: they read these events, not
/// the contract's code. `Entry`/`Reply` records bracket the writes made
/// inside them, which is what lets the scanner attribute a `StorageWrite`
/// to "inside a failed reply".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CwEvent {
    /// An entry export began executing.
    Entry {
        /// The contract being entered.
        contract: Name,
        /// Which entry point.
        entry: CwEntry,
        /// `info.sender` for this call.
        sender: Name,
        /// The scalar message.
        msg: i64,
        /// Funds moved sender → contract before the call.
        funds: i64,
    },
    /// The contract persisted a value.
    StorageWrite {
        /// The writing contract.
        contract: Name,
        /// The storage key.
        key: i64,
    },
    /// The contract deleted a key.
    StorageRemove {
        /// The removing contract.
        contract: Name,
        /// The storage key.
        key: i64,
    },
    /// The contract compared two addresses via `addr_eq`.
    SenderCheck {
        /// The checking contract.
        contract: Name,
        /// Whether the comparison involved `info.sender` and matched.
        matched: bool,
    },
    /// Funds moved between accounts via `bank_send`.
    BankSend {
        /// Paying contract.
        from: Name,
        /// Receiving account.
        to: Name,
        /// Amount in the single native denom.
        amount: i64,
    },
    /// A queued submessage finished dispatching.
    SubMsg {
        /// The contract that queued it.
        from: Name,
        /// The target account.
        target: Name,
        /// The reply id (0 = no reply requested).
        id: i64,
        /// Whether the submessage succeeded.
        ok: bool,
    },
    /// The `reply` export was entered.
    Reply {
        /// The contract receiving the callback.
        contract: Name,
        /// The reply id of the completed submessage.
        id: i64,
        /// Whether that submessage succeeded.
        success: bool,
    },
}

/// Observations from one top-level dispatch, success or failure.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CwReceipt {
    /// Side effects in execution order.
    pub events: Vec<CwEvent>,
    /// Instrumentation trace (empty for uninstrumented modules).
    pub trace: Vec<TraceRecord>,
    /// Fuel consumed by the dispatch, including submessages and replies.
    pub steps_used: u64,
    /// The `query` return value, when the entry was [`CwEntry::Query`].
    pub result: Option<i64>,
}

/// A dispatch trapped and was rolled back; the partial receipt is preserved
/// (failed traces feed the constraint flipper exactly as on EOSIO).
#[derive(Debug, Clone, PartialEq)]
pub struct CwError {
    /// The trap that aborted the dispatch.
    pub trap: Trap,
    /// Observations up to the failure point.
    pub receipt: CwReceipt,
}

impl std::fmt::Display for CwError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dispatch reverted: {}", self.trap)
    }
}

impl std::error::Error for CwError {}

/// A deployed CosmWasm-shaped contract.
#[derive(Debug)]
struct CwContract {
    compiled: Arc<CompiledModule>,
    /// Import table resolved once per contract (resolution depends only on
    /// import names, never on chain state).
    resolved: OnceLock<Arc<Vec<HostFnId>>>,
}

/// Configuration for the CosmWasm-shaped chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CwConfig {
    /// Fuel budget per top-level dispatch (shared with its submessages and
    /// replies, like the EOSIO per-transaction budget).
    pub fuel_per_dispatch: u64,
}

impl Default for CwConfig {
    fn default() -> Self {
        CwConfig {
            fuel_per_dispatch: 5_000_000,
        }
    }
}

/// The local CosmWasm-shaped chain: contracts, wallets, a single-denom bank
/// and per-contract key/value storage.
#[derive(Debug, Default)]
pub struct CwChain {
    contracts: BTreeMap<Name, Arc<CwContract>>,
    wallets: BTreeSet<Name>,
    balances: BTreeMap<Name, i64>,
    storage: BTreeMap<(Name, i64), i64>,
    /// Contracts whose `instantiate` has completed successfully at least
    /// once. Rolls back with the dispatch that set it.
    instantiated: BTreeSet<Name>,
    config: CwConfig,
    sink: TraceSink,
    events: Vec<CwEvent>,
    /// Allocation cache, same discipline as the EOSIO chain's pool.
    instance_pool: InstancePool<(Name, usize)>,
}

impl CwChain {
    /// A fresh chain with default configuration.
    pub fn new() -> Self {
        CwChain {
            sink: TraceSink::new(),
            ..Default::default()
        }
    }

    /// A fresh chain with a custom configuration.
    pub fn with_config(config: CwConfig) -> Self {
        CwChain {
            config,
            ..CwChain::new()
        }
    }

    /// The chain's configuration.
    pub fn config(&self) -> CwConfig {
        self.config
    }

    /// Create a wallet (a plain bank account) with an opening balance.
    pub fn create_wallet(&mut self, name: Name, balance: i64) {
        self.wallets.insert(name);
        self.balances.insert(name, balance);
    }

    /// Deploy (or replace) a contract, compiling the module.
    ///
    /// # Errors
    ///
    /// Fails if the module does not compile.
    pub fn deploy(&mut self, name: Name, module: wasai_wasm::Module) -> Result<(), ChainError> {
        let compiled =
            CompiledModule::compile(module).map_err(|e| ChainError::BadContract(e.to_string()))?;
        self.deploy_compiled(name, compiled);
        Ok(())
    }

    /// Deploy (or replace) an already-compiled contract. Sharing one
    /// [`CompiledModule`] lets parallel campaigns deploy without
    /// recompiling, as on the EOSIO chain.
    pub fn deploy_compiled(&mut self, name: Name, compiled: Arc<CompiledModule>) {
        self.contracts.insert(
            name,
            Arc::new(CwContract {
                compiled,
                resolved: OnceLock::new(),
            }),
        );
        self.balances.entry(name).or_insert(0);
    }

    /// Fork this chain into an independent copy. Contract entries are
    /// `Arc`s; storage and bank maps are cloned. Observation buffers and
    /// the instance pool start empty, exactly like [`crate::Chain::fork`].
    pub fn fork(&self) -> CwChain {
        CwChain {
            contracts: self.contracts.clone(),
            wallets: self.wallets.clone(),
            balances: self.balances.clone(),
            storage: self.storage.clone(),
            instantiated: self.instantiated.clone(),
            config: self.config,
            sink: TraceSink::new(),
            events: Vec::new(),
            instance_pool: InstancePool::new(),
        }
    }

    /// Balance of an account in the native denom.
    pub fn balance(&self, name: Name) -> i64 {
        self.balances.get(&name).copied().unwrap_or(0)
    }

    /// A contract's storage value for `key`, if present.
    pub fn storage_get(&self, contract: Name, key: i64) -> Option<i64> {
        self.storage.get(&(contract, key)).copied()
    }

    /// True once the contract's `instantiate` has succeeded.
    pub fn is_instantiated(&self, contract: Name) -> bool {
        self.instantiated.contains(&contract)
    }

    /// True if the account hosts a contract.
    pub fn is_contract(&self, name: Name) -> bool {
        self.contracts.contains_key(&name)
    }

    /// Dispatch an entry call against `contract` as `sender`, moving
    /// `funds` sender → contract first. On success, queued submessages run
    /// in order with reply callbacks; on any unhandled trap the whole
    /// dispatch rolls back.
    ///
    /// # Errors
    ///
    /// [`ChainError::NoSuchAccount`] if the contract is not deployed;
    /// otherwise a [`CwError`] carrying the trap and the partial receipt.
    pub fn dispatch(
        &mut self,
        entry: CwEntry,
        contract: Name,
        sender: Name,
        msg: i64,
        funds: i64,
    ) -> Result<CwReceipt, CwDispatchError> {
        if !self.contracts.contains_key(&contract) {
            return Err(CwDispatchError::Chain(ChainError::NoSuchAccount(contract)));
        }
        // Full-dispatch snapshot for rollback.
        let storage_snap = self.storage.clone();
        let balances_snap = self.balances.clone();
        let instantiated_snap = self.instantiated.clone();
        self.events.clear();
        self.sink.take();
        let mut fuel = Fuel(self.config.fuel_per_dispatch);

        let result = self.dispatch_inner(entry, contract, sender, msg, funds, &mut fuel, 0);
        let steps_used = self.config.fuel_per_dispatch - fuel.0;
        let receipt = CwReceipt {
            events: std::mem::take(&mut self.events),
            trace: self.sink.take(),
            steps_used,
            result: result.as_ref().ok().copied().flatten(),
        };
        match result {
            Ok(_) => {
                if entry == CwEntry::Instantiate {
                    self.instantiated.insert(contract);
                }
                Ok(receipt)
            }
            Err(trap) => {
                self.storage = storage_snap;
                self.balances = balances_snap;
                self.instantiated = instantiated_snap;
                Err(CwDispatchError::Reverted(CwError { trap, receipt }))
            }
        }
    }

    /// Run one entry call plus its queued submessages. Returns the `query`
    /// result when there is one.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_inner(
        &mut self,
        entry: CwEntry,
        contract: Name,
        sender: Name,
        msg: i64,
        funds: i64,
        fuel: &mut Fuel,
        depth: u32,
    ) -> Result<Option<i64>, Trap> {
        if depth > MAX_CW_DEPTH {
            return Err(Trap::Host("submessage depth exceeded".into()));
        }
        if funds != 0 {
            self.transfer(sender, contract, funds)?;
        }
        self.events.push(CwEvent::Entry {
            contract,
            entry,
            sender,
            msg,
            funds,
        });
        let args = match entry {
            CwEntry::Query => vec![Value::I64(msg)],
            CwEntry::Reply => unreachable!("replies dispatch via run_reply"),
            _ => vec![
                Value::I64(sender.as_i64()),
                Value::I64(msg),
                Value::I64(funds),
            ],
        };
        let (ret, queued) = self.exec_entry(contract, sender, entry.export(), &args, fuel)?;
        for sub in queued {
            self.run_submsg(contract, sub, fuel, depth)?;
        }
        Ok(if entry == CwEntry::Query { ret } else { None })
    }

    /// Dispatch one queued submessage, honoring reply semantics.
    fn run_submsg(
        &mut self,
        from: Name,
        sub: CwSubMsg,
        fuel: &mut Fuel,
        depth: u32,
    ) -> Result<(), Trap> {
        // Sub-snapshot: a failed submessage reverts only its own effects.
        let storage_snap = self.storage.clone();
        let balances_snap = self.balances.clone();
        let result = if self.contracts.contains_key(&sub.target) {
            self.dispatch_inner(
                CwEntry::Execute,
                sub.target,
                from,
                sub.msg,
                sub.amount,
                fuel,
                depth + 1,
            )
            .map(|_| ())
        } else if self.wallets.contains(&sub.target) {
            self.transfer(from, sub.target, sub.amount)
        } else {
            Err(Trap::Host(format!("no such account: {}", sub.target)))
        };
        let ok = result.is_ok();
        if let Err(trap) = result {
            // Fuel exhaustion is not handleable: the budget is shared, so a
            // reply could not run anyway. Propagate it.
            if trap == Trap::StepLimit {
                return Err(trap);
            }
            self.storage = storage_snap;
            self.balances = balances_snap;
            if sub.reply_id == 0 {
                // No reply requested: the failure propagates (ReplyOn::Never).
                return Err(trap);
            }
        }
        self.events.push(CwEvent::SubMsg {
            from,
            target: sub.target,
            id: sub.reply_id,
            ok,
        });
        if sub.reply_id != 0 {
            self.run_reply(from, sub.reply_id, ok, fuel, depth)?;
        }
        Ok(())
    }

    /// Invoke the caller's `reply` export for a completed submessage.
    fn run_reply(
        &mut self,
        contract: Name,
        id: i64,
        success: bool,
        fuel: &mut Fuel,
        depth: u32,
    ) -> Result<(), Trap> {
        if depth > MAX_CW_DEPTH {
            return Err(Trap::Host("submessage depth exceeded".into()));
        }
        self.events.push(CwEvent::Reply {
            contract,
            id,
            success,
        });
        let args = vec![Value::I64(id), Value::I32(success as i32)];
        let (_, queued) = self.exec_entry(contract, contract, "reply", &args, fuel)?;
        for sub in queued {
            self.run_submsg(contract, sub, fuel, depth + 1)?;
        }
        Ok(())
    }

    /// Move funds between accounts; traps on insufficient balance.
    fn transfer(&mut self, from: Name, to: Name, amount: i64) -> Result<(), Trap> {
        if amount < 0 {
            return Err(Trap::Host("negative transfer".into()));
        }
        let have = self.balance(from);
        if have < amount {
            return Err(Trap::Host(format!(
                "insufficient funds: {from} has {have}, needs {amount}"
            )));
        }
        *self.balances.entry(from).or_insert(0) -= amount;
        *self.balances.entry(to).or_insert(0) += amount;
        Ok(())
    }

    /// Instantiate-or-reuse an instance and invoke one export, collecting
    /// queued submessages. Mirrors the EOSIO `exec_wasm` pooling discipline.
    fn exec_entry(
        &mut self,
        contract: Name,
        sender: Name,
        export: &str,
        args: &[Value],
        fuel: &mut Fuel,
    ) -> Result<(Option<i64>, Vec<CwSubMsg>), Trap> {
        let entry = self
            .contracts
            .get(&contract)
            .ok_or_else(|| Trap::Host(format!("no such account: {contract}")))?
            .clone();
        let compiled = entry.compiled.clone();
        let pool_key = (contract, Arc::as_ptr(&compiled) as usize);
        // Take any pooled instance out before the host borrows the chain.
        let pooled = self.instance_pool.take(&pool_key);
        let mut host = CwHost {
            chain: self,
            contract,
            sender,
            queued: Vec::new(),
        };
        let host_ids = match entry.resolved.get() {
            Some(ids) => ids.clone(),
            None => {
                let ids = wasai_vm::resolve_imports(&compiled, &mut host)
                    .map_err(|e| Trap::Host(e.to_string()))?;
                entry.resolved.get_or_init(|| ids).clone()
            }
        };
        let reusable = pooled.and_then(|mut inst| inst.reset().is_ok().then_some(inst));
        let mut instance = match reusable {
            Some(inst) => inst,
            None => Instance::with_host_ids(compiled, host_ids)
                .map_err(|e| Trap::Host(e.to_string()))?,
        };
        let result = instance.invoke_export(&mut host, export, args, fuel);
        let queued = host.queued;
        // Pool even after a trap — reset() restores it before the next use.
        self.instance_pool.put(pool_key, instance);
        let ret = result?.first().and_then(|v| match v {
            Value::I64(x) => Some(*x),
            Value::I32(x) => Some(*x as i64),
            _ => None,
        });
        Ok((ret, queued))
    }
}

/// How a dispatch can fail.
#[derive(Debug, Clone, PartialEq)]
pub enum CwDispatchError {
    /// Setup-level failure (unknown contract).
    Chain(ChainError),
    /// The dispatch trapped and rolled back; receipt preserved.
    Reverted(CwError),
}

impl std::fmt::Display for CwDispatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CwDispatchError::Chain(e) => e.fmt(f),
            CwDispatchError::Reverted(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CwDispatchError {}

impl CwDispatchError {
    /// The receipt of the partial execution, when one exists.
    pub fn receipt(&self) -> Option<&CwReceipt> {
        match self {
            CwDispatchError::Chain(_) => None,
            CwDispatchError::Reverted(e) => Some(&e.receipt),
        }
    }
}

/// A submessage queued during an entry call.
#[derive(Debug, Clone, Copy)]
struct CwSubMsg {
    target: Name,
    msg: i64,
    amount: i64,
    reply_id: i64,
}

/// CosmWasm host APIs, resolved by import name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CwApi {
    StorageRead,
    StorageHas,
    StorageWrite,
    StorageRemove,
    AddrEq,
    CwAbort,
    BankSend,
    SubMsg,
}

/// Import-name → API table for the `"env"` module.
const CW_API_TABLE: &[(&str, CwApi)] = &[
    ("storage_read", CwApi::StorageRead),
    ("storage_has", CwApi::StorageHas),
    ("storage_write", CwApi::StorageWrite),
    ("storage_remove", CwApi::StorageRemove),
    ("addr_eq", CwApi::AddrEq),
    ("cw_abort", CwApi::CwAbort),
    ("bank_send", CwApi::BankSend),
    ("submsg", CwApi::SubMsg),
];

/// The host the CosmWasm chain presents to an executing contract.
struct CwHost<'a> {
    chain: &'a mut CwChain,
    contract: Name,
    sender: Name,
    queued: Vec<CwSubMsg>,
}

impl CwHost<'_> {
    fn arg_i64(args: &[Value], i: usize) -> i64 {
        match args.get(i) {
            Some(Value::I64(v)) => *v,
            Some(Value::I32(v)) => *v as i64,
            _ => 0,
        }
    }
}

impl Host for CwHost<'_> {
    fn resolve(&mut self, module: &str, name: &str, _ty: &FuncType) -> Option<HostFnId> {
        if let Some(off) = wasai_vm::host::hooks::hook_offset(module, name) {
            return Some(HostFnId(HOOK_BASE + off));
        }
        if module != "env" {
            return None;
        }
        CW_API_TABLE
            .iter()
            .position(|(n, _)| *n == name)
            .map(|p| HostFnId(p as u32))
    }

    fn call(
        &mut self,
        id: HostFnId,
        args: &[Value],
        _mem: &mut LinearMemory,
    ) -> Result<Option<Value>, Trap> {
        if id.0 >= HOOK_BASE {
            wasai_vm::host::hooks::dispatch(&mut self.chain.sink, id.0 - HOOK_BASE, args);
            return Ok(None);
        }
        let api = CW_API_TABLE
            .get(id.0 as usize)
            .map(|(_, api)| *api)
            .ok_or_else(|| Trap::Host(format!("unknown host function {}", id.0)))?;
        match api {
            CwApi::StorageRead => {
                let key = Self::arg_i64(args, 0);
                Ok(Some(Value::I64(
                    self.chain.storage_get(self.contract, key).unwrap_or(0),
                )))
            }
            CwApi::StorageHas => {
                let key = Self::arg_i64(args, 0);
                Ok(Some(Value::I32(
                    self.chain.storage_get(self.contract, key).is_some() as i32,
                )))
            }
            CwApi::StorageWrite => {
                let key = Self::arg_i64(args, 0);
                let value = Self::arg_i64(args, 1);
                self.chain.storage.insert((self.contract, key), value);
                self.chain.events.push(CwEvent::StorageWrite {
                    contract: self.contract,
                    key,
                });
                Ok(None)
            }
            CwApi::StorageRemove => {
                let key = Self::arg_i64(args, 0);
                self.chain.storage.remove(&(self.contract, key));
                self.chain.events.push(CwEvent::StorageRemove {
                    contract: self.contract,
                    key,
                });
                Ok(None)
            }
            CwApi::AddrEq => {
                let a = Self::arg_i64(args, 0);
                let b = Self::arg_i64(args, 1);
                let eq = a == b;
                let sender = self.sender.as_i64();
                if a == sender || b == sender {
                    self.chain.events.push(CwEvent::SenderCheck {
                        contract: self.contract,
                        matched: eq,
                    });
                }
                Ok(Some(Value::I32(eq as i32)))
            }
            CwApi::CwAbort => {
                let code = Self::arg_i64(args, 0);
                Err(Trap::Host(format!("cw_abort({code})")))
            }
            CwApi::BankSend => {
                let to = Name::from_i64(Self::arg_i64(args, 0));
                let amount = Self::arg_i64(args, 1);
                self.chain.transfer(self.contract, to, amount)?;
                self.chain.events.push(CwEvent::BankSend {
                    from: self.contract,
                    to,
                    amount,
                });
                Ok(None)
            }
            CwApi::SubMsg => {
                self.queued.push(CwSubMsg {
                    target: Name::from_i64(Self::arg_i64(args, 0)),
                    msg: Self::arg_i64(args, 1),
                    amount: Self::arg_i64(args, 2),
                    reply_id: Self::arg_i64(args, 3),
                });
                Ok(None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasai_wasm::builder::ModuleBuilder;
    use wasai_wasm::instr::Instr;
    use wasai_wasm::types::{BlockType, ValType::*};

    fn n(s: &str) -> Name {
        Name::new(s)
    }

    /// A contract that writes `msg` under key 1 on execute, and aborts
    /// after writing when `msg == 13`.
    fn writer_contract() -> wasai_wasm::Module {
        let mut b = ModuleBuilder::new();
        let write = b.import_func("env", "storage_write", &[I64, I64], &[]);
        let abort = b.import_func("env", "cw_abort", &[I64], &[]);
        let inst = b.func(
            &[I64, I64, I64],
            &[],
            &[],
            vec![
                Instr::I64Const(0),
                Instr::LocalGet(0),
                Instr::Call(write),
                Instr::End,
            ],
        );
        let exec = b.func(
            &[I64, I64, I64],
            &[],
            &[],
            vec![
                Instr::I64Const(1),
                Instr::LocalGet(1),
                Instr::Call(write),
                Instr::LocalGet(1),
                Instr::I64Const(13),
                Instr::I64Eq,
                Instr::If(BlockType::Empty),
                Instr::I64Const(13),
                Instr::Call(abort),
                Instr::End,
                Instr::End,
            ],
        );
        b.export_func("instantiate", inst);
        b.export_func("execute", exec);
        b.build()
    }

    #[test]
    fn execute_writes_storage_and_moves_funds() {
        let mut chain = CwChain::new();
        let alice = n("alice");
        let c = n("writer");
        chain.create_wallet(alice, 100);
        chain.deploy(c, writer_contract()).unwrap();
        chain
            .dispatch(CwEntry::Instantiate, c, alice, 7, 0)
            .unwrap();
        assert!(chain.is_instantiated(c));
        let r = chain.dispatch(CwEntry::Execute, c, alice, 42, 30).unwrap();
        assert_eq!(chain.storage_get(c, 1), Some(42));
        assert_eq!(chain.balance(alice), 70);
        assert_eq!(chain.balance(c), 30);
        assert!(r
            .events
            .iter()
            .any(|e| matches!(e, CwEvent::StorageWrite { key: 1, .. })));
        assert!(r.steps_used > 0);
    }

    #[test]
    fn abort_rolls_back_writes_and_funds() {
        let mut chain = CwChain::new();
        let alice = n("alice");
        let c = n("writer");
        chain.create_wallet(alice, 100);
        chain.deploy(c, writer_contract()).unwrap();
        chain
            .dispatch(CwEntry::Instantiate, c, alice, 7, 0)
            .unwrap();
        let err = chain
            .dispatch(CwEntry::Execute, c, alice, 13, 30)
            .unwrap_err();
        // The write happened before the abort, but rolled back with it.
        assert_eq!(chain.storage_get(c, 1), None);
        assert_eq!(chain.balance(alice), 100);
        let receipt = err.receipt().expect("reverted, not chain error");
        assert!(receipt
            .events
            .iter()
            .any(|e| matches!(e, CwEvent::StorageWrite { key: 1, .. })));
    }

    #[test]
    fn fuel_exhaustion_rolls_back() {
        let mut b = ModuleBuilder::new();
        let exec = b.func(
            &[I64, I64, I64],
            &[],
            &[],
            vec![
                Instr::Loop(BlockType::Empty),
                Instr::Br(0),
                Instr::End,
                Instr::End,
            ],
        );
        b.export_func("execute", exec);
        let mut chain = CwChain::with_config(CwConfig {
            fuel_per_dispatch: 10_000,
        });
        let alice = n("alice");
        let c = n("spinner");
        chain.create_wallet(alice, 10);
        chain.deploy(c, b.build()).unwrap();
        let err = chain
            .dispatch(CwEntry::Execute, c, alice, 0, 0)
            .unwrap_err();
        match err {
            CwDispatchError::Reverted(e) => {
                assert_eq!(e.trap, Trap::StepLimit);
                assert_eq!(e.receipt.steps_used, 10_000);
            }
            other => panic!("expected revert, got {other:?}"),
        }
    }

    /// Caller queues a submessage to a wallet; unfunded contract makes it
    /// fail; `reply(id, 0)` still runs and writes (the vulnerable shape).
    fn replier_contract(guard: bool) -> wasai_wasm::Module {
        let mut b = ModuleBuilder::new();
        let write = b.import_func("env", "storage_write", &[I64, I64], &[]);
        let submsg = b.import_func("env", "submsg", &[I64, I64, I64, I64], &[]);
        let exec = b.func(
            &[I64, I64, I64],
            &[],
            &[],
            vec![
                // submsg(target = msg, msg = 0, amount = 50, reply_id = 9)
                Instr::LocalGet(1),
                Instr::I64Const(0),
                Instr::I64Const(50),
                Instr::I64Const(9),
                Instr::Call(submsg),
                Instr::End,
            ],
        );
        let mut reply_body = vec![];
        if guard {
            reply_body.extend([
                Instr::LocalGet(1),
                Instr::I32Eqz,
                Instr::If(BlockType::Empty),
                Instr::Return,
                Instr::End,
            ]);
        }
        reply_body.extend([
            Instr::I64Const(5),
            Instr::LocalGet(0),
            Instr::Call(write),
            Instr::End,
        ]);
        let reply = b.func(&[I64, I32], &[], &[], reply_body);
        b.export_func("execute", exec);
        b.export_func("reply", reply);
        b.build()
    }

    #[test]
    fn failed_submsg_reverts_but_reply_still_runs() {
        let mut chain = CwChain::new();
        let alice = n("alice");
        let bob = n("bob");
        let c = n("replier");
        chain.create_wallet(alice, 10);
        chain.create_wallet(bob, 0);
        chain.deploy(c, replier_contract(false)).unwrap();
        // Contract has no funds: the 50-token submsg to bob fails.
        let r = chain
            .dispatch(CwEntry::Execute, c, alice, bob.as_i64(), 0)
            .unwrap();
        assert_eq!(chain.balance(bob), 0, "failed submsg moved no funds");
        // The unguarded reply wrote anyway.
        assert_eq!(chain.storage_get(c, 5), Some(9));
        let reply_ev = r
            .events
            .iter()
            .find(|e| matches!(e, CwEvent::Reply { .. }))
            .expect("reply entered");
        assert_eq!(
            reply_ev,
            &CwEvent::Reply {
                contract: c,
                id: 9,
                success: false
            }
        );
    }

    #[test]
    fn guarded_reply_skips_the_write() {
        let mut chain = CwChain::new();
        let alice = n("alice");
        let bob = n("bob");
        let c = n("replier");
        chain.create_wallet(alice, 10);
        chain.create_wallet(bob, 0);
        chain.deploy(c, replier_contract(true)).unwrap();
        chain
            .dispatch(CwEntry::Execute, c, alice, bob.as_i64(), 0)
            .unwrap();
        assert_eq!(chain.storage_get(c, 5), None, "guarded reply wrote nothing");
    }

    #[test]
    fn funded_submsg_succeeds_and_reply_sees_success() {
        let mut chain = CwChain::new();
        let alice = n("alice");
        let bob = n("bob");
        let c = n("replier");
        chain.create_wallet(alice, 100);
        chain.create_wallet(bob, 0);
        chain.deploy(c, replier_contract(false)).unwrap();
        // Fund the contract so the 50-token submsg succeeds.
        let r = chain
            .dispatch(CwEntry::Execute, c, alice, bob.as_i64(), 60)
            .unwrap();
        assert_eq!(chain.balance(bob), 50);
        assert!(r.events.iter().any(|e| matches!(
            e,
            CwEvent::SubMsg {
                ok: true,
                id: 9,
                ..
            }
        )));
        assert!(r
            .events
            .iter()
            .any(|e| matches!(e, CwEvent::Reply { success: true, .. })));
    }

    #[test]
    fn query_returns_a_value_without_side_effects() {
        let mut b = ModuleBuilder::new();
        let read = b.import_func("env", "storage_read", &[I64], &[I64]);
        let write = b.import_func("env", "storage_write", &[I64, I64], &[]);
        let q = b.func(
            &[I64],
            &[I64],
            &[],
            vec![Instr::LocalGet(0), Instr::Call(read), Instr::End],
        );
        let exec = b.func(
            &[I64, I64, I64],
            &[],
            &[],
            vec![
                Instr::LocalGet(1),
                Instr::I64Const(77),
                Instr::Call(write),
                Instr::End,
            ],
        );
        b.export_func("query", q);
        b.export_func("execute", exec);
        let mut chain = CwChain::new();
        let alice = n("alice");
        let c = n("store");
        chain.create_wallet(alice, 0);
        chain.deploy(c, b.build()).unwrap();
        chain.dispatch(CwEntry::Execute, c, alice, 3, 0).unwrap();
        let r = chain.dispatch(CwEntry::Query, c, alice, 3, 0).unwrap();
        assert_eq!(r.result, Some(77));
    }

    #[test]
    fn instance_pool_reuses_across_dispatches() {
        let mut chain = CwChain::new();
        let alice = n("alice");
        let c = n("writer");
        chain.create_wallet(alice, 0);
        chain.deploy(c, writer_contract()).unwrap();
        for i in 0..5 {
            chain.dispatch(CwEntry::Execute, c, alice, i, 0).unwrap();
            assert_eq!(chain.storage_get(c, 1), Some(i));
        }
    }
}
