#![warn(missing_docs)]

//! # wasai-chain — the EOSIO blockchain substrate of the WASAI reproduction
//!
//! A self-contained local blockchain with exactly the semantics the paper's
//! vulnerability classes hinge on (§2):
//!
//! - [`mod@name`] / [`asset`]: the `N(...)` packed names and `asset` values whose
//!   `i64.eq`/`i64.ne` comparisons form the Fake EOS / Fake Notification
//!   guard code (§2.3.1–2.3.2);
//! - [`abi`] / [`serialize`]: action signatures and the packed byte stream a
//!   contract deserializes (the C3 challenge);
//! - [`database`]: the `db_*` tables whose read/write pairs feed the database
//!   dependency graph (§3.3.2);
//! - [`token`]: per-issuer token ledgers — the official EOS under
//!   `eosio.token` and bit-identical fakes under attacker contracts;
//! - [`chain`]: transactions, notifications that preserve `code`
//!   (`require_recipient`), inline actions in the caller's atomicity domain
//!   (the Rollback surface, §2.3.5), deferred actions that escape it, and the
//!   EOSIO library APIs (§2.2) exposed to Wasm contracts.
//!
//! # Examples
//!
//! ```
//! use wasai_chain::{Chain, NativeKind, name::Name, asset::Asset};
//! use wasai_chain::abi::ParamValue;
//!
//! let mut chain = Chain::new();
//! chain.deploy_native(Name::new("eosio.token"), NativeKind::Token);
//! chain.create_account(Name::new("alice"))?;
//! chain.create_account(Name::new("bob"))?;
//! chain.issue(Name::new("eosio.token"), Name::new("alice"), Asset::eos(100));
//!
//! chain.push_action(
//!     Name::new("eosio.token"),
//!     Name::new("transfer"),
//!     &[Name::new("alice")],
//!     &[
//!         ParamValue::Name(Name::new("alice")),
//!         ParamValue::Name(Name::new("bob")),
//!         ParamValue::Asset(Asset::eos(10)),
//!         ParamValue::String("hi".into()),
//!     ],
//! )?;
//! assert_eq!(chain.balance(Name::new("eosio.token"), Name::new("bob")), Asset::eos(10));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod abi;
pub mod action;
pub mod asset;
pub mod chain;
pub mod cosmwasm;
pub mod database;
pub mod error;
pub mod name;
pub mod serialize;
pub mod token;

pub use action::{Action, ApiEvent, ExecKind, PermissionLevel, Receipt, Transaction};
pub use chain::{Chain, ChainConfig, NativeKind};
pub use cosmwasm::{CwChain, CwConfig, CwDispatchError, CwEntry, CwError, CwEvent, CwReceipt};
pub use error::{ChainError, TransactionError};
pub use name::Name;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abi::{Abi, ActionDecl, ParamValue};
    use crate::asset::Asset;
    use wasai_wasm::builder::ModuleBuilder;
    use wasai_wasm::instr::Instr;
    use wasai_wasm::types::{BlockType, ValType::*};

    fn n(s: &str) -> Name {
        Name::new(s)
    }

    /// Assemble a minimal eosponser contract.
    ///
    /// `apply(receiver, code, action)`:
    /// ```c
    /// if (action == N(transfer)) {
    ///     if (guarded && code != N(eosio.token)) eosio_assert(false, "");
    ///     db_store_i64(receiver, N(log), receiver, <unique id>, buf, 4);
    /// }
    /// ```
    /// The db write is the observable "eosponser ran" effect.
    fn eosponser_contract(guarded: bool) -> wasai_wasm::Module {
        let mut b = ModuleBuilder::with_memory(1);
        let assert_fn = b.import_func("env", "eosio_assert", &[I32, I32], &[]);
        let db_store = b.import_func(
            "env",
            "db_store_i64",
            &[I64, I64, I64, I64, I32, I32],
            &[I32],
        );
        let tapos = b.import_func("env", "tapos_block_num", &[], &[I32]);
        let mut body = vec![
            Instr::LocalGet(2),
            Instr::I64Const(n("transfer").as_i64()),
            Instr::I64Eq,
            Instr::If(BlockType::Empty),
        ];
        if guarded {
            body.extend([
                Instr::LocalGet(1),
                Instr::I64Const(n("eosio.token").as_i64()),
                Instr::I64Ne,
                Instr::If(BlockType::Empty),
                Instr::I32Const(0),
                Instr::I32Const(0),
                Instr::Call(assert_fn),
                Instr::End,
            ]);
        }
        body.extend([
            // db_store_i64(scope=receiver, table=N(log), payer=receiver,
            //              id=tapos_block_num(), ptr=0, len=4)
            Instr::LocalGet(0),
            Instr::I64Const(n("log").as_i64()),
            Instr::LocalGet(0),
            Instr::Call(tapos),
            Instr::I64ExtendI32U,
            Instr::I32Const(0),
            Instr::I32Const(4),
            Instr::Call(db_store),
            Instr::Drop,
            Instr::End, // if action == transfer
            Instr::End, // function
        ]);
        let apply = b.func(&[I64, I64, I64], &[], &[], body);
        b.export_func("apply", apply);
        b.build()
    }

    fn transfer_params(from: &str, to: &str, eos: i64, memo: &str) -> Vec<ParamValue> {
        vec![
            ParamValue::Name(n(from)),
            ParamValue::Name(n(to)),
            ParamValue::Asset(Asset::eos(eos)),
            ParamValue::String(memo.into()),
        ]
    }

    fn eosponser_ran(chain: &Chain, victim: Name) -> bool {
        chain.db.row_count(crate::database::TableId {
            code: victim,
            scope: victim,
            table: n("log"),
        }) > 0
    }

    fn setup(guarded: bool) -> Chain {
        let mut chain = Chain::new();
        chain.deploy_native(n("eosio.token"), NativeKind::Token);
        chain.create_account(n("alice")).unwrap();
        chain.create_account(n("attacker")).unwrap();
        chain
            .deploy_wasm(
                n("eosbet"),
                eosponser_contract(guarded),
                Abi::new(vec![ActionDecl::transfer()]),
            )
            .unwrap();
        chain.issue(n("eosio.token"), n("alice"), Asset::eos(1000));
        chain.issue(n("eosio.token"), n("attacker"), Asset::eos(1000));
        chain
    }

    #[test]
    fn official_transfer_notifies_eosponser() {
        let mut chain = setup(false);
        let receipt = chain
            .push_action(
                n("eosio.token"),
                n("transfer"),
                &[n("alice")],
                &transfer_params("alice", "eosbet", 10, "play"),
            )
            .unwrap();
        // Figure 1: the payee is notified with code = eosio.token.
        assert!(receipt.applied(n("eosbet"), n("eosio.token"), n("transfer")));
        assert!(eosponser_ran(&chain, n("eosbet")));
        assert_eq!(chain.balance(n("eosio.token"), n("eosbet")), Asset::eos(10));
    }

    #[test]
    fn direct_fake_eos_invocation_reaches_unguarded_eosponser() {
        // Exploit path 1 of §2.3.1: invoke the victim's eosponser directly.
        let mut chain = setup(false);
        chain
            .push_action(
                n("eosbet"),
                n("transfer"),
                &[n("attacker")],
                &transfer_params("attacker", "eosbet", 10, "free ride"),
            )
            .unwrap();
        assert!(eosponser_ran(&chain, n("eosbet")));
        // No EOS actually moved.
        assert_eq!(chain.balance(n("eosio.token"), n("eosbet")), Asset::eos(0));
    }

    #[test]
    fn fake_token_transfer_carries_its_own_code() {
        // Exploit path 2 of §2.3.1: a fake issuer named differently, token
        // symbol identical.
        let mut chain = setup(false);
        chain.deploy_native(n("fake.token"), NativeKind::Token);
        chain.issue(n("fake.token"), n("attacker"), Asset::eos(1000));
        let receipt = chain
            .push_action(
                n("fake.token"),
                n("transfer"),
                &[n("attacker")],
                &transfer_params("attacker", "eosbet", 10, "fake"),
            )
            .unwrap();
        // The victim is notified, but code = fake.token, not eosio.token.
        assert!(receipt.applied(n("eosbet"), n("fake.token"), n("transfer")));
        assert!(eosponser_ran(&chain, n("eosbet")));
        assert_eq!(chain.balance(n("eosio.token"), n("eosbet")), Asset::eos(0));
    }

    #[test]
    fn guard_code_stops_fake_eos_but_allows_official() {
        let mut chain = setup(true);
        // Direct invocation is rejected by the guard...
        let err = chain
            .push_action(
                n("eosbet"),
                n("transfer"),
                &[n("attacker")],
                &transfer_params("attacker", "eosbet", 10, ""),
            )
            .unwrap_err();
        assert!(matches!(err.trap, wasai_vm::Trap::AssertFailed(_)));
        assert!(
            !eosponser_ran(&chain, n("eosbet")),
            "guard must prevent the effect"
        );
        // ... and the official path still works.
        chain
            .push_action(
                n("eosio.token"),
                n("transfer"),
                &[n("alice")],
                &transfer_params("alice", "eosbet", 10, ""),
            )
            .unwrap();
        assert!(eosponser_ran(&chain, n("eosbet")));
    }

    #[test]
    fn fake_notification_bypasses_the_code_guard() {
        // §2.3.2: attacker transfers real EOS to their agent; the agent
        // forwards the notification; code remains eosio.token, so even the
        // guarded eosponser runs — without the victim being paid.
        let mut chain = setup(true);
        chain.deploy_native(
            n("fake.notif"),
            NativeKind::NotifForwarder {
                forward_to: n("eosbet"),
            },
        );
        let receipt = chain
            .push_action(
                n("eosio.token"),
                n("transfer"),
                &[n("attacker")],
                &transfer_params("attacker", "fake.notif", 10, "forward me"),
            )
            .unwrap();
        assert!(
            receipt.applied(n("eosbet"), n("eosio.token"), n("transfer")),
            "victim must see a notification with code=eosio.token"
        );
        assert!(
            eosponser_ran(&chain, n("eosbet")),
            "guard is blind to forwarded notifs"
        );
        assert_eq!(
            chain.balance(n("eosio.token"), n("eosbet")),
            Asset::eos(0),
            "the victim was never paid"
        );
        assert_eq!(
            chain.balance(n("eosio.token"), n("fake.notif")),
            Asset::eos(10)
        );
    }

    #[test]
    fn failed_transaction_rolls_back_everything() {
        let mut chain = setup(true);
        let before_attacker = chain.balance(n("eosio.token"), n("attacker"));
        // One transaction: (1) official transfer to eosbet, (2) a direct fake
        // call that trips the guard. Both must revert — including the token
        // movement and the eosponser's db write from step 1.
        let tx = Transaction {
            actions: vec![
                Action::new(
                    n("eosio.token"),
                    n("transfer"),
                    &[n("attacker")],
                    &transfer_params("attacker", "eosbet", 10, ""),
                ),
                Action::new(
                    n("eosbet"),
                    n("transfer"),
                    &[n("attacker")],
                    &transfer_params("attacker", "eosbet", 10, ""),
                ),
            ],
        };
        let err = chain.push_transaction(&tx).unwrap_err();
        assert_eq!(err.action_index, 1);
        assert_eq!(
            chain.balance(n("eosio.token"), n("attacker")),
            before_attacker
        );
        assert_eq!(chain.balance(n("eosio.token"), n("eosbet")), Asset::eos(0));
        assert!(
            !eosponser_ran(&chain, n("eosbet")),
            "db writes must roll back"
        );
        // The receipt still shows what executed before the revert.
        assert!(err
            .receipt
            .applied(n("eosbet"), n("eosio.token"), n("transfer")));
    }

    #[test]
    fn missing_authorization_aborts_token_transfer() {
        let mut chain = setup(false);
        let err = chain
            .push_action(
                n("eosio.token"),
                n("transfer"),
                &[n("attacker")], // signs as attacker, moves alice's funds
                &transfer_params("alice", "attacker", 10, "steal"),
            )
            .unwrap_err();
        assert!(err.trap.to_string().contains("missing authority"));
        assert_eq!(
            chain.balance(n("eosio.token"), n("alice")),
            Asset::eos(1000)
        );
    }

    #[test]
    fn require_auth_host_api_traps_without_permission() {
        let mut b = ModuleBuilder::with_memory(1);
        let require_auth = b.import_func("env", "require_auth", &[I64], &[]);
        let apply = b.func(
            &[I64, I64, I64],
            &[],
            &[],
            vec![
                Instr::I64Const(n("admin").as_i64()),
                Instr::Call(require_auth),
                Instr::End,
            ],
        );
        b.export_func("apply", apply);
        let mut chain = Chain::new();
        chain.create_account(n("admin")).unwrap();
        chain.create_account(n("mallory")).unwrap();
        chain
            .deploy_wasm(n("guarded"), b.build(), Abi::default())
            .unwrap();

        assert!(chain
            .push_action(n("guarded"), n("doit"), &[n("mallory")], &[])
            .is_err());
        let ok = chain
            .push_action(n("guarded"), n("doit"), &[n("admin")], &[])
            .unwrap();
        assert!(ok
            .api_events
            .iter()
            .any(|e| matches!(e, ApiEvent::RequireAuth { actor, .. } if *actor == n("admin"))));
    }

    #[test]
    fn send_inline_moves_tokens_with_contract_authority() {
        // A contract that, on any action, sends 1 EOS from itself to `bob`
        // via an inline eosio.token::transfer — the §2.3.5 reward pattern.
        let mut b = ModuleBuilder::with_memory(1);
        let send_inline = b.import_func("env", "send_inline", &[I64, I64, I32, I32], &[]);
        let mut body = vec![
            // Only handle direct actions (code == receiver); otherwise the
            // token's transfer notification re-triggers the reward forever.
            Instr::LocalGet(0),
            Instr::LocalGet(1),
            Instr::I64Ne,
            Instr::If(BlockType::Empty),
            Instr::Return,
            Instr::End,
        ];
        // Serialize transfer(rewarder, bob, 1.0000 EOS, "") at memory 0.
        let data = serialize::pack(&transfer_params("rewarder", "bob", 1, ""));
        for (i, chunk) in data.chunks(8).enumerate() {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            body.extend([
                Instr::I32Const((i * 8) as i32),
                Instr::I64Const(i64::from_le_bytes(word)),
                Instr::I64Store(wasai_wasm::MemArg::default()),
            ]);
        }
        body.extend([
            Instr::I64Const(n("eosio.token").as_i64()),
            Instr::I64Const(n("transfer").as_i64()),
            Instr::I32Const(0),
            Instr::I32Const(data.len() as i32),
            Instr::Call(send_inline),
            Instr::End,
        ]);
        let apply = b.func(&[I64, I64, I64], &[], &[], body);
        b.export_func("apply", apply);

        let mut chain = Chain::new();
        chain.deploy_native(n("eosio.token"), NativeKind::Token);
        chain.create_account(n("bob")).unwrap();
        chain.create_account(n("carol")).unwrap();
        chain
            .deploy_wasm(n("rewarder"), b.build(), Abi::default())
            .unwrap();
        chain.issue(n("eosio.token"), n("rewarder"), Asset::eos(5));

        let receipt = chain
            .push_action(n("rewarder"), n("reward"), &[n("carol")], &[])
            .unwrap();
        assert_eq!(chain.balance(n("eosio.token"), n("bob")), Asset::eos(1));
        assert!(receipt
            .api_events
            .iter()
            .any(|e| matches!(e, ApiEvent::SendInline { .. })));
        assert!(receipt.applied(n("eosio.token"), n("eosio.token"), n("transfer")));
    }

    #[test]
    fn deferred_actions_run_in_their_own_transaction() {
        let mut b = ModuleBuilder::with_memory(1);
        let send_deferred = b.import_func("env", "send_deferred", &[I64, I64, I64, I32, I32], &[]);
        let data = serialize::pack(&transfer_params("delayed", "bob", 1, ""));
        let mut body = Vec::new();
        for (i, chunk) in data.chunks(8).enumerate() {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            body.extend([
                Instr::I32Const((i * 8) as i32),
                Instr::I64Const(i64::from_le_bytes(word)),
                Instr::I64Store(wasai_wasm::MemArg::default()),
            ]);
        }
        body.extend([
            Instr::I64Const(1),
            Instr::I64Const(n("eosio.token").as_i64()),
            Instr::I64Const(n("transfer").as_i64()),
            Instr::I32Const(0),
            Instr::I32Const(data.len() as i32),
            Instr::Call(send_deferred),
            Instr::End,
        ]);
        let apply = b.func(&[I64, I64, I64], &[], &[], body);
        b.export_func("apply", apply);

        let mut chain = Chain::new();
        chain.deploy_native(n("eosio.token"), NativeKind::Token);
        chain.create_account(n("bob")).unwrap();
        chain.create_account(n("x")).unwrap();
        chain
            .deploy_wasm(n("delayed"), b.build(), Abi::default())
            .unwrap();
        chain.issue(n("eosio.token"), n("delayed"), Asset::eos(5));

        chain
            .push_action(n("delayed"), n("go"), &[n("x")], &[])
            .unwrap();
        // Not yet executed...
        assert_eq!(chain.balance(n("eosio.token"), n("bob")), Asset::eos(0));
        assert_eq!(chain.deferred_len(), 1);
        // ...until the deferred queue drains, in a separate transaction.
        let results = chain.run_deferred();
        assert_eq!(results.len(), 1);
        assert!(results[0].is_ok());
        assert_eq!(chain.balance(n("eosio.token"), n("bob")), Asset::eos(1));
    }

    #[test]
    fn tapos_reads_are_recorded_and_vary_per_block() {
        let mut b = ModuleBuilder::with_memory(1);
        let tapos_num = b.import_func("env", "tapos_block_num", &[], &[I32]);
        let tapos_prefix = b.import_func("env", "tapos_block_prefix", &[], &[I32]);
        let apply = b.func(
            &[I64, I64, I64],
            &[],
            &[],
            vec![
                Instr::Call(tapos_num),
                Instr::Drop,
                Instr::Call(tapos_prefix),
                Instr::Drop,
                Instr::End,
            ],
        );
        b.export_func("apply", apply);
        let mut chain = Chain::new();
        chain.create_account(n("x")).unwrap();
        chain
            .deploy_wasm(n("lottery"), b.build(), Abi::default())
            .unwrap();
        let r = chain
            .push_action(n("lottery"), n("roll"), &[n("x")], &[])
            .unwrap();
        let tapos_reads = r
            .api_events
            .iter()
            .filter(|e| matches!(e, ApiEvent::TaposRead { .. }))
            .count();
        assert_eq!(tapos_reads, 2);
    }

    #[test]
    fn read_action_data_roundtrips_into_contract_memory() {
        // Contract copies action data into memory and stores the first 8
        // bytes into a db row; we verify the row holds the `from` name.
        let mut b = ModuleBuilder::with_memory(1);
        let read = b.import_func("env", "read_action_data", &[I32, I32], &[I32]);
        let size = b.import_func("env", "action_data_size", &[], &[I32]);
        let db_store = b.import_func(
            "env",
            "db_store_i64",
            &[I64, I64, I64, I64, I32, I32],
            &[I32],
        );
        let apply = b.func(
            &[I64, I64, I64],
            &[],
            &[],
            vec![
                Instr::I32Const(256),
                Instr::Call(size),
                Instr::Call(read),
                Instr::Drop,
                Instr::LocalGet(0),
                Instr::I64Const(n("data").as_i64()),
                Instr::LocalGet(0),
                Instr::I64Const(7),
                Instr::I32Const(256),
                Instr::I32Const(8),
                Instr::Call(db_store),
                Instr::Drop,
                Instr::End,
            ],
        );
        b.export_func("apply", apply);
        let mut chain = Chain::new();
        chain.create_account(n("x")).unwrap();
        chain
            .deploy_wasm(n("echo"), b.build(), Abi::default())
            .unwrap();
        chain
            .push_action(
                n("echo"),
                n("poke"),
                &[n("x")],
                &[ParamValue::Name(n("alice")), ParamValue::U64(99)],
            )
            .unwrap();
        let row = chain
            .db
            .find(
                crate::database::TableId {
                    code: n("echo"),
                    scope: n("echo"),
                    table: n("data"),
                },
                7,
            )
            .expect("row stored");
        assert_eq!(row, n("alice").raw().to_le_bytes());
    }
}

#[cfg(test)]
mod limit_tests {
    use super::*;
    use crate::abi::Abi;
    use wasai_wasm::builder::ModuleBuilder;
    use wasai_wasm::instr::Instr;
    use wasai_wasm::types::{BlockType, ValType::*};

    #[test]
    fn fuel_exhaustion_reverts_the_transaction() {
        let mut b = ModuleBuilder::with_memory(1);
        let db_store = b.import_func(
            "env",
            "db_store_i64",
            &[I64, I64, I64, I64, I32, I32],
            &[I32],
        );
        // Store a row, then spin forever: the row must be rolled back.
        let apply = b.func(
            &[I64, I64, I64],
            &[],
            &[],
            vec![
                Instr::LocalGet(0),
                Instr::I64Const(Name::new("t").as_i64()),
                Instr::LocalGet(0),
                Instr::I64Const(1),
                Instr::I32Const(0),
                Instr::I32Const(4),
                Instr::Call(db_store),
                Instr::Drop,
                Instr::Loop(BlockType::Empty),
                Instr::Br(0),
                Instr::End,
                Instr::End,
            ],
        );
        b.export_func("apply", apply);
        let mut chain = Chain::with_config(ChainConfig {
            fuel_per_tx: 50_000,
            ..ChainConfig::default()
        });
        chain.create_account(Name::new("x")).unwrap();
        chain
            .deploy_wasm(Name::new("spinner"), b.build(), Abi::default())
            .unwrap();
        let err = chain
            .push_action(
                Name::new("spinner"),
                Name::new("go"),
                &[Name::new("x")],
                &[],
            )
            .unwrap_err();
        assert_eq!(err.trap, wasai_vm::Trap::StepLimit);
        let table = crate::database::TableId {
            code: Name::new("spinner"),
            scope: Name::new("spinner"),
            table: Name::new("t"),
        };
        assert_eq!(chain.db.find(table, 1), None, "partial writes must revert");
        // The receipt still reports the consumed fuel for the virtual clock.
        assert_eq!(err.receipt.steps_used, 50_000);
    }

    #[test]
    fn action_to_missing_account_fails() {
        let mut chain = Chain::new();
        chain.create_account(Name::new("x")).unwrap();
        let err = chain
            .push_action(Name::new("ghost"), Name::new("go"), &[Name::new("x")], &[])
            .unwrap_err();
        assert!(err.trap.to_string().contains("no such account"));
    }

    #[test]
    fn duplicate_account_creation_fails() {
        let mut chain = Chain::new();
        chain.create_account(Name::new("x")).unwrap();
        assert_eq!(
            chain.create_account(Name::new("x")),
            Err(ChainError::AccountExists(Name::new("x")))
        );
    }

    #[test]
    fn tapos_values_change_across_blocks() {
        let mut chain = Chain::new();
        chain.create_account(Name::new("x")).unwrap();
        let t0 = chain.now_us();
        // Each transaction advances the synthetic block state.
        let _ = chain.push_action(Name::new("x"), Name::new("noop"), &[Name::new("x")], &[]);
        let _ = chain.push_action(Name::new("x"), Name::new("noop"), &[Name::new("x")], &[]);
        assert!(chain.now_us() > t0);
    }
}
