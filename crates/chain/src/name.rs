//! EOSIO account/action names: 12+1 base-32 characters packed into a `u64`.
//!
//! This is the `N(...)` macro of the EOSIO SDK (Listing 1 of the paper uses
//! `N(transfer)` and `N(eosio.token)`). The Fake EOS guard the paper looks
//! for compares these packed values with `i64.eq`/`i64.ne` (§2.3.1).

use std::fmt;
use std::str::FromStr;

/// Alphabet of EOSIO names, in symbol-value order.
const CHARS: &[u8; 32] = b".12345abcdefghijklmnopqrstuvwxyz";

/// A packed EOSIO name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Name(pub u64);

/// Error parsing a [`Name`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNameError {
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid EOSIO name: {}", self.message)
    }
}

impl std::error::Error for ParseNameError {}

fn char_value(c: u8) -> Option<u64> {
    match c {
        b'.' => Some(0),
        b'1'..=b'5' => Some((c - b'1') as u64 + 1),
        b'a'..=b'z' => Some((c - b'a') as u64 + 6),
        _ => None,
    }
}

impl Name {
    /// Parse a name, panicking on invalid input — the compile-time `N(...)`
    /// idiom for string literals.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a valid EOSIO name; use the `FromStr` impl for
    /// fallible parsing.
    pub fn new(s: &str) -> Name {
        s.parse().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The raw packed value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The raw value as the `i64` EOSVM passes around.
    pub fn as_i64(self) -> i64 {
        self.0 as i64
    }

    /// Rebuild from the `i64` representation.
    pub fn from_i64(v: i64) -> Name {
        Name(v as u64)
    }

    /// True for the all-zero (empty) name.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl FromStr for Name {
    type Err = ParseNameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() > 13 {
            return Err(ParseNameError {
                message: format!("{s:?} is longer than 13 chars"),
            });
        }
        let bytes = s.as_bytes();
        let mut value: u64 = 0;
        for i in 0..13 {
            let c = bytes.get(i).copied().unwrap_or(b'.');
            let v = char_value(c).ok_or_else(|| ParseNameError {
                message: format!("{s:?} contains invalid char {:?}", c as char),
            })?;
            if i < 12 {
                value |= (v & 0x1f) << (64 - 5 * (i + 1));
            } else {
                if v > 0x0f {
                    return Err(ParseNameError {
                        message: format!("{s:?}: 13th char must be in [.1-5a-j]"),
                    });
                }
                value |= v & 0x0f;
            }
        }
        Ok(Name(value))
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = [b'.'; 13];
        let mut v = self.0;
        for i in (0..13).rev() {
            let sym = if i == 12 {
                let s = (v & 0x0f) as usize;
                v >>= 4;
                s
            } else {
                let s = (v & 0x1f) as usize;
                v >>= 5;
                s
            };
            out[i] = CHARS[sym];
        }
        let trimmed = std::str::from_utf8(&out)
            .expect("alphabet is ASCII")
            .trim_end_matches('.');
        f.write_str(trimmed)
    }
}

/// Convenience literal: `name!("eosio.token")`.
#[macro_export]
macro_rules! name {
    ($s:literal) => {
        $crate::name::Name::new($s)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_encodings() {
        // Reference values from the EOSIO SDK name encoding.
        assert_eq!(Name::new("eosio.token").raw(), 0x5530ea033482a600);
        assert_eq!(Name::new("eosio").raw(), 0x5530ea0000000000);
        assert_eq!(Name::new("transfer").raw(), 0xcdcd3c2d57000000);
    }

    #[test]
    fn roundtrip_display() {
        for s in [
            "eosio.token",
            "transfer",
            "a",
            "zzzzzzzzzzzz",
            "eosbet",
            "fake.notif",
            "12345",
        ] {
            assert_eq!(Name::new(s).to_string(), s, "roundtrip of {s}");
        }
    }

    #[test]
    fn empty_name() {
        assert!(Name::default().is_empty());
        assert_eq!(Name::default().to_string(), "");
    }

    #[test]
    fn rejects_bad_names() {
        assert!("UPPER".parse::<Name>().is_err());
        assert!("has space".parse::<Name>().is_err());
        assert!("waytoolongname1".parse::<Name>().is_err());
        assert!("aaaaaaaaaaaaz".parse::<Name>().is_err()); // 13th char out of range
    }

    #[test]
    fn i64_roundtrip() {
        let n = Name::new("eosbet");
        assert_eq!(Name::from_i64(n.as_i64()), n);
    }

    #[test]
    fn ordering_is_by_raw_value() {
        assert!(Name::new("a") < Name::new("b"));
    }

    #[test]
    fn name_macro() {
        assert_eq!(name!("eosio.token"), Name::new("eosio.token"));
    }
}
