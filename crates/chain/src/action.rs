//! Actions, transactions and execution receipts.

use crate::abi::ParamValue;
use crate::name::Name;
use crate::serialize;

/// An authorization carried by an action (`{actor, permission}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PermissionLevel {
    /// The authorizing account.
    pub actor: Name,
    /// The permission name (`active` in practice).
    pub permission: Name,
}

impl PermissionLevel {
    /// `actor@active`.
    pub fn active(actor: Name) -> Self {
        PermissionLevel {
            actor,
            permission: Name::new("active"),
        }
    }
}

/// A single action: the unit of contract invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Action {
    /// The contract the action targets (`code` at the dispatcher).
    pub account: Name,
    /// The action function name.
    pub name: Name,
    /// Authorizations provided with the action.
    pub authorization: Vec<PermissionLevel>,
    /// Serialized action data.
    pub data: Vec<u8>,
}

impl Action {
    /// Build an action from typed parameter values.
    pub fn new(account: Name, name: Name, auth: &[Name], params: &[ParamValue]) -> Self {
        Action {
            account,
            name,
            authorization: auth.iter().copied().map(PermissionLevel::active).collect(),
            data: serialize::pack(params),
        }
    }

    /// True if `actor` authorized this action.
    pub fn authorized_by(&self, actor: Name) -> bool {
        self.authorization.iter().any(|p| p.actor == actor)
    }
}

/// A transaction: an ordered list of top-level actions, atomic as a whole
/// (inline actions join the same atomicity domain, §2.3.5).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Transaction {
    /// Top-level actions.
    pub actions: Vec<Action>,
}

impl Transaction {
    /// A transaction of one action.
    pub fn single(action: Action) -> Self {
        Transaction {
            actions: vec![action],
        }
    }
}

/// Why an executed action ran: directly, as a notification, or inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecKind {
    /// A top-level transaction action.
    Direct,
    /// A `require_recipient` notification.
    Notification,
    /// An inline action sent by a contract.
    Inline,
    /// A deferred action executing in its own transaction.
    Deferred,
}

/// Record of one executed `apply(receiver, code, action)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutedAction {
    /// The account whose contract ran.
    pub receiver: Name,
    /// The `code` parameter (originating contract).
    pub code: Name,
    /// The action name.
    pub action: Name,
    /// How this execution was triggered.
    pub kind: ExecKind,
}

/// A library-API call observed during execution (feeds the Scanner, §3.5).
#[derive(Debug, Clone, PartialEq)]
pub enum ApiEvent {
    /// `require_auth` / `require_auth2` succeeded for an actor.
    RequireAuth {
        /// Contract that called the API.
        contract: Name,
        /// The checked actor.
        actor: Name,
    },
    /// `has_auth` was queried.
    HasAuth {
        /// Contract that called the API.
        contract: Name,
        /// The queried actor.
        actor: Name,
        /// The result.
        granted: bool,
    },
    /// `require_recipient` queued a notification.
    RequireRecipient {
        /// Contract that called the API.
        contract: Name,
        /// The notified account.
        recipient: Name,
    },
    /// `eosio_assert` was evaluated.
    Assert {
        /// Contract that called the API.
        contract: Name,
        /// Whether the condition held.
        passed: bool,
    },
    /// `tapos_block_num` or `tapos_block_prefix` was read (BlockinfoDep
    /// oracle, §2.3.4).
    TaposRead {
        /// Contract that called the API.
        contract: Name,
    },
    /// `send_inline` queued an inline action (Rollback oracle, §2.3.5).
    SendInline {
        /// Contract that called the API.
        contract: Name,
        /// Target contract of the inline action.
        target: Name,
        /// Target action name.
        action: Name,
    },
    /// `send_deferred` scheduled a deferred action.
    SendDeferred {
        /// Contract that called the API.
        contract: Name,
        /// Target contract.
        target: Name,
        /// Target action name.
        action: Name,
    },
    /// A database API touched a table (feeds the DBG, §3.3.2).
    Db(crate::database::DbOp),
    /// A token balance moved on the ledger (`from`, `to`, amount sub-units).
    TokenTransfer {
        /// The token contract.
        token: Name,
        /// Sender.
        from: Name,
        /// Receiver.
        to: Name,
        /// Amount in sub-units.
        amount: i64,
    },
}

/// Everything observed while executing one transaction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Receipt {
    /// Every `apply` that ran, in order.
    pub executed: Vec<ExecutedAction>,
    /// The instrumented target's trace records.
    pub trace: Vec<wasai_vm::TraceRecord>,
    /// Library-API events, in order.
    pub api_events: Vec<ApiEvent>,
    /// Steps of fuel consumed (drives the virtual clock).
    pub steps_used: u64,
}

impl Receipt {
    /// True if the given `apply(receiver, code, action)` combination ran.
    pub fn applied(&self, receiver: Name, code: Name, action: Name) -> bool {
        self.executed
            .iter()
            .any(|e| e.receiver == receiver && e.code == code && e.action == action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abi::ParamValue;
    use crate::asset::Asset;

    #[test]
    fn action_builder_packs_data_and_auth() {
        let a = Action::new(
            Name::new("eosio.token"),
            Name::new("transfer"),
            &[Name::new("alice")],
            &[
                ParamValue::Name(Name::new("alice")),
                ParamValue::Name(Name::new("bob")),
                ParamValue::Asset(Asset::eos(1)),
                ParamValue::String(String::new()),
            ],
        );
        assert!(a.authorized_by(Name::new("alice")));
        assert!(!a.authorized_by(Name::new("bob")));
        assert_eq!(a.data.len(), 8 + 8 + 16 + 1);
    }

    #[test]
    fn receipt_applied_matches_triples() {
        let mut r = Receipt::default();
        r.executed.push(ExecutedAction {
            receiver: Name::new("eosbet"),
            code: Name::new("eosio.token"),
            action: Name::new("transfer"),
            kind: ExecKind::Notification,
        });
        assert!(r.applied(
            Name::new("eosbet"),
            Name::new("eosio.token"),
            Name::new("transfer")
        ));
        assert!(!r.applied(
            Name::new("eosbet"),
            Name::new("eosbet"),
            Name::new("transfer")
        ));
    }
}
