//! EOSIO `asset` and `symbol` types.
//!
//! An asset is the 128-bit struct of Table 2: a 64-bit `amount` and a 64-bit
//! `symbol` (precision byte + up to 7 ASCII code characters). The paper's
//! running example is `"10.0000 EOS"`.

use std::fmt;
use std::str::FromStr;

/// A token symbol: precision in the low byte, code characters above it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u64);

impl Symbol {
    /// Build from a precision and a code like `"EOS"`.
    ///
    /// # Panics
    ///
    /// Panics if the code is empty, longer than 7 chars, or not `A-Z`.
    pub fn new(precision: u8, code: &str) -> Symbol {
        assert!(
            !code.is_empty() && code.len() <= 7 && code.bytes().all(|c| c.is_ascii_uppercase()),
            "invalid symbol code {code:?}"
        );
        let mut v = precision as u64;
        for (i, c) in code.bytes().enumerate() {
            v |= (c as u64) << (8 * (i + 1));
        }
        Symbol(v)
    }

    /// The display precision (number of decimals).
    pub fn precision(self) -> u8 {
        (self.0 & 0xff) as u8
    }

    /// The code characters, e.g. `"EOS"`.
    pub fn code(self) -> String {
        let mut s = String::new();
        let mut v = self.0 >> 8;
        while v != 0 {
            s.push((v & 0xff) as u8 as char);
            v >>= 8;
        }
        s
    }

    /// The raw packed value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// `10^precision`, the sub-unit scale factor.
    pub fn scale(self) -> i64 {
        10i64.pow(self.precision() as u32)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{},{}", self.precision(), self.code())
    }
}

/// The default EOS symbol: `"4,EOS"`.
pub fn eos_symbol() -> Symbol {
    Symbol::new(4, "EOS")
}

/// A quantity of some token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Asset {
    /// Amount in sub-units (e.g. 100000 = "10.0000 EOS").
    pub amount: i64,
    /// The token symbol.
    pub symbol: Symbol,
}

/// Error parsing an [`Asset`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAssetError {
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseAssetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid asset: {}", self.message)
    }
}

impl std::error::Error for ParseAssetError {}

impl Asset {
    /// An asset from sub-units.
    pub fn new(amount: i64, symbol: Symbol) -> Asset {
        Asset { amount, symbol }
    }

    /// `n` whole EOS (the paper's examples use whole-EOS quantities).
    pub fn eos(n: i64) -> Asset {
        let symbol = eos_symbol();
        Asset {
            amount: n * symbol.scale(),
            symbol,
        }
    }

    /// True when the amount is strictly positive.
    pub fn is_positive(self) -> bool {
        self.amount > 0
    }
}

impl fmt::Display for Asset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let scale = self.symbol.scale() as u64;
        let p = self.symbol.precision() as usize;
        // Sign handled explicitly: `-0.0001 EOS` has whole part 0, which
        // would otherwise print unsigned.
        let sign = if self.amount < 0 { "-" } else { "" };
        let mag = self.amount.unsigned_abs();
        let whole = mag / scale;
        let frac = mag % scale;
        if p == 0 {
            write!(f, "{sign}{whole} {}", self.symbol.code())
        } else {
            write!(f, "{sign}{whole}.{frac:0p$} {}", self.symbol.code())
        }
    }
}

impl FromStr for Asset {
    type Err = ParseAssetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |m: &str| ParseAssetError {
            message: format!("{s:?}: {m}"),
        };
        let (num, code) = s
            .split_once(' ')
            .ok_or_else(|| err("missing symbol code"))?;
        let (whole_str, frac_str) = match num.split_once('.') {
            Some((w, fr)) => (w, fr),
            None => (num, ""),
        };
        let negative = whole_str.starts_with('-');
        let whole: i64 = whole_str.parse().map_err(|_| err("bad whole part"))?;
        let precision = frac_str.len() as u8;
        if precision > 18 {
            return Err(err("precision too large"));
        }
        let frac: i64 = if frac_str.is_empty() {
            0
        } else {
            frac_str.parse().map_err(|_| err("bad fractional part"))?
        };
        if !code.bytes().all(|c| c.is_ascii_uppercase()) || code.is_empty() || code.len() > 7 {
            return Err(err("bad symbol code"));
        }
        let symbol = Symbol::new(precision, code);
        let scale = symbol.scale();
        let magnitude = whole.unsigned_abs() as i64 * scale + frac;
        let amount = if negative { -magnitude } else { magnitude };
        Ok(Asset { amount, symbol })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_roundtrip() {
        let a: Asset = "10.0000 EOS".parse().unwrap();
        assert_eq!(a.amount, 100_000);
        assert_eq!(a.symbol, eos_symbol());
        assert_eq!(a.to_string(), "10.0000 EOS");
    }

    #[test]
    fn eos_constructor_matches_parse() {
        assert_eq!(Asset::eos(10), "10.0000 EOS".parse().unwrap());
    }

    #[test]
    fn symbol_packing() {
        let s = eos_symbol();
        assert_eq!(s.precision(), 4);
        assert_eq!(s.code(), "EOS");
        // 'E' 'O' 'S' = 0x45 0x4f 0x53, little-endian above the precision.
        assert_eq!(s.raw(), 0x534f_4504);
    }

    #[test]
    fn negative_and_zero_precision() {
        let a: Asset = "-3.50 USD".parse().unwrap();
        assert_eq!(a.amount, -350);
        assert_eq!(a.to_string(), "-3.50 USD");
        let b: Asset = "7 GOLD".parse().unwrap();
        assert_eq!(b.amount, 7);
        assert_eq!(b.to_string(), "7 GOLD");
    }

    #[test]
    fn rejects_malformed() {
        assert!("10.0000".parse::<Asset>().is_err());
        assert!("x.y EOS".parse::<Asset>().is_err());
        assert!("1.0 eos".parse::<Asset>().is_err());
        assert!("1.0 TOOLONGGG".parse::<Asset>().is_err());
    }

    #[test]
    fn fake_eos_symbol_equals_real_one() {
        // The crux of the Fake EOS attack (§2.3.1): anyone can issue a token
        // whose symbol is bit-identical to the official one.
        let fake = Symbol::new(4, "EOS");
        assert_eq!(fake, eos_symbol());
    }
}
