//! Contract ABIs: action signatures and typed parameter values.
//!
//! The EOSIO compiler emits, next to the Wasm binary, "an ABI describing the
//! function signatures of the action functions" (§2.2). WASAI consumes both:
//! the ABI tells the fuzzer what a seed's parameter vector ρ⃗ looks like and
//! how it is serialized into the action's byte stream (C3).

use std::fmt;

use crate::asset::Asset;
use crate::name::Name;

/// A parameter type in an action signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamType {
    /// An account/action name (8 bytes).
    Name,
    /// An asset: amount + symbol (16 bytes).
    Asset,
    /// A length-prefixed string.
    String,
    /// Unsigned 64-bit integer.
    U64,
    /// Unsigned 32-bit integer.
    U32,
    /// Unsigned 8-bit integer.
    U8,
    /// Signed 64-bit integer.
    I64,
    /// 64-bit float.
    F64,
}

impl fmt::Display for ParamType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ParamType::Name => "name",
            ParamType::Asset => "asset",
            ParamType::String => "string",
            ParamType::U64 => "uint64",
            ParamType::U32 => "uint32",
            ParamType::U8 => "uint8",
            ParamType::I64 => "int64",
            ParamType::F64 => "float64",
        };
        f.write_str(s)
    }
}

/// A typed parameter value (one element of a seed's ρ⃗).
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// A name.
    Name(Name),
    /// An asset.
    Asset(Asset),
    /// A string.
    String(String),
    /// uint64.
    U64(u64),
    /// uint32.
    U32(u32),
    /// uint8.
    U8(u8),
    /// int64.
    I64(i64),
    /// float64.
    F64(f64),
}

impl ParamValue {
    /// The type of this value.
    pub fn param_type(&self) -> ParamType {
        match self {
            ParamValue::Name(_) => ParamType::Name,
            ParamValue::Asset(_) => ParamType::Asset,
            ParamValue::String(_) => ParamType::String,
            ParamValue::U64(_) => ParamType::U64,
            ParamValue::U32(_) => ParamType::U32,
            ParamValue::U8(_) => ParamType::U8,
            ParamValue::I64(_) => ParamType::I64,
            ParamValue::F64(_) => ParamType::F64,
        }
    }

    /// A zero/empty value of the given type (initial random seeds start from
    /// these and mutate).
    pub fn zero(t: ParamType) -> ParamValue {
        match t {
            ParamType::Name => ParamValue::Name(Name::default()),
            ParamType::Asset => ParamValue::Asset(Asset::eos(0)),
            ParamType::String => ParamValue::String(String::new()),
            ParamType::U64 => ParamValue::U64(0),
            ParamType::U32 => ParamValue::U32(0),
            ParamType::U8 => ParamValue::U8(0),
            ParamType::I64 => ParamValue::I64(0),
            ParamType::F64 => ParamValue::F64(0.0),
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Name(n) => write!(f, "{n}"),
            ParamValue::Asset(a) => write!(f, "{a}"),
            ParamValue::String(s) => write!(f, "{s:?}"),
            ParamValue::U64(v) => write!(f, "{v}"),
            ParamValue::U32(v) => write!(f, "{v}"),
            ParamValue::U8(v) => write!(f, "{v}"),
            ParamValue::I64(v) => write!(f, "{v}"),
            ParamValue::F64(v) => write!(f, "{v}"),
        }
    }
}

/// Declaration of one action function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionDecl {
    /// The action name (what `apply`'s third parameter carries).
    pub name: Name,
    /// Parameter types, in order.
    pub params: Vec<ParamType>,
}

impl ActionDecl {
    /// A new declaration.
    pub fn new(name: Name, params: Vec<ParamType>) -> Self {
        ActionDecl { name, params }
    }

    /// The canonical `transfer(name, name, asset, string)` signature every
    /// eosponser must share with `transfer@eosio.token` (§2.1).
    pub fn transfer() -> Self {
        ActionDecl::new(
            Name::new("transfer"),
            vec![
                ParamType::Name,
                ParamType::Name,
                ParamType::Asset,
                ParamType::String,
            ],
        )
    }
}

/// A contract ABI: the list of its action declarations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Abi {
    /// Declared actions.
    pub actions: Vec<ActionDecl>,
}

impl Abi {
    /// An ABI from declarations.
    pub fn new(actions: Vec<ActionDecl>) -> Self {
        Abi { actions }
    }

    /// Look up an action by name.
    pub fn action(&self, name: Name) -> Option<&ActionDecl> {
        self.actions.iter().find(|a| a.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_signature_matches_paper() {
        let t = ActionDecl::transfer();
        assert_eq!(t.name, Name::new("transfer"));
        assert_eq!(
            t.params,
            vec![
                ParamType::Name,
                ParamType::Name,
                ParamType::Asset,
                ParamType::String
            ]
        );
    }

    #[test]
    fn abi_lookup() {
        let abi = Abi::new(vec![ActionDecl::transfer()]);
        assert!(abi.action(Name::new("transfer")).is_some());
        assert!(abi.action(Name::new("reveal")).is_none());
    }

    #[test]
    fn zero_values_have_matching_types() {
        for t in [
            ParamType::Name,
            ParamType::Asset,
            ParamType::String,
            ParamType::U64,
            ParamType::U32,
            ParamType::U8,
            ParamType::I64,
            ParamType::F64,
        ] {
            assert_eq!(ParamValue::zero(t).param_type(), t);
        }
    }
}
