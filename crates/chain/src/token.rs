//! The token ledger and the native `eosio.token`-style contract logic.
//!
//! "EOSIO allows anyone to issue tokens with any name, enabling attackers to
//! release fake EOS tokens with identical name of the official one" (§2.3.1).
//! The ledger therefore keys balances by *(issuing contract, symbol)*: the
//! official EOS lives under `eosio.token`, a fake EOS under `fake.token`,
//! and the two never mix even though their symbols are bit-identical.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::asset::{Asset, Symbol};
use crate::name::Name;

/// Balances of every token of every issuer contract.
///
/// The map sits behind an [`Arc`] so the per-transaction rollback snapshot
/// and the prepared-target chain snapshot clone in O(1); the first write
/// after a snapshot copies the map (`Arc::make_mut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TokenLedger {
    /// (token contract, symbol, owner) → amount in sub-units.
    balances: Arc<BTreeMap<(Name, u64, Name), i64>>,
}

/// A transfer failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenError {
    /// Sender balance is too small.
    Overdrawn {
        /// The sender.
        from: Name,
        /// Their balance in sub-units.
        balance: i64,
        /// The attempted amount.
        amount: i64,
    },
    /// Transfers must move a positive quantity.
    NonPositive,
    /// Self transfers are rejected (as `eosio.token` does).
    SelfTransfer,
}

impl std::fmt::Display for TokenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenError::Overdrawn {
                from,
                balance,
                amount,
            } => {
                write!(f, "{from} has {balance} sub-units, cannot send {amount}")
            }
            TokenError::NonPositive => write!(f, "must transfer positive quantity"),
            TokenError::SelfTransfer => write!(f, "cannot transfer to self"),
        }
    }
}

impl std::error::Error for TokenError {}

impl TokenLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        TokenLedger::default()
    }

    /// Balance of `owner` in the token `(contract, symbol)`.
    pub fn balance(&self, contract: Name, symbol: Symbol, owner: Name) -> i64 {
        self.balances
            .get(&(contract, symbol.raw(), owner))
            .copied()
            .unwrap_or(0)
    }

    /// Mint tokens to an account (the `issue` action, simplified).
    pub fn issue(&mut self, contract: Name, owner: Name, quantity: Asset) {
        *Arc::make_mut(&mut self.balances)
            .entry((contract, quantity.symbol.raw(), owner))
            .or_insert(0) += quantity.amount;
    }

    /// Clone with the balance map physically copied (no structural
    /// sharing); benchmark-only, mirroring [`Database::deep_clone`].
    ///
    /// [`Database::deep_clone`]: crate::database::Database::deep_clone
    pub fn deep_clone(&self) -> TokenLedger {
        TokenLedger {
            balances: Arc::new((*self.balances).clone()),
        }
    }

    /// Move `quantity` of the token issued by `contract` from `from` to `to`.
    ///
    /// # Errors
    ///
    /// Rejects non-positive quantities, self transfers and overdrafts —
    /// causing the calling action (and transaction) to abort.
    pub fn transfer(
        &mut self,
        contract: Name,
        from: Name,
        to: Name,
        quantity: Asset,
    ) -> Result<(), TokenError> {
        if quantity.amount <= 0 {
            return Err(TokenError::NonPositive);
        }
        if from == to {
            return Err(TokenError::SelfTransfer);
        }
        let key_from = (contract, quantity.symbol.raw(), from);
        let balance = self.balances.get(&key_from).copied().unwrap_or(0);
        if balance < quantity.amount {
            return Err(TokenError::Overdrawn {
                from,
                balance,
                amount: quantity.amount,
            });
        }
        let balances = Arc::make_mut(&mut self.balances);
        *balances.entry(key_from).or_insert(0) -= quantity.amount;
        *balances
            .entry((contract, quantity.symbol.raw(), to))
            .or_insert(0) += quantity.amount;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asset::eos_symbol;

    #[test]
    fn issue_and_transfer() {
        let mut l = TokenLedger::new();
        let token = Name::new("eosio.token");
        l.issue(token, Name::new("alice"), Asset::eos(100));
        l.transfer(token, Name::new("alice"), Name::new("bob"), Asset::eos(30))
            .unwrap();
        assert_eq!(
            l.balance(token, eos_symbol(), Name::new("alice")),
            70 * 10_000
        );
        assert_eq!(
            l.balance(token, eos_symbol(), Name::new("bob")),
            30 * 10_000
        );
    }

    #[test]
    fn overdraft_rejected() {
        let mut l = TokenLedger::new();
        let token = Name::new("eosio.token");
        l.issue(token, Name::new("alice"), Asset::eos(1));
        let err = l
            .transfer(token, Name::new("alice"), Name::new("bob"), Asset::eos(2))
            .unwrap_err();
        assert!(matches!(err, TokenError::Overdrawn { .. }));
    }

    #[test]
    fn fake_token_is_a_distinct_ledger_entry() {
        // The Fake EOS attack's precondition: fake.token can issue "EOS"
        // that is bookkept separately from the official one.
        let mut l = TokenLedger::new();
        l.issue(
            Name::new("fake.token"),
            Name::new("attacker"),
            Asset::eos(1_000_000),
        );
        assert_eq!(
            l.balance(
                Name::new("eosio.token"),
                eos_symbol(),
                Name::new("attacker")
            ),
            0,
            "fake EOS must not count as official EOS"
        );
        assert_eq!(
            l.balance(Name::new("fake.token"), eos_symbol(), Name::new("attacker")),
            1_000_000 * 10_000
        );
    }

    #[test]
    fn degenerate_transfers_rejected() {
        let mut l = TokenLedger::new();
        let t = Name::new("eosio.token");
        l.issue(t, Name::new("a"), Asset::eos(5));
        assert_eq!(
            l.transfer(t, Name::new("a"), Name::new("a"), Asset::eos(1)),
            Err(TokenError::SelfTransfer)
        );
        assert_eq!(
            l.transfer(t, Name::new("a"), Name::new("b"), Asset::eos(0)),
            Err(TokenError::NonPositive)
        );
    }
}
