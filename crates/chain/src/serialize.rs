//! EOSIO binary (de)serialization of action data.
//!
//! "The meaningful input data will be serialized into a byte stream before
//! being fed to the smart contract, according to the function signatures
//! declared at the ABI" (C3, §3.2). This module is that byte stream codec:
//! names and integers little-endian, assets as amount‖symbol, strings as a
//! varuint32 length followed by the bytes.

use std::fmt;

use crate::abi::{ParamType, ParamValue};
use crate::asset::{Asset, Symbol};
use crate::name::Name;

/// Error unpacking action data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnpackError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for UnpackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unpack error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for UnpackError {}

/// Append a varuint32 (LEB128) length.
fn write_varuint32(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

/// Serialize one value.
pub fn pack_value(out: &mut Vec<u8>, v: &ParamValue) {
    match v {
        ParamValue::Name(n) => out.extend_from_slice(&n.raw().to_le_bytes()),
        ParamValue::Asset(a) => {
            out.extend_from_slice(&a.amount.to_le_bytes());
            out.extend_from_slice(&a.symbol.raw().to_le_bytes());
        }
        ParamValue::String(s) => {
            write_varuint32(out, s.len() as u32);
            out.extend_from_slice(s.as_bytes());
        }
        ParamValue::U64(v) => out.extend_from_slice(&v.to_le_bytes()),
        ParamValue::U32(v) => out.extend_from_slice(&v.to_le_bytes()),
        ParamValue::U8(v) => out.push(*v),
        ParamValue::I64(v) => out.extend_from_slice(&v.to_le_bytes()),
        ParamValue::F64(v) => out.extend_from_slice(&v.to_le_bytes()),
    }
}

/// Serialize a parameter vector ρ⃗ into action data bytes.
pub fn pack(values: &[ParamValue]) -> Vec<u8> {
    let mut out = Vec::new();
    for v in values {
        pack_value(&mut out, v);
    }
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, UnpackError> {
        Err(UnpackError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], UnpackError> {
        if self.pos + n > self.bytes.len() {
            return self.err("unexpected end of action data");
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u64_le(&mut self) -> Result<u64, UnpackError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn varuint32(&mut self) -> Result<u32, UnpackError> {
        let mut v: u32 = 0;
        let mut shift = 0;
        loop {
            let b = *self.bytes.get(self.pos).ok_or(UnpackError {
                offset: self.pos,
                message: "truncated varuint".into(),
            })?;
            self.pos += 1;
            v |= ((b & 0x7f) as u32) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 28 {
                return self.err("varuint32 too long");
            }
        }
    }
}

/// Deserialize action data according to a signature.
///
/// # Errors
///
/// Fails when the data is truncated or malformed; the chain treats that like
/// the SDK's deserializer aborting the action.
pub fn unpack(types: &[ParamType], bytes: &[u8]) -> Result<Vec<ParamValue>, UnpackError> {
    let mut r = Reader { bytes, pos: 0 };
    let mut out = Vec::with_capacity(types.len());
    for t in types {
        let v = match t {
            ParamType::Name => ParamValue::Name(Name(r.u64_le()?)),
            ParamType::Asset => {
                let amount = r.u64_le()? as i64;
                let symbol = Symbol(r.u64_le()?);
                ParamValue::Asset(Asset { amount, symbol })
            }
            ParamType::String => {
                let len = r.varuint32()? as usize;
                let raw = r.take(len)?;
                match std::str::from_utf8(raw) {
                    Ok(s) => ParamValue::String(s.to_string()),
                    Err(_) => return r.err("string is not UTF-8"),
                }
            }
            ParamType::U64 => ParamValue::U64(r.u64_le()?),
            ParamType::U32 => {
                let b = r.take(4)?;
                ParamValue::U32(u32::from_le_bytes(b.try_into().expect("4 bytes")))
            }
            ParamType::U8 => ParamValue::U8(r.take(1)?[0]),
            ParamType::I64 => ParamValue::I64(r.u64_le()? as i64),
            ParamType::F64 => ParamValue::F64(f64::from_bits(r.u64_le()?)),
        };
        out.push(v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abi::ActionDecl;

    #[test]
    fn transfer_roundtrip() {
        let values = vec![
            ParamValue::Name(Name::new("alice")),
            ParamValue::Name(Name::new("eosbet")),
            ParamValue::Asset("10.0000 EOS".parse().unwrap()),
            ParamValue::String("jackpot please".into()),
        ];
        let bytes = pack(&values);
        // name(8) + name(8) + asset(16) + varuint(1) + 14 string bytes
        assert_eq!(bytes.len(), 8 + 8 + 16 + 1 + 14);
        let decl = ActionDecl::transfer();
        assert_eq!(unpack(&decl.params, &bytes).unwrap(), values);
    }

    #[test]
    fn layout_is_little_endian_and_ordered() {
        let values = vec![
            ParamValue::Name(Name::new("alice")),
            ParamValue::Asset(Asset::eos(10)),
        ];
        let bytes = pack(&values);
        assert_eq!(&bytes[0..8], &Name::new("alice").raw().to_le_bytes());
        assert_eq!(&bytes[8..16], &100_000i64.to_le_bytes());
    }

    #[test]
    fn string_length_prefix_is_first_byte_for_short_strings() {
        // Table 2: "The first byte is the length of the string".
        let bytes = pack(&[ParamValue::String("abc".into())]);
        assert_eq!(bytes, vec![3, b'a', b'b', b'c']);
    }

    #[test]
    fn truncated_data_errors() {
        let err = unpack(&[ParamType::Name], &[1, 2, 3]).unwrap_err();
        assert!(err.message.contains("unexpected end"));
    }

    #[test]
    fn all_scalar_types_roundtrip() {
        let values = vec![
            ParamValue::U64(u64::MAX),
            ParamValue::U32(7),
            ParamValue::U8(255),
            ParamValue::I64(-9),
            ParamValue::F64(2.5),
        ];
        let types: Vec<ParamType> = values.iter().map(|v| v.param_type()).collect();
        assert_eq!(unpack(&types, &pack(&values)).unwrap(), values);
    }

    #[test]
    fn long_string_uses_multibyte_varint() {
        let s = "x".repeat(300);
        let bytes = pack(&[ParamValue::String(s.clone())]);
        assert_eq!(bytes[0], 0xac); // 300 = 0b10_0101100 → 0xac 0x02
        assert_eq!(bytes[1], 0x02);
        let back = unpack(&[ParamType::String], &bytes).unwrap();
        assert_eq!(back, vec![ParamValue::String(s)]);
    }
}
