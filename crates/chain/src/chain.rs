//! The local blockchain: accounts, contract execution, notifications,
//! inline/deferred actions and transaction rollback.
//!
//! This plays the role of the paper's Nodeos-based local chain (§3.1, step
//! "Initiation: we initiate a local blockchain with necessary smart
//! contracts, e.g. bin', eosio.token and some agent contracts used in the
//! adversary oracles").

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use wasai_vm::{
    CompiledModule, Fuel, Host, HostFnId, Instance, InstancePool, LinearMemory, Trap, Value,
};
use wasai_wasm::types::FuncType;

use crate::abi::{Abi, ParamValue};
use crate::action::{Action, ApiEvent, ExecKind, ExecutedAction, Receipt, Transaction};
use crate::asset::Asset;
use crate::database::{Database, DbAccess, DbOp, TableId};
use crate::error::{ChainError, TransactionError};
use crate::name::Name;
use crate::serialize;
use crate::token::TokenLedger;

/// Maximum nesting of notifications / inline actions.
const MAX_ACTION_DEPTH: u32 = 16;

/// Built-in (native) contract behaviours used as harness infrastructure.
///
/// The fuzz *target* is always a Wasm contract; natives model `eosio.token`
/// and the adversary-oracle agent contracts of §3.5, exactly the auxiliary
/// contracts the paper leaves uninstrumented.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NativeKind {
    /// An `eosio.token`-compatible token contract. Any account can host one
    /// (that is what makes Fake EOS possible, §2.3.1).
    Token,
    /// The `fake.notif` agent (§2.3.2): when notified of a transfer, it
    /// forwards the notification to `forward_to` — with `code` untouched.
    NotifForwarder {
        /// The victim to forward notifications to.
        forward_to: Name,
    },
}

/// A deployed Wasm contract.
#[derive(Debug)]
pub struct WasmContract {
    /// Compiled module ready to instantiate.
    pub compiled: Arc<CompiledModule>,
    /// Its ABI.
    pub abi: Abi,
    /// Import table resolved on first execution and reused by every later
    /// instantiation (resolution depends only on the module's import names,
    /// never on chain state, so caching cannot change behavior).
    resolved: OnceLock<Arc<Vec<HostFnId>>>,
}

impl WasmContract {
    /// Wrap a compiled module and its ABI for deployment.
    pub fn new(compiled: Arc<CompiledModule>, abi: Abi) -> Self {
        WasmContract {
            compiled,
            abi,
            resolved: OnceLock::new(),
        }
    }
}

/// What an account hosts.
#[derive(Debug, Clone, Default)]
pub enum AccountKind {
    /// No contract — a plain wallet account.
    #[default]
    Plain,
    /// A Wasm contract (behind an [`Arc`]: executing an action clones the
    /// account entry, and contracts should not deep-copy their ABI per call).
    Wasm(Arc<WasmContract>),
    /// A native harness contract.
    Native(NativeKind),
}

/// Chain configuration.
#[derive(Debug, Clone, Copy)]
pub struct ChainConfig {
    /// Fuel budget per transaction (instructions).
    pub fuel_per_tx: u64,
    /// Benchmark-only: emulate the pre-fast-path per-transaction costs —
    /// physically deep rollback snapshots and per-action import resolution
    /// instead of COW clones and the cached table. Observationally
    /// identical, only slower; `bench_vm` uses it as the baseline arm.
    pub legacy_exec_costs: bool,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            fuel_per_tx: 5_000_000,
            legacy_exec_costs: false,
        }
    }
}

/// The local blockchain.
#[derive(Debug, Default)]
pub struct Chain {
    accounts: BTreeMap<Name, AccountKind>,
    /// Persistent contract tables.
    pub db: Database,
    /// Token balances.
    pub ledger: TokenLedger,
    config: ChainConfig,
    block_num: u32,
    block_prefix: u32,
    time_us: i64,
    deferred_queue: Vec<Action>,
    // Per-transaction observation buffers.
    executed: Vec<ExecutedAction>,
    api_events: Vec<ApiEvent>,
    sink: wasai_vm::TraceSink,
    /// Reusable contract instances, keyed by receiver and compiled-module
    /// identity. Purely an allocation cache: instances are [`Instance::reset`]
    /// before reuse, so a pooled execution is indistinguishable from a fresh
    /// one. Never forked, never compared, bypassed under
    /// [`ChainConfig::legacy_exec_costs`].
    instance_pool: InstancePool<(Name, usize)>,
}

impl Chain {
    /// A fresh chain with default configuration.
    pub fn new() -> Self {
        Chain {
            sink: wasai_vm::TraceSink::new(),
            block_num: 1,
            block_prefix: 0x9e37_79b9,
            time_us: 1_600_000_000_000_000,
            ..Default::default()
        }
    }

    /// The chain's configuration.
    pub fn config(&self) -> ChainConfig {
        self.config
    }

    /// Replace the chain's configuration. The throughput benchmark uses this
    /// to flip [`ChainConfig::legacy_exec_costs`] on an already-set-up
    /// chain; configuration does not alter chain state, only execution cost.
    pub fn set_config(&mut self, config: ChainConfig) {
        self.config = config;
    }

    /// A fresh chain with a custom configuration.
    pub fn with_config(config: ChainConfig) -> Self {
        Chain {
            config,
            ..Chain::new()
        }
    }

    /// Create a plain account.
    ///
    /// # Errors
    ///
    /// Fails if the account exists.
    pub fn create_account(&mut self, name: Name) -> Result<(), ChainError> {
        if self.accounts.contains_key(&name) {
            return Err(ChainError::AccountExists(name));
        }
        self.accounts.insert(name, AccountKind::Plain);
        Ok(())
    }

    /// Deploy (or replace) a Wasm contract on an account, creating the
    /// account if needed.
    ///
    /// # Errors
    ///
    /// Fails if the module does not compile.
    pub fn deploy_wasm(
        &mut self,
        name: Name,
        module: wasai_wasm::Module,
        abi: Abi,
    ) -> Result<(), ChainError> {
        let compiled =
            CompiledModule::compile(module).map_err(|e| ChainError::BadContract(e.to_string()))?;
        self.deploy_compiled(name, compiled, abi);
        Ok(())
    }

    /// Deploy (or replace) an already-compiled Wasm contract on an account,
    /// creating the account if needed.
    ///
    /// Compilation is the expensive part of deployment; sharing one
    /// [`CompiledModule`] lets many chains (e.g. parallel fuzzing campaigns
    /// over the same contract) deploy it without recompiling.
    pub fn deploy_compiled(&mut self, name: Name, compiled: Arc<CompiledModule>, abi: Abi) {
        self.accounts.insert(
            name,
            AccountKind::Wasm(Arc::new(WasmContract::new(compiled, abi))),
        );
    }

    /// Fork this chain into an independent copy sharing unmodified state.
    ///
    /// Databases and ledgers are copy-on-write, account entries are `Arc`s:
    /// the fork starts byte-identical to `self` (minus per-transaction
    /// observation buffers, which only live inside `push_transaction`) and
    /// the two chains can never observe each other's subsequent writes.
    /// This is what turns one post-`setup_chain` snapshot into thousands of
    /// per-seed chains without replaying deployment from genesis.
    pub fn fork(&self) -> Chain {
        Chain {
            accounts: self.accounts.clone(),
            db: self.db.clone(),
            ledger: self.ledger.clone(),
            config: self.config,
            block_num: self.block_num,
            block_prefix: self.block_prefix,
            time_us: self.time_us,
            deferred_queue: self.deferred_queue.clone(),
            executed: Vec::new(),
            api_events: Vec::new(),
            sink: wasai_vm::TraceSink::new(),
            instance_pool: InstancePool::new(),
        }
    }

    /// Deploy a native harness contract.
    pub fn deploy_native(&mut self, name: Name, kind: NativeKind) {
        self.accounts.insert(name, AccountKind::Native(kind));
    }

    /// True if the account exists.
    pub fn is_account(&self, name: Name) -> bool {
        self.accounts.contains_key(&name)
    }

    /// The ABI of a deployed Wasm contract.
    pub fn abi_of(&self, name: Name) -> Option<&Abi> {
        match self.accounts.get(&name) {
            Some(AccountKind::Wasm(w)) => Some(&w.abi),
            _ => None,
        }
    }

    /// Mint tokens (issuer's `issue`, shortcut for test/fuzz setup).
    pub fn issue(&mut self, token_contract: Name, to: Name, quantity: Asset) {
        self.ledger.issue(token_contract, to, quantity);
    }

    /// Balance shortcut.
    pub fn balance(&self, token_contract: Name, owner: Name) -> Asset {
        let symbol = crate::asset::eos_symbol();
        Asset::new(self.ledger.balance(token_contract, symbol, owner), symbol)
    }

    /// Current synthetic block time in microseconds.
    pub fn now_us(&self) -> i64 {
        self.time_us
    }

    /// Execute a transaction atomically.
    ///
    /// On success the state changes stick; on a trap, database and ledger are
    /// rolled back (§2.3.5) but the [`Receipt`] of the partial execution is
    /// still returned inside the error, because the fuzzer analyzes failing
    /// runs too.
    ///
    /// # Errors
    ///
    /// [`TransactionError`] when any action (or nested notification / inline
    /// action) traps.
    pub fn push_transaction(&mut self, tx: &Transaction) -> Result<Receipt, TransactionError> {
        let (db_snapshot, ledger_snapshot) = if self.config.legacy_exec_costs {
            (self.db.deep_clone(), self.ledger.deep_clone())
        } else {
            (self.db.clone(), self.ledger.clone())
        };
        let deferred_mark = self.deferred_queue.len();
        self.executed.clear();
        self.api_events.clear();
        self.sink.take();

        let mut fuel = Fuel(self.config.fuel_per_tx);
        let mut failure: Option<(usize, Trap)> = None;
        for (i, action) in tx.actions.iter().enumerate() {
            if let Err(trap) = self.exec_action(action, ExecKind::Direct, &mut fuel, 0) {
                failure = Some((i, trap));
                break;
            }
        }

        let receipt = Receipt {
            executed: std::mem::take(&mut self.executed),
            trace: self.sink.take(),
            api_events: std::mem::take(&mut self.api_events),
            steps_used: self.config.fuel_per_tx - fuel.0,
        };
        self.advance_block();
        match failure {
            None => Ok(receipt),
            Some((action_index, trap)) => {
                self.db = db_snapshot;
                self.ledger = ledger_snapshot;
                // Deferred actions queued by the reverted transaction vanish;
                // ones queued by earlier transactions stay.
                self.deferred_queue.truncate(deferred_mark);
                Err(TransactionError {
                    trap,
                    action_index,
                    receipt,
                })
            }
        }
    }

    /// Push a single action signed by `auth` as its own transaction.
    ///
    /// # Errors
    ///
    /// See [`Chain::push_transaction`].
    pub fn push_action(
        &mut self,
        account: Name,
        name: Name,
        auth: &[Name],
        params: &[ParamValue],
    ) -> Result<Receipt, TransactionError> {
        let tx = Transaction::single(Action::new(account, name, auth, params));
        self.push_transaction(&tx)
    }

    /// Run all queued deferred actions, each in its own transaction (so the
    /// original caller cannot revert them — the §2.3.5 mitigation).
    pub fn run_deferred(&mut self) -> Vec<Result<Receipt, TransactionError>> {
        let queue = std::mem::take(&mut self.deferred_queue);
        queue
            .into_iter()
            .map(|a| self.push_transaction(&Transaction::single(a)))
            .collect()
    }

    /// Number of deferred actions waiting.
    pub fn deferred_len(&self) -> usize {
        self.deferred_queue.len()
    }

    fn advance_block(&mut self) {
        self.block_num = self.block_num.wrapping_add(1);
        // A deterministic pseudo-hash so tapos values vary across blocks.
        self.block_prefix = self
            .block_prefix
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(self.block_num);
        self.time_us += 500_000;
    }

    fn exec_action(
        &mut self,
        action: &Action,
        kind: ExecKind,
        fuel: &mut Fuel,
        depth: u32,
    ) -> Result<(), Trap> {
        if depth > MAX_ACTION_DEPTH {
            return Err(Trap::Host("action nesting too deep".into()));
        }
        self.executed.push(ExecutedAction {
            receiver: action.account,
            code: action.account,
            action: action.name,
            kind,
        });
        let account_kind = self.accounts.get(&action.account).cloned();
        let outcome = match account_kind {
            None => {
                return Err(Trap::Host(format!("no such account: {}", action.account)));
            }
            Some(AccountKind::Plain) => Outcome::default(),
            Some(AccountKind::Native(native)) => {
                self.exec_native(&native, action.account, action.account, action)?
            }
            Some(AccountKind::Wasm(w)) => {
                self.exec_wasm(&w, action.account, action.account, action, fuel)?
            }
        };
        self.settle(outcome, action.account, action, fuel, depth)
    }

    /// Deliver a notification: `receiver` observes `action` with the original
    /// `code` (this preserved `code` is exactly what Fake Notification
    /// exploits, §2.3.2).
    fn exec_notification(
        &mut self,
        receiver: Name,
        code: Name,
        action: &Action,
        fuel: &mut Fuel,
        depth: u32,
    ) -> Result<(), Trap> {
        if depth > MAX_ACTION_DEPTH {
            return Err(Trap::Host("notification nesting too deep".into()));
        }
        self.executed.push(ExecutedAction {
            receiver,
            code,
            action: action.name,
            kind: ExecKind::Notification,
        });
        let account_kind = self.accounts.get(&receiver).cloned();
        let outcome = match account_kind {
            None | Some(AccountKind::Plain) => Outcome::default(),
            Some(AccountKind::Native(native)) => {
                self.exec_native(&native, receiver, code, action)?
            }
            Some(AccountKind::Wasm(w)) => self.exec_wasm(&w, receiver, code, action, fuel)?,
        };
        self.settle_notification(outcome, code, action, fuel, depth)
    }

    fn settle(
        &mut self,
        outcome: Outcome,
        code: Name,
        action: &Action,
        fuel: &mut Fuel,
        depth: u32,
    ) -> Result<(), Trap> {
        for recipient in outcome.notifications {
            self.exec_notification(recipient, code, action, fuel, depth + 1)?;
        }
        for inline in outcome.inlines {
            self.exec_action(&inline, ExecKind::Inline, fuel, depth + 1)?;
        }
        self.deferred_queue.extend(outcome.deferred);
        Ok(())
    }

    fn settle_notification(
        &mut self,
        outcome: Outcome,
        code: Name,
        action: &Action,
        fuel: &mut Fuel,
        depth: u32,
    ) -> Result<(), Trap> {
        // Notifications forwarded from a notification keep the ORIGINAL code.
        self.settle(outcome, code, action, fuel, depth)
    }

    fn exec_native(
        &mut self,
        native: &NativeKind,
        receiver: Name,
        code: Name,
        action: &Action,
    ) -> Result<Outcome, Trap> {
        match native {
            NativeKind::Token => self.exec_token(receiver, code, action),
            NativeKind::NotifForwarder { forward_to } => {
                let mut out = Outcome::default();
                if receiver != code {
                    // Notified of someone else's action: forward it verbatim.
                    self.api_events.push(ApiEvent::RequireRecipient {
                        contract: receiver,
                        recipient: *forward_to,
                    });
                    out.notifications.push(*forward_to);
                }
                Ok(out)
            }
        }
    }

    /// The `eosio.token` logic (also used by fake issuers under other
    /// account names).
    fn exec_token(&mut self, receiver: Name, code: Name, action: &Action) -> Result<Outcome, Trap> {
        let mut out = Outcome::default();
        if receiver != code {
            // The token contract ignores notifications addressed to it.
            return Ok(out);
        }
        let transfer = Name::new("transfer");
        let issue = Name::new("issue");
        if action.name == transfer {
            let decl = crate::abi::ActionDecl::transfer();
            let values = serialize::unpack(&decl.params, &action.data)
                .map_err(|e| Trap::Host(format!("token transfer unpack: {e}")))?;
            let (from, to, quantity) = match (&values[0], &values[1], &values[2]) {
                (ParamValue::Name(f), ParamValue::Name(t), ParamValue::Asset(q)) => (*f, *t, *q),
                _ => return Err(Trap::Host("token transfer: bad types".into())),
            };
            if !action.authorized_by(from) {
                return Err(Trap::Host(format!("missing authority of {from}")));
            }
            self.ledger
                .transfer(receiver, from, to, quantity)
                .map_err(|e| Trap::Host(e.to_string()))?;
            self.api_events.push(ApiEvent::TokenTransfer {
                token: receiver,
                from,
                to,
                amount: quantity.amount,
            });
            // require_recipient(from); require_recipient(to) — notifying the
            // executing account itself is a no-op, as in nodeos.
            for party in [from, to] {
                if party != receiver {
                    out.notifications.push(party);
                }
            }
        } else if action.name == issue {
            let types = [crate::abi::ParamType::Name, crate::abi::ParamType::Asset];
            let values = serialize::unpack(&types, &action.data)
                .map_err(|e| Trap::Host(format!("token issue unpack: {e}")))?;
            let (to, quantity) = match (&values[0], &values[1]) {
                (ParamValue::Name(t), ParamValue::Asset(q)) => (*t, *q),
                _ => return Err(Trap::Host("token issue: bad types".into())),
            };
            if !action.authorized_by(receiver) {
                return Err(Trap::Host(format!(
                    "issue requires authority of {receiver}"
                )));
            }
            self.ledger.issue(receiver, to, quantity);
            out.notifications.push(to);
        }
        Ok(out)
    }

    fn exec_wasm(
        &mut self,
        contract: &WasmContract,
        receiver: Name,
        code: Name,
        action: &Action,
        fuel: &mut Fuel,
    ) -> Result<Outcome, Trap> {
        let compiled = contract.compiled.clone();
        let legacy = self.config.legacy_exec_costs;
        let _ = code; // `code` reaches the contract through apply()'s args
        let pool_key = (receiver, Arc::as_ptr(&compiled) as usize);
        // Take any pooled instance out before the host borrows the chain; it
        // is reset to the freshly-instantiated state below. The pooled
        // instance keeps its `compiled` Arc alive, so the pointer key cannot
        // be reused by a different module while the entry exists.
        let pooled = if legacy {
            None
        } else {
            self.instance_pool.take(&pool_key)
        };
        let mut host = ChainHost {
            chain: self,
            receiver,
            action,
            outcome: Outcome::default(),
            iterators: Vec::new(),
        };
        // Resolution is a pure function of the module's import names, so the
        // table is resolved once per contract and reused; failures are not
        // cached (re-resolving yields the same error). The legacy bench arm
        // re-resolves every action, as the seed interpreter did.
        let host_ids = match contract.resolved.get() {
            Some(ids) if !legacy => ids.clone(),
            _ => {
                let ids = wasai_vm::resolve_imports(&compiled, &mut host)
                    .map_err(|e| Trap::Host(e.to_string()))?;
                if legacy {
                    ids
                } else {
                    contract.resolved.get_or_init(|| ids).clone()
                }
            }
        };
        let reusable = pooled.and_then(|mut inst| inst.reset().is_ok().then_some(inst));
        let mut instance = match reusable {
            Some(inst) => inst,
            None => Instance::with_host_ids(compiled, host_ids)
                .map_err(|e| Trap::Host(e.to_string()))?,
        };
        let args = [
            Value::I64(receiver.as_i64()),
            Value::I64(code.as_i64()),
            Value::I64(action.name.as_i64()),
        ];
        let result = instance.invoke_export(&mut host, "apply", &args, fuel);
        let outcome = host.outcome;
        // Pool the instance even after a trap — reset() restores it before
        // the next use, and trapping runs are common while fuzzing.
        if !legacy {
            self.instance_pool.put(pool_key, instance);
        }
        result?;
        Ok(outcome)
    }
}

/// Side effects a single contract execution wants applied.
#[derive(Debug, Default)]
struct Outcome {
    notifications: Vec<Name>,
    inlines: Vec<Action>,
    deferred: Vec<Action>,
}

/// Host-function ids (EOSIO library APIs + WASAI trace hooks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Api {
    ReadActionData,
    ActionDataSize,
    CurrentReceiver,
    RequireAuth,
    HasAuth,
    RequireAuth2,
    RequireRecipient,
    IsAccount,
    EosioAssert,
    CurrentTime,
    TaposBlockNum,
    TaposBlockPrefix,
    SendInline,
    SendDeferred,
    DbStoreI64,
    DbFindI64,
    DbGetI64,
    DbUpdateI64,
    DbRemoveI64,
    DbNextI64,
    Printi,
    Prints,
}

/// Name table for import resolution.
const API_TABLE: &[(&str, Api)] = &[
    ("read_action_data", Api::ReadActionData),
    ("action_data_size", Api::ActionDataSize),
    ("current_receiver", Api::CurrentReceiver),
    ("require_auth", Api::RequireAuth),
    ("has_auth", Api::HasAuth),
    ("require_auth2", Api::RequireAuth2),
    ("require_recipient", Api::RequireRecipient),
    ("is_account", Api::IsAccount),
    ("eosio_assert", Api::EosioAssert),
    ("current_time", Api::CurrentTime),
    ("tapos_block_num", Api::TaposBlockNum),
    ("tapos_block_prefix", Api::TaposBlockPrefix),
    ("send_inline", Api::SendInline),
    ("send_deferred", Api::SendDeferred),
    ("db_store_i64", Api::DbStoreI64),
    ("db_find_i64", Api::DbFindI64),
    ("db_get_i64", Api::DbGetI64),
    ("db_update_i64", Api::DbUpdateI64),
    ("db_remove_i64", Api::DbRemoveI64),
    ("db_next_i64", Api::DbNextI64),
    ("printi", Api::Printi),
    ("prints", Api::Prints),
];

/// Base id for the trace hooks in the [`HostFnId`] space.
const HOOK_BASE: u32 = 1000;

struct ChainHost<'a> {
    chain: &'a mut Chain,
    receiver: Name,
    action: &'a Action,
    outcome: Outcome,
    /// db iterator handles: index → (table, primary key).
    iterators: Vec<(TableId, u64)>,
}

impl ChainHost<'_> {
    fn read_cstr(mem: &LinearMemory, ptr: u32) -> String {
        let mut out = Vec::new();
        let mut addr = ptr as u64;
        while out.len() < 256 {
            match mem.load_uint(addr, 1) {
                Ok(0) | Err(_) => break,
                Ok(b) => out.push(b as u8),
            }
            addr += 1;
        }
        String::from_utf8_lossy(&out).into_owned()
    }

    fn table_id(&self, scope: i64, table: i64) -> TableId {
        TableId {
            code: self.receiver,
            scope: Name::from_i64(scope),
            table: Name::from_i64(table),
        }
    }

    fn log_db(&mut self, access: DbAccess, table: TableId) {
        self.chain.api_events.push(ApiEvent::Db(DbOp {
            contract: self.receiver,
            access,
            table,
        }));
    }

    #[allow(clippy::too_many_lines)]
    fn call_api(
        &mut self,
        api: Api,
        args: &[Value],
        mem: &mut LinearMemory,
    ) -> Result<Option<Value>, Trap> {
        match api {
            Api::ReadActionData => {
                let ptr = args[0].as_i32() as u32;
                let len = args[1].as_i32() as u32;
                let n = (self.action.data.len() as u32).min(len);
                mem.write(ptr as u64, &self.action.data[..n as usize])?;
                Ok(Some(Value::I32(n as i32)))
            }
            Api::ActionDataSize => Ok(Some(Value::I32(self.action.data.len() as i32))),
            Api::CurrentReceiver => Ok(Some(Value::I64(self.receiver.as_i64()))),
            Api::RequireAuth => {
                let actor = Name::from_i64(args[0].as_i64());
                if self.action.authorized_by(actor) {
                    self.chain.api_events.push(ApiEvent::RequireAuth {
                        contract: self.receiver,
                        actor,
                    });
                    Ok(None)
                } else {
                    Err(Trap::Host(format!("missing required authority {actor}")))
                }
            }
            Api::RequireAuth2 => {
                let actor = Name::from_i64(args[0].as_i64());
                if self.action.authorized_by(actor) {
                    self.chain.api_events.push(ApiEvent::RequireAuth {
                        contract: self.receiver,
                        actor,
                    });
                    Ok(None)
                } else {
                    Err(Trap::Host(format!("missing required authority {actor}")))
                }
            }
            Api::HasAuth => {
                let actor = Name::from_i64(args[0].as_i64());
                let granted = self.action.authorized_by(actor);
                self.chain.api_events.push(ApiEvent::HasAuth {
                    contract: self.receiver,
                    actor,
                    granted,
                });
                Ok(Some(Value::I32(granted as i32)))
            }
            Api::RequireRecipient => {
                let recipient = Name::from_i64(args[0].as_i64());
                self.chain.api_events.push(ApiEvent::RequireRecipient {
                    contract: self.receiver,
                    recipient,
                });
                if recipient != self.receiver {
                    self.outcome.notifications.push(recipient);
                }
                Ok(None)
            }
            Api::IsAccount => {
                let name = Name::from_i64(args[0].as_i64());
                Ok(Some(Value::I32(self.chain.is_account(name) as i32)))
            }
            Api::EosioAssert => {
                let cond = args[0].as_i32();
                self.chain.api_events.push(ApiEvent::Assert {
                    contract: self.receiver,
                    passed: cond != 0,
                });
                if cond != 0 {
                    Ok(None)
                } else {
                    let msg = Self::read_cstr(mem, args[1].as_i32() as u32);
                    Err(Trap::AssertFailed(msg))
                }
            }
            Api::CurrentTime => Ok(Some(Value::I64(self.chain.time_us))),
            Api::TaposBlockNum => {
                self.chain.api_events.push(ApiEvent::TaposRead {
                    contract: self.receiver,
                });
                Ok(Some(Value::I32(self.chain.block_num as i32)))
            }
            Api::TaposBlockPrefix => {
                self.chain.api_events.push(ApiEvent::TaposRead {
                    contract: self.receiver,
                });
                Ok(Some(Value::I32(self.chain.block_prefix as i32)))
            }
            Api::SendInline => {
                let account = Name::from_i64(args[0].as_i64());
                let name = Name::from_i64(args[1].as_i64());
                let ptr = args[2].as_i32() as u32;
                let len = args[3].as_i32() as u32;
                let data = mem.read_vec(ptr as u64, len)?;
                self.chain.api_events.push(ApiEvent::SendInline {
                    contract: self.receiver,
                    target: account,
                    action: name,
                });
                // Inline actions carry the sending contract's authority.
                self.outcome.inlines.push(Action {
                    account,
                    name,
                    authorization: vec![crate::action::PermissionLevel::active(self.receiver)],
                    data,
                });
                Ok(None)
            }
            Api::SendDeferred => {
                let account = Name::from_i64(args[1].as_i64());
                let name = Name::from_i64(args[2].as_i64());
                let ptr = args[3].as_i32() as u32;
                let len = args[4].as_i32() as u32;
                let data = mem.read_vec(ptr as u64, len)?;
                self.chain.api_events.push(ApiEvent::SendDeferred {
                    contract: self.receiver,
                    target: account,
                    action: name,
                });
                self.outcome.deferred.push(Action {
                    account,
                    name,
                    authorization: vec![crate::action::PermissionLevel::active(self.receiver)],
                    data,
                });
                Ok(None)
            }
            Api::DbStoreI64 => {
                let table = self.table_id(args[0].as_i64(), args[1].as_i64());
                let id = args[3].as_i64() as u64;
                let ptr = args[4].as_i32() as u32;
                let len = args[5].as_i32() as u32;
                let data = mem.read_vec(ptr as u64, len)?;
                self.log_db(DbAccess::Write, table);
                if !self.chain.db.store(table, id, data) {
                    return Err(Trap::Host("db_store_i64: primary key exists".into()));
                }
                self.iterators.push((table, id));
                Ok(Some(Value::I32(self.iterators.len() as i32 - 1)))
            }
            Api::DbFindI64 => {
                let table = TableId {
                    code: Name::from_i64(args[0].as_i64()),
                    scope: Name::from_i64(args[1].as_i64()),
                    table: Name::from_i64(args[2].as_i64()),
                };
                let id = args[3].as_i64() as u64;
                self.log_db(DbAccess::Read, table);
                if self.chain.db.find(table, id).is_some() {
                    self.iterators.push((table, id));
                    Ok(Some(Value::I32(self.iterators.len() as i32 - 1)))
                } else {
                    Ok(Some(Value::I32(-1)))
                }
            }
            Api::DbGetI64 => {
                let itr = args[0].as_i32();
                let ptr = args[1].as_i32() as u32;
                let len = args[2].as_i32() as u32;
                let (table, id) = *self
                    .iterators
                    .get(itr as usize)
                    .ok_or_else(|| Trap::Host("db_get_i64: bad iterator".into()))?;
                let row = self
                    .chain
                    .db
                    .find(table, id)
                    .ok_or_else(|| Trap::Host("db_get_i64: row vanished".into()))?
                    .to_vec();
                let n = (row.len() as u32).min(len);
                mem.write(ptr as u64, &row[..n as usize])?;
                Ok(Some(Value::I32(row.len() as i32)))
            }
            Api::DbUpdateI64 => {
                let itr = args[0].as_i32();
                let ptr = args[2].as_i32() as u32;
                let len = args[3].as_i32() as u32;
                let (table, id) = *self
                    .iterators
                    .get(itr as usize)
                    .ok_or_else(|| Trap::Host("db_update_i64: bad iterator".into()))?;
                let data = mem.read_vec(ptr as u64, len)?;
                self.log_db(DbAccess::Write, table);
                if !self.chain.db.update(table, id, data) {
                    return Err(Trap::Host("db_update_i64: no such row".into()));
                }
                Ok(None)
            }
            Api::DbRemoveI64 => {
                let itr = args[0].as_i32();
                let (table, id) = *self
                    .iterators
                    .get(itr as usize)
                    .ok_or_else(|| Trap::Host("db_remove_i64: bad iterator".into()))?;
                self.log_db(DbAccess::Write, table);
                if !self.chain.db.remove(table, id) {
                    return Err(Trap::Host("db_remove_i64: no such row".into()));
                }
                Ok(None)
            }
            Api::DbNextI64 => {
                let itr = args[0].as_i32();
                let ptr = args[1].as_i32() as u32;
                let (table, id) = *self
                    .iterators
                    .get(itr as usize)
                    .ok_or_else(|| Trap::Host("db_next_i64: bad iterator".into()))?;
                self.log_db(DbAccess::Read, table);
                match self.chain.db.next_key(table, id) {
                    Some(next) => {
                        mem.store_uint(ptr as u64, 8, next)?;
                        self.iterators.push((table, next));
                        Ok(Some(Value::I32(self.iterators.len() as i32 - 1)))
                    }
                    None => Ok(Some(Value::I32(-1))),
                }
            }
            Api::Printi | Api::Prints => Ok(None),
        }
    }
}

impl Host for ChainHost<'_> {
    fn resolve(&mut self, module: &str, name: &str, _ty: &FuncType) -> Option<HostFnId> {
        if let Some(offset) = wasai_vm::host::hooks::hook_offset(module, name) {
            return Some(HostFnId(HOOK_BASE + offset));
        }
        if module != "env" {
            return None;
        }
        API_TABLE
            .iter()
            .position(|(n, _)| *n == name)
            .map(|i| HostFnId(i as u32))
    }

    fn call(
        &mut self,
        id: HostFnId,
        args: &[Value],
        mem: &mut LinearMemory,
    ) -> Result<Option<Value>, Trap> {
        if id.0 >= HOOK_BASE {
            wasai_vm::host::hooks::dispatch(&mut self.chain.sink, id.0 - HOOK_BASE, args);
            return Ok(None);
        }
        let api = API_TABLE[id.0 as usize].1;
        self.call_api(api, args, mem)
    }
}
