//! Chain-level error types.

use std::fmt;

use wasai_vm::Trap;

use crate::action::Receipt;
use crate::name::Name;

/// A transaction failed and was rolled back.
///
/// The receipt of the partial execution is preserved: WASAI analyzes traces
/// of reverted transactions too (a failed `eosio_assert` is exactly the
/// signal the constraint flipper feeds on, §3.4.4).
#[derive(Debug, Clone, PartialEq)]
pub struct TransactionError {
    /// The trap that aborted execution.
    pub trap: Trap,
    /// Index of the failing top-level action.
    pub action_index: usize,
    /// Observations up to the failure point.
    pub receipt: Receipt,
}

impl fmt::Display for TransactionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transaction reverted at action {}: {}",
            self.action_index, self.trap
        )
    }
}

impl std::error::Error for TransactionError {}

/// An error setting up chain state (deployment, account creation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// The account already exists.
    AccountExists(Name),
    /// The account does not exist.
    NoSuchAccount(Name),
    /// The module failed to compile/instantiate.
    BadContract(String),
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::AccountExists(n) => write!(f, "account {n} already exists"),
            ChainError::NoSuchAccount(n) => write!(f, "no such account: {n}"),
            ChainError::BadContract(m) => write!(f, "bad contract: {m}"),
        }
    }
}

impl std::error::Error for ChainError {}
