//! The per-contract key-value database behind the `db_*` library APIs
//! (§2.2) and the access log that feeds WASAI's database dependency graph
//! (DBG, §3.3.2).

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::name::Name;

/// Identifies one table: owning contract, scope, table name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId {
    /// The contract that owns the table (`code`).
    pub code: Name,
    /// The scope within the contract.
    pub scope: Name,
    /// The table name.
    pub table: Name,
}

/// Whether a database operation read or wrote persistent state
/// (the ⟨△.read | △.write, tb⟩ pairs of §3.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DbAccess {
    /// `db_find` / `db_get`.
    Read,
    /// `db_store` / `db_update` / `db_remove`.
    Write,
}

/// One logged database operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbOp {
    /// Contract that performed the access.
    pub contract: Name,
    /// Read or write.
    pub access: DbAccess,
    /// The table touched.
    pub table: TableId,
}

/// The chain-wide database: every contract's tables.
///
/// Tables are held behind [`Arc`]s so cloning the database — the
/// transaction-rollback snapshot and the prepared-target chain snapshot —
/// is O(number of tables) pointer bumps. Mutation copies a table's rows
/// only when it is actually shared (`Arc::make_mut`), so writes after a
/// snapshot never leak into the snapshot or into sibling forks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Database {
    tables: BTreeMap<TableId, Arc<BTreeMap<u64, Vec<u8>>>>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Store a fresh row; returns `false` if the primary key already exists.
    pub fn store(&mut self, table: TableId, primary: u64, data: Vec<u8>) -> bool {
        let rows = self.tables.entry(table).or_default();
        if rows.contains_key(&primary) {
            return false;
        }
        Arc::make_mut(rows).insert(primary, data);
        true
    }

    /// Look up a row.
    pub fn find(&self, table: TableId, primary: u64) -> Option<&[u8]> {
        self.tables.get(&table)?.get(&primary).map(Vec::as_slice)
    }

    /// Replace an existing row; returns `false` if it does not exist.
    pub fn update(&mut self, table: TableId, primary: u64, data: Vec<u8>) -> bool {
        match self.tables.get_mut(&table) {
            Some(rows) if rows.contains_key(&primary) => {
                Arc::make_mut(rows).insert(primary, data);
                true
            }
            _ => false,
        }
    }

    /// Remove a row; returns `false` if it does not exist.
    pub fn remove(&mut self, table: TableId, primary: u64) -> bool {
        match self.tables.get_mut(&table) {
            Some(rows) if rows.contains_key(&primary) => {
                Arc::make_mut(rows).remove(&primary);
                true
            }
            _ => false,
        }
    }

    /// Clone with every table's rows physically copied (no structural
    /// sharing). Only the throughput benchmark uses this, to reproduce the
    /// pre-COW snapshot cost it measures the fast path against.
    pub fn deep_clone(&self) -> Database {
        Database {
            tables: self
                .tables
                .iter()
                .map(|(id, rows)| (*id, Arc::new((**rows).clone())))
                .collect(),
        }
    }

    /// The smallest primary key strictly greater than `primary`, if any.
    pub fn next_key(&self, table: TableId, primary: u64) -> Option<u64> {
        self.tables
            .get(&table)?
            .range((
                std::ops::Bound::Excluded(primary),
                std::ops::Bound::Unbounded,
            ))
            .next()
            .map(|(k, _)| *k)
    }

    /// Number of rows in a table.
    pub fn row_count(&self, table: TableId) -> usize {
        self.tables.get(&table).map(|rows| rows.len()).unwrap_or(0)
    }

    /// All tables owned by `code` that contain at least one row.
    pub fn tables_of(&self, code: Name) -> Vec<TableId> {
        self.tables
            .iter()
            .filter(|(id, rows)| id.code == code && !rows.is_empty())
            .map(|(id, _)| *id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid() -> TableId {
        TableId {
            code: Name::new("eosbet"),
            scope: Name::new("eosbet"),
            table: Name::new("players"),
        }
    }

    #[test]
    fn store_find_update_remove_cycle() {
        let mut db = Database::new();
        assert!(db.store(tid(), 1, vec![1, 2]));
        assert!(
            !db.store(tid(), 1, vec![3]),
            "duplicate primary key rejected"
        );
        assert_eq!(db.find(tid(), 1), Some(&[1u8, 2][..]));
        assert!(db.update(tid(), 1, vec![9]));
        assert_eq!(db.find(tid(), 1), Some(&[9u8][..]));
        assert!(db.remove(tid(), 1));
        assert!(!db.remove(tid(), 1));
        assert_eq!(db.find(tid(), 1), None);
    }

    #[test]
    fn update_of_missing_row_fails() {
        let mut db = Database::new();
        assert!(!db.update(tid(), 5, vec![]));
    }

    #[test]
    fn next_key_iterates_in_order() {
        let mut db = Database::new();
        for k in [5u64, 1, 9] {
            db.store(tid(), k, vec![]);
        }
        assert_eq!(db.next_key(tid(), 0), Some(1));
        assert_eq!(db.next_key(tid(), 1), Some(5));
        assert_eq!(db.next_key(tid(), 5), Some(9));
        assert_eq!(db.next_key(tid(), 9), None);
    }

    #[test]
    fn tables_of_filters_by_code() {
        let mut db = Database::new();
        db.store(tid(), 1, vec![]);
        let other = TableId {
            code: Name::new("other"),
            scope: Name::new("other"),
            table: Name::new("t"),
        };
        db.store(other, 1, vec![]);
        assert_eq!(db.tables_of(Name::new("eosbet")), vec![tid()]);
    }

    #[test]
    fn cow_forks_isolate_writes_both_ways() {
        // Two forks of one base: each fork's writes stay private, and the
        // shared base stays untouched (the overlay-isolation contract).
        let mut base = Database::new();
        base.store(tid(), 1, vec![1]);
        let mut fork_a = base.clone();
        let mut fork_b = base.clone();
        fork_a.update(tid(), 1, vec![0xA]);
        fork_b.store(tid(), 2, vec![0xB]);
        fork_b.remove(tid(), 1);
        assert_eq!(base.find(tid(), 1), Some(&[1u8][..]));
        assert_eq!(base.find(tid(), 2), None);
        assert_eq!(fork_a.find(tid(), 1), Some(&[0xAu8][..]));
        assert_eq!(fork_a.find(tid(), 2), None);
        assert_eq!(fork_b.find(tid(), 1), None);
        assert_eq!(fork_b.find(tid(), 2), Some(&[0xBu8][..]));
    }

    #[test]
    fn deep_clone_matches_cow_clone_observationally() {
        let mut db = Database::new();
        db.store(tid(), 1, vec![1, 2, 3]);
        db.store(tid(), 9, vec![]);
        assert_eq!(db.deep_clone(), db.clone());
    }

    #[test]
    fn snapshot_semantics_via_clone() {
        // Transactions roll back by restoring a cloned snapshot (§2.3.5).
        let mut db = Database::new();
        db.store(tid(), 1, vec![1]);
        let snapshot = db.clone();
        db.update(tid(), 1, vec![2]);
        db.store(tid(), 2, vec![]);
        assert_ne!(db, snapshot);
        let db = snapshot;
        assert_eq!(db.find(tid(), 1), Some(&[1u8][..]));
        assert_eq!(db.find(tid(), 2), None);
    }
}
