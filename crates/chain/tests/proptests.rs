//! Property tests on the EOSIO data types and the action-data codec.

use proptest::prelude::*;

use wasai_chain::abi::{ParamType, ParamValue};
use wasai_chain::asset::{Asset, Symbol};
use wasai_chain::name::Name;
use wasai_chain::serialize::{pack, unpack};

/// A valid EOSIO name string: 1..=12 chars of [a-z1-5.] with no trailing
/// dots (trailing dots are trimmed by Display, so exclude them for clean
/// round-trips).
fn arb_name_str() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z1-5][a-z1-5.]{0,10}[a-z1-5]|[a-z1-5]").expect("valid regex")
}

fn arb_symbol() -> impl Strategy<Value = Symbol> {
    ("[A-Z]{1,7}", 0u8..12).prop_map(|(code, precision)| Symbol::new(precision, &code))
}

fn arb_param() -> impl Strategy<Value = ParamValue> {
    prop_oneof![
        arb_name_str().prop_map(|s| ParamValue::Name(Name::new(&s))),
        (any::<i64>(), arb_symbol()).prop_map(|(a, s)| ParamValue::Asset(Asset::new(a, s))),
        "[ -~]{0,40}".prop_map(ParamValue::String),
        any::<u64>().prop_map(ParamValue::U64),
        any::<u32>().prop_map(ParamValue::U32),
        any::<u8>().prop_map(ParamValue::U8),
        any::<i64>().prop_map(ParamValue::I64),
        any::<f64>().prop_map(ParamValue::F64),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Name strings survive the pack → display round trip.
    #[test]
    fn name_roundtrip(s in arb_name_str()) {
        let n = Name::new(&s);
        prop_assert_eq!(n.to_string(), s);
        prop_assert_eq!(Name::from_i64(n.as_i64()), n);
    }

    /// Name encoding is injective over distinct strings.
    #[test]
    fn name_injective(a in arb_name_str(), b in arb_name_str()) {
        prop_assert_eq!(a == b, Name::new(&a) == Name::new(&b));
    }

    /// Assets round-trip through their display form.
    #[test]
    fn asset_display_roundtrip(amount in -1_000_000_000_000i64..1_000_000_000_000i64,
                               sym in arb_symbol()) {
        let a = Asset::new(amount, sym);
        let parsed: Asset = a.to_string().parse().expect("parses own display");
        prop_assert_eq!(parsed, a);
    }

    /// Arbitrary parameter vectors survive the EOSIO byte-stream codec.
    #[test]
    fn action_data_roundtrip(values in prop::collection::vec(arb_param(), 0..6)) {
        // NaN-valued floats break equality; compare via bit patterns.
        let types: Vec<ParamType> = values.iter().map(ParamValue::param_type).collect();
        let bytes = pack(&values);
        let back = unpack(&types, &bytes).expect("unpacks own packing");
        prop_assert_eq!(back.len(), values.len());
        for (x, y) in values.iter().zip(&back) {
            match (x, y) {
                (ParamValue::F64(a), ParamValue::F64(b)) => {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
                _ => prop_assert_eq!(x, y),
            }
        }
    }

    /// Truncating packed data never panics — it errors.
    #[test]
    fn truncated_unpack_errors_not_panics(values in prop::collection::vec(arb_param(), 1..5),
                                          cut in 0usize..64) {
        let types: Vec<ParamType> = values.iter().map(ParamValue::param_type).collect();
        let bytes = pack(&values);
        if cut < bytes.len() {
            let _ = unpack(&types, &bytes[..cut]); // may Err, must not panic
        }
    }

    /// The token ledger conserves total supply under arbitrary transfers.
    #[test]
    fn ledger_conserves_supply(transfers in prop::collection::vec(
        (0u8..4, 0u8..4, 1i64..1000), 0..30))
    {
        use wasai_chain::token::TokenLedger;
        let accounts = [Name::new("a"), Name::new("b"), Name::new("c"), Name::new("d")];
        let token = Name::new("eosio.token");
        let mut ledger = TokenLedger::new();
        for &acct in &accounts {
            ledger.issue(token, acct, Asset::eos(1000));
        }
        let total = |l: &TokenLedger| -> i64 {
            accounts
                .iter()
                .map(|&a| l.balance(token, wasai_chain::asset::eos_symbol(), a))
                .sum()
        };
        let initial = total(&ledger);
        for (f, t, amt) in transfers {
            let _ = ledger.transfer(
                token,
                accounts[f as usize],
                accounts[t as usize],
                Asset::new(amt * 10_000, wasai_chain::asset::eos_symbol()),
            );
        }
        prop_assert_eq!(total(&ledger), initial, "transfers must conserve supply");
        for &acct in &accounts {
            prop_assert!(ledger.balance(token, wasai_chain::asset::eos_symbol(), acct) >= 0);
        }
    }
}
