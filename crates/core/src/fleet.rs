//! Fleet — deterministic parallel campaign orchestration.
//!
//! The paper's experiments run hundreds of independent fuzzing campaigns
//! (contract × tool × seed). Each campaign is single-threaded and seeded
//! from its sample index, so campaigns are embarrassingly parallel *if* the
//! merge step is careful: results must be combined in index order, never in
//! completion order, so the merged output (accuracy tables, wild-corpus
//! counts, coverage series) is bit-identical regardless of worker count.
//!
//! [`run_jobs`] implements that contract with a work-queue scheduler on
//! [`std::thread::scope`]: workers pull `(index, item)` jobs from a shared
//! queue and write each result into its index-keyed slot, and the slot
//! vector is returned in index order. `jobs == 1` bypasses the scheduler
//! entirely and runs the items serially on the calling thread.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Resolve the worker count from the `WASAI_JOBS` environment variable.
///
/// Unset, empty, `0`, or unparsable → available hardware parallelism;
/// `1` → serial execution on the calling thread; `n` → `n` workers.
pub fn jobs_from_env() -> usize {
    match std::env::var("WASAI_JOBS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(0) | Err(_) => default_jobs(),
            Ok(n) => n,
        },
        Err(_) => default_jobs(),
    }
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Throughput of one fleet run, for the bench binaries' summary line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetStats {
    /// Worker threads used (1 = serial path).
    pub jobs: usize,
    /// Campaigns completed.
    pub campaigns: usize,
    /// Aggregate virtual microseconds simulated across all campaigns.
    pub virtual_us: u64,
    /// Wall-clock duration of the whole fleet.
    pub wall: Duration,
}

impl FleetStats {
    /// Campaigns completed per wall-clock second.
    pub fn campaigns_per_sec(&self) -> f64 {
        self.campaigns as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Aggregate virtual microseconds simulated per wall-clock second.
    pub fn virtual_us_per_sec(&self) -> f64 {
        self.virtual_us as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// The standard one-line summary printed by the experiment binaries.
    pub fn summary(&self) -> String {
        format!(
            "fleet: {} campaigns on {} worker(s) in {:.2}s — {:.2} campaigns/s, {:.0} virtual-µs/s",
            self.campaigns,
            self.jobs,
            self.wall.as_secs_f64(),
            self.campaigns_per_sec(),
            self.virtual_us_per_sec(),
        )
    }
}

/// Run `worker` over every `(index, item)` on `jobs` threads and return the
/// results in index order.
///
/// Determinism contract: `worker` must derive all randomness from its own
/// arguments (in this workspace, campaign seeds derive from the sample
/// index), so the result at slot `i` does not depend on scheduling. The
/// scheduler only affects *when* a slot is filled, never *what* fills it.
///
/// With `jobs <= 1` the items run serially on the calling thread — the
/// reference path parallel runs are checked against.
///
/// # Panics
///
/// Propagates a panic from any worker thread.
pub fn run_jobs<I, T, F>(jobs: usize, items: Vec<I>, worker: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| worker(i, item))
            .collect();
    }

    let n = items.len();
    let queue: Mutex<VecDeque<(usize, I)>> = Mutex::new(items.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                let job = queue.lock().expect("fleet queue poisoned").pop_front();
                let Some((i, item)) = job else { break };
                let result = worker(i, item);
                *slots[i].lock().expect("fleet slot poisoned") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("fleet slot poisoned")
                .expect("every queued job fills its slot")
        })
        .collect()
}

/// [`run_jobs`] with wall-clock + virtual-time accounting: `virtual_us`
/// extracts each result's simulated duration for the throughput summary.
pub fn run_jobs_timed<I, T, F, V>(
    jobs: usize,
    items: Vec<I>,
    worker: F,
    virtual_us: V,
) -> (Vec<T>, FleetStats)
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
    V: Fn(&T) -> u64,
{
    let start = Instant::now();
    let results = run_jobs(jobs, items, worker);
    let wall = start.elapsed();
    let stats = FleetStats {
        jobs: jobs.max(1),
        campaigns: results.len(),
        virtual_us: results.iter().map(&virtual_us).sum(),
        wall,
    };
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_index_order() {
        // Stagger completion so later indices finish first under parallelism.
        let items: Vec<u64> = (0..32).collect();
        let out = run_jobs(4, items, |i, x| {
            std::thread::sleep(Duration::from_micros(200 - 6 * i as u64));
            x * 2
        });
        assert_eq!(out, (0..32).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let work = |i: usize, x: u64| x.wrapping_mul(0x9e37_79b9).rotate_left(i as u32);
        let items: Vec<u64> = (0..100).map(|i| i * 7).collect();
        let serial = run_jobs(1, items.clone(), work);
        let parallel = run_jobs(8, items, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn all_jobs_run_exactly_once() {
        let count = AtomicUsize::new(0);
        let out = run_jobs(3, (0..50).collect::<Vec<_>>(), |_, x: i32| {
            count.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(out.len(), 50);
        assert_eq!(count.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn timed_variant_sums_virtual_time() {
        let (out, stats) = run_jobs_timed(2, vec![10u64, 20, 30], |_, x| x, |&t| t);
        assert_eq!(out, vec![10, 20, 30]);
        assert_eq!(stats.campaigns, 3);
        assert_eq!(stats.virtual_us, 60);
        assert!(stats.campaigns_per_sec() > 0.0);
    }

    #[test]
    fn jobs_env_parsing() {
        // No env manipulation here (tests run in parallel); exercise the
        // default path only.
        assert!(default_jobs() >= 1);
    }
}
