//! Fleet — deterministic parallel campaign orchestration.
//!
//! The paper's experiments run hundreds of independent fuzzing campaigns
//! (contract × tool × seed). Each campaign is single-threaded and seeded
//! from its sample index, so campaigns are embarrassingly parallel *if* the
//! merge step is careful: results must be combined in index order, never in
//! completion order, so the merged output (accuracy tables, wild-corpus
//! counts, coverage series) is bit-identical regardless of worker count.
//!
//! [`run_jobs`] implements that contract with a work-queue scheduler on
//! [`std::thread::scope`]: workers pull `(index, item)` jobs from a shared
//! queue and write each result into its index-keyed slot, and the slot
//! vector is returned in index order. `jobs == 1` bypasses the scheduler
//! entirely and runs the items serially on the calling thread.
//!
//! [`run_jobs_isolated`] layers fault isolation on top of the same
//! scheduler: each campaign runs under [`std::panic::catch_unwind`] and a
//! cooperative wall-clock [`Deadline`], so one panicking, trapping, or
//! hanging campaign is reported as a structured [`CampaignOutcome`] in its
//! slot while every other slot is exactly what a clean run would produce.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use wasai_chain::ChainError;
use wasai_obs as obs;
use wasai_smt::Deadline;

use crate::chaos::Fault;
use crate::telemetry::{TelemetryEvent, TelemetrySink};

pub mod journal;
pub mod supervisor;

/// Lock `m`, recovering the guard if a previous holder panicked.
///
/// Fleet state stays coherent under poisoning: the queue only ever has
/// completed `pop_front` calls applied and each slot holds either `None` or
/// a fully-written result, so an interrupted critical section never leaves a
/// torn value behind.
fn recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Resolve the worker count from the `WASAI_JOBS` environment variable.
///
/// Unset, empty, `0`, or unparsable → available hardware parallelism;
/// `1` → serial execution on the calling thread; `n` → `n` workers.
pub fn jobs_from_env() -> usize {
    match std::env::var("WASAI_JOBS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(0) | Err(_) => default_jobs(),
            Ok(n) => n,
        },
        Err(_) => default_jobs(),
    }
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolve a wall-clock deadline from the `WASAI_DEADLINE` environment
/// variable (seconds, fractional allowed).
///
/// Unset, empty, non-positive, or unparsable → [`Deadline::NONE`] (no
/// watchdog, fully deterministic campaigns).
pub fn deadline_from_env() -> Deadline {
    match std::env::var("WASAI_DEADLINE") {
        Ok(v) => match v.trim().parse::<f64>() {
            Ok(secs) if secs > 0.0 => Deadline::after_secs(secs),
            _ => Deadline::NONE,
        },
        Err(_) => Deadline::NONE,
    }
}

/// Throughput of one fleet run, for the bench binaries' summary line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetStats {
    /// Worker threads used (1 = serial path).
    pub jobs: usize,
    /// Campaigns completed.
    pub campaigns: usize,
    /// Aggregate virtual microseconds simulated across all campaigns.
    pub virtual_us: u64,
    /// Wall-clock duration of the whole fleet.
    pub wall: Duration,
}

impl FleetStats {
    /// Campaigns completed per wall-clock second.
    pub fn campaigns_per_sec(&self) -> f64 {
        self.campaigns as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Aggregate virtual microseconds simulated per wall-clock second.
    pub fn virtual_us_per_sec(&self) -> f64 {
        self.virtual_us as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// The standard one-line summary printed by the experiment binaries.
    pub fn summary(&self) -> String {
        format!(
            "fleet: {} campaigns on {} worker(s) in {:.2}s — {:.2} campaigns/s, {:.0} virtual-µs/s",
            self.campaigns,
            self.jobs,
            self.wall.as_secs_f64(),
            self.campaigns_per_sec(),
            self.virtual_us_per_sec(),
        )
    }
}

/// Run `worker` over every `(index, item)` on `jobs` threads and return the
/// results in index order.
///
/// Determinism contract: `worker` must derive all randomness from its own
/// arguments (in this workspace, campaign seeds derive from the sample
/// index), so the result at slot `i` does not depend on scheduling. The
/// scheduler only affects *when* a slot is filled, never *what* fills it.
///
/// With `jobs <= 1` the items run serially on the calling thread — the
/// reference path parallel runs are checked against.
///
/// # Panics
///
/// Propagates a panic from any worker thread.
pub fn run_jobs<I, T, F>(jobs: usize, items: Vec<I>, worker: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    // Observability bracket: stamp each job's heartbeat slot and the
    // running-campaigns gauge around the worker call. Write-only wall-clock
    // metrics — scheduling and results are untouched (no-ops when disabled).
    obs::global().gauge_set(obs::Gauge::FleetCampaigns, items.len() as u64);
    let observed = |i: usize, item: I| -> T {
        obs::worker::begin(i as u64);
        obs::global().gauge_add(obs::Gauge::CampaignsRunning, 1);
        let result = worker(i, item);
        obs::global().gauge_sub(obs::Gauge::CampaignsRunning, 1);
        obs::worker::end();
        result
    };

    if jobs <= 1 || items.len() <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| observed(i, item))
            .collect();
    }

    let n = items.len();
    let queue: Mutex<VecDeque<(usize, I)>> = Mutex::new(items.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                let job = recover(&queue).pop_front();
                let Some((i, item)) = job else { break };
                let result = observed(i, item);
                *recover(&slots[i]) = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .expect("every queued job fills its slot")
        })
        .collect()
}

/// [`run_jobs`] with wall-clock + virtual-time accounting: `virtual_us`
/// extracts each result's simulated duration for the throughput summary.
pub fn run_jobs_timed<I, T, F, V>(
    jobs: usize,
    items: Vec<I>,
    worker: F,
    virtual_us: V,
) -> (Vec<T>, FleetStats)
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
    V: Fn(&T) -> u64,
{
    let start = Instant::now();
    let results = run_jobs(jobs, items, worker);
    let wall = start.elapsed();
    let stats = FleetStats {
        jobs: jobs.max(1),
        campaigns: results.len(),
        virtual_us: results.iter().map(&virtual_us).sum(),
        wall,
    };
    (results, stats)
}

/// Campaign-stage attribution for panic triage.
///
/// Long-running stages mark themselves with [`stage::enter`] on their worker
/// thread; when [`run_jobs_isolated`] contains a panic, it reads
/// [`stage::current`] so the triage report can say *where* the campaign died
/// ("replay", "solve", …) instead of just that it died.
pub mod stage {
    use std::cell::Cell;

    /// The default stage — set at every campaign start so attribution never
    /// leaks across jobs that share a worker thread.
    pub const CAMPAIGN: &str = "campaign";
    /// Instrumented concrete execution on the local chain.
    pub const EXECUTE: &str = "execute";
    /// Symbolic trace replay (Symback).
    pub const REPLAY: &str = "replay";
    /// Constraint solving.
    pub const SOLVE: &str = "solve";
    /// Target preparation (decode/validate/instrument/deploy).
    pub const PREPARE: &str = "prepare";

    thread_local! {
        static STAGE: Cell<&'static str> = const { Cell::new(CAMPAIGN) };
    }

    /// Mark the current thread as being inside `name`.
    ///
    /// Also mirrors the marker into the observability heartbeat slot so the
    /// stall detector can say which stage a quiet campaign is stuck in —
    /// a no-op (one relaxed load) unless metrics are enabled.
    pub fn enter(name: &'static str) {
        STAGE.with(|s| s.set(name));
        wasai_obs::worker::set_stage_name(name);
    }

    /// The stage the current thread most recently entered.
    pub fn current() -> &'static str {
        STAGE.with(|s| s.get())
    }

    /// Map an arbitrary stage string back to the canonical `&'static str`
    /// marker (unknown names, and the triage `-` placeholder, map to
    /// [`CAMPAIGN`] / `-`). Used when outcomes cross a process boundary and
    /// come back as owned strings.
    pub fn canonical(name: &str) -> &'static str {
        match name {
            "execute" => EXECUTE,
            "replay" => REPLAY,
            "solve" => SOLVE,
            "prepare" => PREPARE,
            "-" => "-",
            _ => CAMPAIGN,
        }
    }
}

/// How one fault-isolated campaign ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignOutcome<T> {
    /// The campaign completed and produced a result.
    Ok(T),
    /// The campaign failed with a typed chain error (bad contract, missing
    /// account, …).
    Failed(ChainError),
    /// The campaign panicked; `stage` is the [`stage`] marker active on the
    /// worker thread when it died.
    Panicked {
        /// Stage marker active at the panic site.
        stage: &'static str,
        /// Stringified panic payload.
        payload: String,
    },
    /// The fleet deadline expired before (or while) this campaign ran.
    TimedOut {
        /// Wall-clock time this campaign consumed before being cut off
        /// (zero if it never started).
        elapsed: Duration,
    },
    /// The campaign was lost with its worker **process** (supervised mode):
    /// the process died or stalled, and the supervisor's bounded retries
    /// were exhausted before the campaign completed.
    Crashed {
        /// Spawn attempts the supervisor made for the shard.
        attempts: u32,
        /// Human-readable description of the last process failure.
        detail: String,
    },
}

impl<T> CampaignOutcome<T> {
    /// True for [`CampaignOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, CampaignOutcome::Ok(_))
    }

    /// The result, if the campaign completed.
    pub fn ok(self) -> Option<T> {
        match self {
            CampaignOutcome::Ok(t) => Some(t),
            _ => None,
        }
    }

    /// The result by reference, if the campaign completed.
    pub fn as_ok(&self) -> Option<&T> {
        match self {
            CampaignOutcome::Ok(t) => Some(t),
            _ => None,
        }
    }

    /// Machine-readable outcome tag: `ok`, `failed`, `panicked`,
    /// `timed-out`, or `crashed` (the `outcome` field of the triage
    /// format).
    pub fn kind(&self) -> &'static str {
        match self {
            CampaignOutcome::Ok(_) => "ok",
            CampaignOutcome::Failed(_) => "failed",
            CampaignOutcome::Panicked { .. } => "panicked",
            CampaignOutcome::TimedOut { .. } => "timed-out",
            CampaignOutcome::Crashed { .. } => "crashed",
        }
    }

    /// The stage the campaign died in (`-` for successes; failures without
    /// finer attribution report `campaign`).
    pub fn stage(&self) -> &'static str {
        match self {
            CampaignOutcome::Ok(_) => "-",
            CampaignOutcome::Failed(_) => stage::PREPARE,
            CampaignOutcome::Panicked { stage, .. } => stage,
            CampaignOutcome::TimedOut { .. } => stage::CAMPAIGN,
            CampaignOutcome::Crashed { .. } => stage::CAMPAIGN,
        }
    }

    /// Human-readable failure detail (empty for successes).
    pub fn detail(&self) -> String {
        match self {
            CampaignOutcome::Ok(_) => String::new(),
            CampaignOutcome::Failed(e) => e.to_string(),
            CampaignOutcome::Panicked { stage, payload } => {
                format!("panic in {stage}: {payload}")
            }
            CampaignOutcome::TimedOut { elapsed } => {
                format!("deadline expired after {}ms", elapsed.as_millis())
            }
            CampaignOutcome::Crashed { attempts, detail } => {
                format!("{detail} after {attempts} attempt(s)")
            }
        }
    }
}

/// One slot of a fault-isolated fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignRun<T> {
    /// How the campaign ended.
    pub outcome: CampaignOutcome<T>,
    /// Wall-clock time the slot consumed (zero if deadline-gated before
    /// start).
    pub elapsed: Duration,
}

/// Backstop for an injected solver stall when no deadline is configured —
/// the chaos harness must terminate even if the watchdog is off.
const MAX_INJECTED_STALL: Duration = Duration::from_secs(5);

fn panic_payload(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_one_isolated<I, T, F>(
    i: usize,
    item: I,
    deadline: Deadline,
    worker: &F,
) -> CampaignOutcome<T>
where
    F: Fn(usize, I) -> Result<T, ChainError>,
{
    // Jobs that have not started when the deadline fires are cut off here —
    // this is what bounds a sweep's wall clock to the deadline plus at most
    // one in-flight campaign's grace per worker.
    if deadline.expired() {
        return CampaignOutcome::TimedOut {
            elapsed: Duration::ZERO,
        };
    }
    stage::enter(stage::CAMPAIGN);
    match crate::chaos::fault_at(i) {
        Some(Fault::Trap) => {
            return CampaignOutcome::Failed(ChainError::BadContract(
                "chaos: injected trap".to_string(),
            ));
        }
        Some(Fault::DecodeError) => {
            return CampaignOutcome::Failed(ChainError::BadContract(
                "chaos: injected decode error".to_string(),
            ));
        }
        Some(Fault::SolverStall) => {
            let start = Instant::now();
            stage::enter(stage::SOLVE);
            while !deadline.expired() && start.elapsed() < MAX_INJECTED_STALL {
                std::thread::sleep(Duration::from_millis(2));
            }
            stage::enter(stage::CAMPAIGN);
            return CampaignOutcome::TimedOut {
                elapsed: start.elapsed(),
            };
        }
        // Process-level faults are the supervised fleet's worker
        // entrypoint's business (it aborts or blocks the whole process);
        // the thread-level scheduler runs the campaign normally so an
        // unsupervised sweep under the same plan is undisturbed.
        Some(Fault::KillProc | Fault::StallProc) => {}
        Some(Fault::Panic) | None => {}
    }
    let result = catch_unwind(AssertUnwindSafe(|| {
        if crate::chaos::fault_at(i) == Some(Fault::Panic) {
            panic!("chaos: injected panic in campaign {i}");
        }
        worker(i, item)
    }));
    match result {
        Ok(Ok(t)) => CampaignOutcome::Ok(t),
        Ok(Err(e)) => CampaignOutcome::Failed(e),
        Err(payload) => CampaignOutcome::Panicked {
            stage: stage::current(),
            payload: panic_payload(payload),
        },
    }
}

/// [`run_jobs`] with per-campaign fault isolation.
///
/// Each `(index, item)` job runs under [`catch_unwind`]; a panic, typed
/// failure, or deadline overrun is recorded as that slot's
/// [`CampaignOutcome`] instead of tearing down the fleet. Slots are still
/// returned in index order, and — because campaign seeds derive from the
/// index, never from scheduling — every non-faulting slot holds a result
/// byte-identical to what a clean [`run_jobs`] sweep would produce, for any
/// worker count.
///
/// `deadline` gates the queue: jobs that have not started when it expires
/// come back as [`CampaignOutcome::TimedOut`] without running, so the
/// sweep's wall clock is bounded by the deadline plus one in-flight
/// campaign's grace per worker. Pass [`Deadline::NONE`] for an unbounded
/// sweep. Cooperative checks *inside* a campaign (engine iterations, replay,
/// solver polls) are the caller's job: thread the same deadline into the
/// worker so long stages truncate rather than run out the grace period.
///
/// With the `chaos` cargo feature enabled, planned faults
/// ([`crate::chaos`]) are injected here, keyed by campaign index.
pub fn run_jobs_isolated<I, T, F>(
    jobs: usize,
    items: Vec<I>,
    deadline: Deadline,
    worker: F,
) -> Vec<CampaignRun<T>>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> Result<T, ChainError> + Sync,
{
    run_jobs(jobs, items, |i, item| {
        run_campaign_isolated(i, item, deadline, &worker)
    })
}

/// The global outcome counter a finished campaign bumps, shared by the
/// thread scheduler and the supervisor's merge of relayed outcomes.
pub(crate) fn outcome_counter(kind: &str) -> obs::Counter {
    match kind {
        "ok" => obs::Counter::CampaignsOk,
        "failed" => obs::Counter::CampaignsFailed,
        "panicked" => obs::Counter::CampaignsPanicked,
        "timed-out" => obs::Counter::CampaignsTimedOut,
        _ => obs::Counter::CampaignsCrashed,
    }
}

/// Run one fault-isolated campaign — the per-item body of
/// [`run_jobs_isolated`], exposed so the supervised fleet's worker
/// entrypoint can run campaigns one at a time (emitting each outcome over
/// the status pipe as it completes) under exactly the same isolation,
/// timing, and observability accounting as the thread scheduler.
///
/// `i` is the campaign's **global** index in the sweep (heartbeats and
/// chaos injection are keyed by it), which may differ from the local
/// position when a worker runs a resumed or sharded subset.
pub fn run_campaign_isolated<I, T, F>(
    i: usize,
    item: I,
    deadline: Deadline,
    worker: &F,
) -> CampaignRun<T>
where
    F: Fn(usize, I) -> Result<T, ChainError>,
{
    // Re-stamp the heartbeat with the global index: the scheduler's bracket
    // stamped the local enumeration position, which is only correct for a
    // full-corpus sweep.
    obs::worker::begin(i as u64);
    let start = Instant::now();
    let outcome = run_one_isolated(i, item, deadline, worker);
    let elapsed = start.elapsed();
    obs::inc(outcome_counter(outcome.kind()));
    obs::global().observe(obs::Histogram::CampaignWallSeconds, elapsed);
    CampaignRun { outcome, elapsed }
}

/// [`run_jobs_isolated`] that additionally reports every non-completing
/// campaign to `sink` as a [`TelemetryEvent::CampaignAborted`].
///
/// Without this, chaos-injected and organic failures vanish from every
/// summary other than the triage file. Events are emitted *after* the
/// index-keyed merge, in index order — never from the worker threads — so
/// the abort stream is byte-identical for every worker count, matching the
/// fleet's determinism contract. The aborted campaign's virtual clock is
/// lost with the campaign, so `vtime` is 0.
pub fn run_jobs_isolated_with_sink<I, T, F>(
    jobs: usize,
    items: Vec<I>,
    deadline: Deadline,
    sink: &mut dyn TelemetrySink,
    worker: F,
) -> Vec<CampaignRun<T>>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> Result<T, ChainError> + Sync,
{
    let runs = run_jobs_isolated(jobs, items, deadline, worker);
    for (i, run) in runs.iter().enumerate() {
        if !run.outcome.is_ok() {
            sink.record(TelemetryEvent::CampaignAborted {
                campaign: i,
                stage: run.outcome.stage().to_string(),
                outcome: run.outcome.kind().to_string(),
                vtime: 0,
            });
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_index_order() {
        // Stagger completion so later indices finish first under parallelism.
        let items: Vec<u64> = (0..32).collect();
        let out = run_jobs(4, items, |i, x| {
            std::thread::sleep(Duration::from_micros(200 - 6 * i as u64));
            x * 2
        });
        assert_eq!(out, (0..32).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let work = |i: usize, x: u64| x.wrapping_mul(0x9e37_79b9).rotate_left(i as u32);
        let items: Vec<u64> = (0..100).map(|i| i * 7).collect();
        let serial = run_jobs(1, items.clone(), work);
        let parallel = run_jobs(8, items, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn all_jobs_run_exactly_once() {
        let count = AtomicUsize::new(0);
        let out = run_jobs(3, (0..50).collect::<Vec<_>>(), |_, x: i32| {
            count.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(out.len(), 50);
        assert_eq!(count.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn timed_variant_sums_virtual_time() {
        let (out, stats) = run_jobs_timed(2, vec![10u64, 20, 30], |_, x| x, |&t| t);
        assert_eq!(out, vec![10, 20, 30]);
        assert_eq!(stats.campaigns, 3);
        assert_eq!(stats.virtual_us, 60);
        assert!(stats.campaigns_per_sec() > 0.0);
    }

    #[test]
    fn jobs_env_parsing() {
        // No env manipulation here (tests run in parallel); exercise the
        // default path only.
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn recover_returns_guard_from_poisoned_mutex() {
        let m = Mutex::new(7);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = m.lock().expect("first lock");
            panic!("poison the mutex");
        }));
        assert!(m.is_poisoned());
        assert_eq!(*recover(&m), 7);
    }

    /// A worker that panics on one index, fails on another, succeeds
    /// elsewhere — shared by the containment tests.
    fn faulty(i: usize, x: u64) -> Result<u64, ChainError> {
        match i {
            3 => panic!("campaign 3 exploded"),
            5 => Err(ChainError::BadContract("campaign 5 is malformed".into())),
            _ => Ok(x * 2),
        }
    }

    #[test]
    fn isolated_contains_panics_and_failures() {
        let items: Vec<u64> = (0..8).collect();
        let runs = run_jobs_isolated(4, items, Deadline::NONE, faulty);
        assert_eq!(runs.len(), 8);
        for (i, run) in runs.iter().enumerate() {
            match i {
                3 => match &run.outcome {
                    CampaignOutcome::Panicked { stage, payload } => {
                        assert_eq!(*stage, stage::CAMPAIGN);
                        assert!(payload.contains("campaign 3 exploded"));
                    }
                    other => panic!("slot 3: expected panic, got {other:?}"),
                },
                5 => assert_eq!(run.outcome.kind(), "failed"),
                _ => assert_eq!(run.outcome.as_ok(), Some(&(i as u64 * 2))),
            }
        }
    }

    #[test]
    fn isolated_with_sink_reports_aborts_in_index_order() {
        use crate::telemetry::Recorder;
        let collect = |jobs: usize| {
            let mut rec = Recorder::new();
            let runs = run_jobs_isolated_with_sink(
                jobs,
                (0..8).collect::<Vec<u64>>(),
                Deadline::NONE,
                &mut rec,
                faulty,
            );
            assert_eq!(runs.len(), 8);
            rec.take()
        };
        let events = collect(1);
        assert_eq!(events.len(), 2, "one panic + one failure");
        match &events[0] {
            TelemetryEvent::CampaignAborted {
                campaign,
                stage,
                outcome,
                vtime,
            } => {
                assert_eq!(*campaign, 3);
                assert_eq!(stage, super::stage::CAMPAIGN);
                assert_eq!(outcome, "panicked");
                assert_eq!(*vtime, 0);
            }
            other => panic!("expected abort, got {other:?}"),
        }
        match &events[1] {
            TelemetryEvent::CampaignAborted {
                campaign, outcome, ..
            } => {
                assert_eq!(*campaign, 5);
                assert_eq!(outcome, "failed");
            }
            other => panic!("expected abort, got {other:?}"),
        }
        // The abort stream is scheduling-independent.
        assert_eq!(collect(4), events);
    }

    #[test]
    fn isolated_serial_and_parallel_agree() {
        let items: Vec<u64> = (0..16).collect();
        let serial = run_jobs_isolated(1, items.clone(), Deadline::NONE, faulty);
        let parallel = run_jobs_isolated(8, items, Deadline::NONE, faulty);
        let strip = |runs: &[CampaignRun<u64>]| {
            runs.iter()
                .map(|r| (r.outcome.kind(), r.outcome.as_ok().copied()))
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&serial), strip(&parallel));
    }

    #[test]
    fn isolated_reports_panic_stage_marker() {
        let runs = run_jobs_isolated(1, vec![0u8], Deadline::NONE, |_, _| -> Result<(), _> {
            stage::enter(stage::REPLAY);
            panic!("replay blew up");
        });
        match &runs[0].outcome {
            CampaignOutcome::Panicked { stage, .. } => assert_eq!(*stage, stage::REPLAY),
            other => panic!("expected panic, got {other:?}"),
        }
        // The marker resets at the next campaign on the same thread.
        let runs = run_jobs_isolated(1, vec![0u8], Deadline::NONE, |_, _| -> Result<(), _> {
            panic!("no stage entered this time");
        });
        match &runs[0].outcome {
            CampaignOutcome::Panicked { stage, .. } => assert_eq!(*stage, stage::CAMPAIGN),
            other => panic!("expected panic, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_gates_unstarted_jobs() {
        let ran = AtomicUsize::new(0);
        let runs = run_jobs_isolated(
            2,
            (0..6).collect::<Vec<u64>>(),
            Deadline::after(Duration::ZERO),
            |_, x| {
                ran.fetch_add(1, Ordering::SeqCst);
                Ok::<u64, ChainError>(x)
            },
        );
        assert_eq!(ran.load(Ordering::SeqCst), 0, "no job should start");
        assert!(runs
            .iter()
            .all(|r| matches!(r.outcome, CampaignOutcome::TimedOut { .. })));
    }

    #[test]
    fn outcome_accessors() {
        let ok: CampaignOutcome<u32> = CampaignOutcome::Ok(9);
        assert!(ok.is_ok());
        assert_eq!(ok.kind(), "ok");
        assert_eq!(ok.stage(), "-");
        assert_eq!(ok.detail(), "");
        assert_eq!(ok.ok(), Some(9));

        let timed: CampaignOutcome<u32> = CampaignOutcome::TimedOut {
            elapsed: Duration::from_millis(120),
        };
        assert_eq!(timed.kind(), "timed-out");
        assert!(timed.detail().contains("120ms"));

        let panicked: CampaignOutcome<u32> = CampaignOutcome::Panicked {
            stage: stage::SOLVE,
            payload: "boom".into(),
        };
        assert_eq!(panicked.stage(), stage::SOLVE);
        assert!(panicked.detail().contains("panic in solve: boom"));
    }
}
