//! Seeds: Γ⟨φ, ρ⃗⟩ — an action name plus a parameter vector (§3.1).

use rand::rngs::StdRng;
use rand::Rng;

use wasai_chain::abi::{ActionDecl, ParamType, ParamValue};
use wasai_chain::asset::{eos_symbol, Asset};
use wasai_chain::name::Name;

/// A fuzzing seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Seed {
    /// The action function φ to invoke.
    pub action: Name,
    /// The parameter vector ρ⃗.
    pub params: Vec<ParamValue>,
}

impl Seed {
    /// A new seed.
    pub fn new(action: Name, params: Vec<ParamValue>) -> Self {
        Seed { action, params }
    }
}

/// Interesting names to draw from when mutating name-typed parameters
/// (accounts that exist on the harness chain).
pub const NAME_CANDIDATES: &[&str] = &[
    "attacker",
    "alice",
    "eosio.token",
    "fake.notif",
    "fake.token",
    "eosio",
];

/// Generate a random value of a parameter type (the initial random seed
/// filling of Algorithm 1 line 2).
pub fn random_value(rng: &mut StdRng, ty: ParamType, self_name: Name) -> ParamValue {
    match ty {
        ParamType::Name => {
            // The attacker account is the only payer during fuzzing, so the
            // rows contracts key by payer are under its name — weight it.
            let name = if rng.gen_bool(0.4) {
                Name::new("attacker")
            } else {
                match rng.gen_range(0..NAME_CANDIDATES.len() + 2) {
                    0 => self_name,
                    p if p <= NAME_CANDIDATES.len() => Name::new(NAME_CANDIDATES[p - 1]),
                    _ => Name(rng.gen::<u64>()),
                }
            };
            ParamValue::Name(name)
        }
        ParamType::Asset => {
            let amount = match rng.gen_range(0..4) {
                0 => 0,
                1 => rng.gen_range(1..100),
                2 => rng.gen_range(1..1_000_000),
                _ => 10_000 * rng.gen_range(1..100),
            };
            ParamValue::Asset(Asset::new(amount, eos_symbol()))
        }
        ParamType::String => {
            let len = rng.gen_range(0..16);
            let s: String = (0..len)
                .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
                .collect();
            ParamValue::String(s)
        }
        ParamType::U64 => ParamValue::U64(interesting_u64(rng)),
        ParamType::U32 => ParamValue::U32(interesting_u64(rng) as u32),
        ParamType::U8 => ParamValue::U8(rng.gen()),
        ParamType::I64 => ParamValue::I64(interesting_u64(rng) as i64),
        ParamType::F64 => ParamValue::F64(rng.gen_range(-1000.0..1000.0)),
    }
}

fn interesting_u64(rng: &mut StdRng) -> u64 {
    match rng.gen_range(0..5) {
        0 => 0,
        1 => rng.gen_range(0..256),
        2 => u64::MAX,
        3 => 1 << rng.gen_range(0..63),
        _ => rng.gen(),
    }
}

/// A full random seed for an action declaration.
pub fn random_seed(rng: &mut StdRng, decl: &ActionDecl, self_name: Name) -> Seed {
    Seed {
        action: decl.name,
        params: decl
            .params
            .iter()
            .map(|&t| random_value(rng, t, self_name))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn random_seed_matches_declaration() {
        let mut rng = StdRng::seed_from_u64(1);
        let decl = ActionDecl::transfer();
        let seed = random_seed(&mut rng, &decl, Name::new("tgt"));
        assert_eq!(seed.action, Name::new("transfer"));
        assert_eq!(seed.params.len(), 4);
        assert_eq!(seed.params[2].param_type(), ParamType::Asset);
    }

    #[test]
    fn random_generation_is_deterministic_per_rng_seed() {
        let decl = ActionDecl::transfer();
        let a = random_seed(&mut StdRng::seed_from_u64(7), &decl, Name::new("t"));
        let b = random_seed(&mut StdRng::seed_from_u64(7), &decl, Name::new("t"));
        assert_eq!(a, b);
    }
}
