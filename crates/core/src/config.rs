//! Fuzzer configuration.

use crate::clock::CostModel;

/// Tunables of one fuzzing campaign (§4's experimental setup: 5-minute
/// timeout, bounded SMT solving).
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Virtual time budget in microseconds (default: 5 minutes, §4).
    pub timeout_us: u64,
    /// SMT conflict budget per query (the 3,000 ms cap stand-in).
    pub smt_budget: wasai_smt::Budget,
    /// Maximum flip queries solved per fuzzing iteration.
    pub max_queries_per_iter: usize,
    /// Stop early after this many iterations without new coverage and no
    /// unattempted flip targets (the series is padded to the timeout).
    pub stall_iters: u64,
    /// RNG seed — campaigns are fully deterministic.
    pub rng_seed: u64,
    /// Virtual-time cost model.
    pub cost: CostModel,
    /// Enable the concolic feedback loop (§3.4). Disabling it degrades the
    /// engine to random fuzzing with WASAI's oracles — the ablation that
    /// isolates how much of the accuracy/coverage story the solver carries.
    pub feedback: bool,
    /// Cooperative wall-clock watchdog. Every long-running stage (engine
    /// iterations, symbolic replay, SMT search) checks this deadline and
    /// degrades to a partial, `truncated` report when it fires. The default
    /// [`wasai_smt::Deadline::NONE`] never expires, keeping campaigns fully
    /// deterministic.
    pub deadline: wasai_smt::Deadline,
    /// Enable the solver reuse layer: the per-campaign query memo cache and
    /// shared-prefix incremental solving (plus the fleet-wide cache when one
    /// is attached). Reuse is observationally pure — reports and traces
    /// (modulo the `cache_hit`/`incremental` tags) are byte-identical either
    /// way — so disabling it is only useful for measuring what it saves.
    pub smt_reuse: bool,
    /// Portfolio width for hard SMT queries. `1` (the default) disables the
    /// race; `k > 1` additionally solves hard queries under `k - 1` variant
    /// CDCL configurations for out-of-band diagnostics. The reference
    /// configuration's answer is always the reported one, so reports and
    /// traces are byte-identical at any `k`.
    pub portfolio_k: usize,
    /// A query qualifies as "hard" for the portfolio race once the reference
    /// solve performed at least this many unit propagations.
    pub portfolio_threshold: u64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            timeout_us: 300_000_000,
            smt_budget: wasai_smt::Budget::conflicts(20_000),
            max_queries_per_iter: 4,
            stall_iters: 60,
            rng_seed: 0xa5a5_5a5a,
            cost: CostModel::default(),
            feedback: true,
            deadline: wasai_smt::Deadline::NONE,
            smt_reuse: true,
            portfolio_k: 1,
            portfolio_threshold: 10_000,
        }
    }
}

impl FuzzConfig {
    /// A fast configuration for unit tests: short budget, early stalls.
    pub fn quick() -> Self {
        FuzzConfig {
            timeout_us: 30_000_000,
            stall_iters: 30,
            ..FuzzConfig::default()
        }
    }
}
