//! The seed pool: one circular queue of candidates per action (§3.3.2,
//! "the seed pool is a mapping, where each key is an action name and each
//! item is a circular queue saving the seed candidates").

use std::collections::{HashMap, VecDeque};

use wasai_chain::abi::ParamValue;
use wasai_chain::name::Name;

/// Per-action circular queues of parameter vectors.
#[derive(Debug, Default)]
pub struct SeedPool {
    queues: HashMap<Name, VecDeque<Vec<ParamValue>>>,
    /// Cap per queue so solver-generated seeds cannot grow without bound.
    cap: usize,
}

impl SeedPool {
    /// A pool with the default per-action capacity.
    pub fn new() -> Self {
        SeedPool { queues: HashMap::new(), cap: 64 }
    }

    /// Add a candidate to an action's queue (dropping the oldest beyond the
    /// cap).
    pub fn push(&mut self, action: Name, params: Vec<ParamValue>) {
        let q = self.queues.entry(action).or_default();
        if q.contains(&params) {
            return;
        }
        if q.len() >= self.cap {
            q.pop_front();
        }
        q.push_back(params);
    }

    /// Pop the head candidate and rotate it to the tail (the paper's
    /// `seeds[φ]` circular-queue discipline).
    pub fn pop_rotate(&mut self, action: Name) -> Option<Vec<ParamValue>> {
        let q = self.queues.get_mut(&action)?;
        let head = q.pop_front()?;
        q.push_back(head.clone());
        Some(head)
    }

    /// Number of candidates queued for an action.
    pub fn len(&self, action: Name) -> usize {
        self.queues.get(&action).map(VecDeque::len).unwrap_or(0)
    }

    /// True when the pool holds nothing at all.
    pub fn is_empty(&self) -> bool {
        self.queues.values().all(VecDeque::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u64) -> Vec<ParamValue> {
        vec![ParamValue::U64(v)]
    }

    #[test]
    fn rotation_cycles_through_candidates() {
        let mut pool = SeedPool::new();
        let a = Name::new("play");
        pool.push(a, p(1));
        pool.push(a, p(2));
        assert_eq!(pool.pop_rotate(a), Some(p(1)));
        assert_eq!(pool.pop_rotate(a), Some(p(2)));
        assert_eq!(pool.pop_rotate(a), Some(p(1)));
        assert_eq!(pool.len(a), 2);
    }

    #[test]
    fn duplicates_are_not_requeued() {
        let mut pool = SeedPool::new();
        let a = Name::new("play");
        pool.push(a, p(1));
        pool.push(a, p(1));
        assert_eq!(pool.len(a), 1);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut pool = SeedPool::new();
        let a = Name::new("play");
        for i in 0..100 {
            pool.push(a, p(i));
        }
        assert_eq!(pool.len(a), 64);
        // The oldest entries were evicted.
        assert_eq!(pool.pop_rotate(a), Some(p(36)));
    }

    #[test]
    fn missing_action_pops_nothing() {
        let mut pool = SeedPool::new();
        assert_eq!(pool.pop_rotate(Name::new("nope")), None);
        assert!(pool.is_empty());
    }
}
