//! The seed pool: one circular queue of candidates per action (§3.3.2,
//! "the seed pool is a mapping, where each key is an action name and each
//! item is a circular queue saving the seed candidates").

use std::collections::{HashMap, HashSet, VecDeque};

use wasai_chain::abi::ParamValue;
use wasai_chain::name::Name;

/// One action's circular queue plus the hash set mirroring its membership,
/// so `push` dedup is O(1) instead of a linear queue scan.
///
/// Invariant: `keys` holds exactly the encoded key of every queued vector
/// (rotation leaves membership unchanged; eviction removes the evicted key).
#[derive(Debug, Default)]
struct Queue {
    items: VecDeque<Vec<ParamValue>>,
    keys: HashSet<Vec<u8>>,
}

/// A total encoding of a parameter vector, usable as a hash key.
///
/// `ParamValue` holds `f64` so it cannot implement `Eq`/`Hash` itself; the
/// encoding compares floats by bit pattern (which also deduplicates NaNs —
/// acceptable for seeds, where any NaN drives the target identically).
fn encode_key(params: &[ParamValue]) -> Vec<u8> {
    let mut key = Vec::with_capacity(params.len() * 9);
    for p in params {
        match p {
            ParamValue::Name(n) => {
                key.push(0);
                key.extend_from_slice(&n.raw().to_le_bytes());
            }
            ParamValue::Asset(a) => {
                key.push(1);
                key.extend_from_slice(&a.amount.to_le_bytes());
                key.extend_from_slice(&a.symbol.raw().to_le_bytes());
            }
            ParamValue::String(s) => {
                key.push(2);
                key.extend_from_slice(&(s.len() as u64).to_le_bytes());
                key.extend_from_slice(s.as_bytes());
            }
            ParamValue::U64(v) => {
                key.push(3);
                key.extend_from_slice(&v.to_le_bytes());
            }
            ParamValue::U32(v) => {
                key.push(4);
                key.extend_from_slice(&v.to_le_bytes());
            }
            ParamValue::U8(v) => {
                key.push(5);
                key.push(*v);
            }
            ParamValue::I64(v) => {
                key.push(6);
                key.extend_from_slice(&v.to_le_bytes());
            }
            ParamValue::F64(v) => {
                key.push(7);
                key.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
    }
    key
}

/// Per-action circular queues of parameter vectors.
#[derive(Debug, Default)]
pub struct SeedPool {
    queues: HashMap<Name, Queue>,
    /// Cap per queue so solver-generated seeds cannot grow without bound.
    cap: usize,
}

impl SeedPool {
    /// A pool with the default per-action capacity.
    pub fn new() -> Self {
        SeedPool {
            queues: HashMap::new(),
            cap: 64,
        }
    }

    /// Add a candidate to an action's queue (dropping the oldest beyond the
    /// cap). Duplicate vectors are ignored in O(1).
    pub fn push(&mut self, action: Name, params: Vec<ParamValue>) {
        let q = self.queues.entry(action).or_default();
        let key = encode_key(&params);
        if !q.keys.insert(key) {
            return;
        }
        if q.items.len() >= self.cap {
            if let Some(evicted) = q.items.pop_front() {
                q.keys.remove(&encode_key(&evicted));
            }
        }
        q.items.push_back(params);
    }

    /// Pop the head candidate and rotate it to the tail (the paper's
    /// `seeds[φ]` circular-queue discipline).
    pub fn pop_rotate(&mut self, action: Name) -> Option<Vec<ParamValue>> {
        let q = self.queues.get_mut(&action)?;
        let head = q.items.pop_front()?;
        q.items.push_back(head.clone());
        Some(head)
    }

    /// Number of candidates queued for an action.
    pub fn len(&self, action: Name) -> usize {
        self.queues.get(&action).map(|q| q.items.len()).unwrap_or(0)
    }

    /// True when the pool holds nothing at all.
    pub fn is_empty(&self) -> bool {
        self.queues.values().all(|q| q.items.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u64) -> Vec<ParamValue> {
        vec![ParamValue::U64(v)]
    }

    #[test]
    fn rotation_cycles_through_candidates() {
        let mut pool = SeedPool::new();
        let a = Name::new("play");
        pool.push(a, p(1));
        pool.push(a, p(2));
        assert_eq!(pool.pop_rotate(a), Some(p(1)));
        assert_eq!(pool.pop_rotate(a), Some(p(2)));
        assert_eq!(pool.pop_rotate(a), Some(p(1)));
        assert_eq!(pool.len(a), 2);
    }

    #[test]
    fn duplicates_are_not_requeued() {
        let mut pool = SeedPool::new();
        let a = Name::new("play");
        pool.push(a, p(1));
        pool.push(a, p(1));
        assert_eq!(pool.len(a), 1);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut pool = SeedPool::new();
        let a = Name::new("play");
        for i in 0..100 {
            pool.push(a, p(i));
        }
        assert_eq!(pool.len(a), 64);
        // The oldest entries were evicted.
        assert_eq!(pool.pop_rotate(a), Some(p(36)));
    }

    #[test]
    fn eviction_keeps_dedup_set_and_queue_in_sync() {
        let mut pool = SeedPool::new();
        let a = Name::new("play");
        for i in 0..100 {
            pool.push(a, p(i));
        }
        // 0..36 were evicted, so they must be insertable again…
        pool.push(a, p(0));
        assert_eq!(pool.len(a), 64);
        // …while surviving entries are still deduplicated.
        pool.push(a, p(50));
        assert_eq!(pool.len(a), 64);
        let q = &pool.queues[&a];
        assert_eq!(
            q.items.len(),
            q.keys.len(),
            "set mirrors queue after eviction"
        );
        assert!(q.items.iter().all(|v| q.keys.contains(&encode_key(v))));
    }

    #[test]
    fn rotation_does_not_break_dedup() {
        let mut pool = SeedPool::new();
        let a = Name::new("play");
        pool.push(a, p(1));
        pool.push(a, p(2));
        pool.pop_rotate(a);
        // p(1) is now at the tail but still a member — re-pushing must dedup.
        pool.push(a, p(1));
        assert_eq!(pool.len(a), 2);
    }

    #[test]
    fn distinct_types_with_same_bits_do_not_collide() {
        let mut pool = SeedPool::new();
        let a = Name::new("play");
        pool.push(a, vec![ParamValue::U64(5)]);
        pool.push(a, vec![ParamValue::I64(5)]);
        pool.push(a, vec![ParamValue::F64(f64::from_bits(5))]);
        assert_eq!(pool.len(a), 3);
    }

    #[test]
    fn missing_action_pops_nothing() {
        let mut pool = SeedPool::new();
        assert_eq!(pool.pop_rotate(Name::new("nope")), None);
        assert!(pool.is_empty());
    }
}
