//! Deterministic span profiler: folded-stack output for flamegraphs.
//!
//! A campaign's virtual clock only advances through two charge sites —
//! contract execution and SMT solving — so every campaign carries an exact,
//! deterministic partition of its virtual time
//! ([`crate::report::FuzzReport::exec_virtual_us`] /
//! [`crate::report::FuzzReport::solve_virtual_us`]). This module renders
//! those spans in the *folded stack* format every flamegraph tool consumes
//! (`flamegraph.pl`, inferno, speedscope):
//!
//! ```text
//! wasai;token.wasm;execute 812345
//! wasai;token.wasm;solve 40321
//! ```
//!
//! One line per leaf frame, `;`-joined stack, space, sample weight. Weights
//! here are virtual microseconds, not wall samples — the flamegraph shows
//! where *simulated* time went, which is the only notion of time that is
//! identical at any `WASAI_JOBS` or `--procs`. Campaigns render in sweep
//! (index) order and zero-weight frames are skipped, so the output is
//! byte-identical however the schedule interleaved — the same determinism
//! contract as reports and traces, and the reason `--profile-out` needs no
//! synchronization with the wall-clock observability plane.

use std::fmt::Write as _;

/// One campaign's deterministic time partition, in sweep order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileSpan {
    /// Campaign label — the contract file name for `audit-dir`, the target
    /// path for a single `audit`.
    pub campaign: String,
    /// Virtual µs charged to contract execution.
    pub exec_us: u64,
    /// Virtual µs charged to the SMT solver.
    pub solve_us: u64,
}

/// Render spans as folded stacks (`root;campaign;stage weight\n` lines).
///
/// Spans render in the order given (callers pass sweep order); zero-weight
/// frames are skipped so schedules that never reached a stage don't emit
/// empty samples. Frame names are sanitized: `;` (the stack separator) and
/// ` ` (the weight separator) become `_`.
pub fn folded_stacks(spans: &[ProfileSpan]) -> String {
    let mut out = String::with_capacity(spans.len() * 48);
    for span in spans {
        let name = sanitize_frame(&span.campaign);
        if span.exec_us > 0 {
            let _ = writeln!(out, "wasai;{name};execute {}", span.exec_us);
        }
        if span.solve_us > 0 {
            let _ = writeln!(out, "wasai;{name};solve {}", span.solve_us);
        }
    }
    out
}

/// Replace the folded-stack metacharacters (`;` splits frames, ` ` splits
/// the weight) with `_` so arbitrary file names can't corrupt the format.
fn sanitize_frame(name: &str) -> String {
    name.chars()
        .map(|c| if c == ';' || c == ' ' { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(campaign: &str, exec_us: u64, solve_us: u64) -> ProfileSpan {
        ProfileSpan {
            campaign: campaign.to_string(),
            exec_us,
            solve_us,
        }
    }

    #[test]
    fn folded_stacks_render_in_given_order() {
        let out = folded_stacks(&[span("a.wasm", 100, 7), span("b.wasm", 50, 0)]);
        assert_eq!(
            out,
            "wasai;a.wasm;execute 100\nwasai;a.wasm;solve 7\nwasai;b.wasm;execute 50\n"
        );
    }

    #[test]
    fn zero_weight_frames_are_skipped() {
        assert_eq!(folded_stacks(&[span("idle.wasm", 0, 0)]), "");
        assert_eq!(
            folded_stacks(&[span("s.wasm", 0, 9)]),
            "wasai;s.wasm;solve 9\n"
        );
    }

    #[test]
    fn frame_names_are_sanitized() {
        let out = folded_stacks(&[span("weird name;v2.wasm", 1, 0)]);
        assert_eq!(out, "wasai;weird_name_v2.wasm;execute 1\n");
    }

    #[test]
    fn output_is_schedule_independent_by_construction() {
        // The renderer is a pure function of (ordered) spans: callers pass
        // sweep order, so any schedule that produced the same campaign
        // reports folds to the same bytes.
        let spans = vec![span("x.wasm", 10, 2), span("y.wasm", 20, 0)];
        assert_eq!(folded_stacks(&spans), folded_stacks(&spans.clone()));
    }
}
