//! Deterministic fault injection for the fleet's recovery paths.
//!
//! The fault-isolation layer ([`crate::fleet::run_jobs_isolated`]) exists to
//! survive the wild-contract sweep (§4.4): panicking decoders, hanging
//! solver queries, malformed modules. Recovery code that is never exercised
//! rots, so this module lets tests (and CI) inject those failures at chosen
//! campaign indices and assert that the rest of the sweep is untouched.
//!
//! Faults are injected by the fleet scheduler right before a campaign's
//! worker runs, keyed by campaign index — fully deterministic, independent
//! of worker count or scheduling.
//!
//! # Activation
//!
//! Injection is compiled out unless the `chaos` cargo feature is enabled;
//! with the feature off, [`fault_at`] is a constant `None` and the scheduler
//! pays nothing. With the feature on, a plan is activated either
//! programmatically ([`install`]/[`clear`], for in-process tests) or through
//! the `WASAI_CHAOS` environment variable (for subprocess/CLI tests):
//!
//! ```text
//! WASAI_CHAOS="panic@1,stall@4,decode@0,trap@2"
//! ```
//!
//! An installed plan takes precedence over the environment.

use std::fmt;

/// A fault the scheduler can inject into one campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the worker (exercises `catch_unwind` containment).
    Panic,
    /// A trap-shaped contract failure (surfaces as `Failed`).
    Trap,
    /// A solver stall: the campaign hangs until the wall-clock watchdog
    /// fires (surfaces as `TimedOut`).
    SolverStall,
    /// A decoder error (surfaces as `Failed`).
    DecodeError,
    /// Kill the whole worker **process** (`abort()`) when the campaign is
    /// about to start. Only the supervised fleet's worker entrypoint honors
    /// it; the thread-level scheduler ignores it, so an unsupervised run
    /// with the same plan is undisturbed (exercises supervisor retry).
    KillProc,
    /// Stall the whole worker **process** on this campaign: the worker
    /// thread blocks without heartbeat progress until the supervisor's
    /// stall detector kills and re-dispatches the shard. Ignored by the
    /// thread-level scheduler, like [`Fault::KillProc`].
    StallProc,
}

impl Fault {
    /// Parse the `WASAI_CHAOS` spelling of a fault.
    pub fn parse(s: &str) -> Result<Fault, String> {
        match s {
            "panic" => Ok(Fault::Panic),
            "trap" => Ok(Fault::Trap),
            "stall" => Ok(Fault::SolverStall),
            "decode" => Ok(Fault::DecodeError),
            "kill" => Ok(Fault::KillProc),
            "stallproc" => Ok(Fault::StallProc),
            other => Err(format!(
                "unknown chaos fault {other:?} (expected panic|trap|stall|decode|kill|stallproc)"
            )),
        }
    }

    /// True for faults that act on a whole worker process rather than a
    /// single campaign thread. The supervisor strips these from the plan it
    /// hands to re-dispatched workers, so each fires at most once.
    pub fn is_proc_level(self) -> bool {
        matches!(self, Fault::KillProc | Fault::StallProc)
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Fault::Panic => "panic",
            Fault::Trap => "trap",
            Fault::SolverStall => "stall",
            Fault::DecodeError => "decode",
            Fault::KillProc => "kill",
            Fault::StallProc => "stallproc",
        })
    }
}

/// Which campaign indices get which faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    faults: Vec<(usize, Fault)>,
}

impl ChaosPlan {
    /// A plan injecting `faults` at the given campaign indices.
    pub fn new(faults: Vec<(usize, Fault)>) -> Self {
        ChaosPlan { faults }
    }

    /// Parse a `WASAI_CHAOS` spec: comma-separated `fault@index` entries,
    /// e.g. `panic@1,stall@4`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut faults = Vec::new();
        for entry in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (fault, index) = entry
                .split_once('@')
                .ok_or_else(|| format!("chaos entry {entry:?}: expected `fault@index`"))?;
            let index: usize = index
                .trim()
                .parse()
                .map_err(|e| format!("chaos entry {entry:?}: bad index: {e}"))?;
            faults.push((index, Fault::parse(fault.trim())?));
        }
        Ok(ChaosPlan { faults })
    }

    /// The fault planned for campaign `index`, if any.
    pub fn fault_at(&self, index: usize) -> Option<Fault> {
        self.faults
            .iter()
            .find(|(i, _)| *i == index)
            .map(|&(_, f)| f)
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The plan with every process-level fault removed. The supervisor
    /// hands this to re-dispatched workers so a `kill@i`/`stallproc@i`
    /// fires at most once instead of re-killing every retry.
    pub fn without_proc_faults(&self) -> ChaosPlan {
        ChaosPlan {
            faults: self
                .faults
                .iter()
                .filter(|(_, f)| !f.is_proc_level())
                .copied()
                .collect(),
        }
    }
}

impl fmt::Display for ChaosPlan {
    /// Renders back to the `WASAI_CHAOS` spec form (`fault@index,…`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (n, (index, fault)) in self.faults.iter().enumerate() {
            if n > 0 {
                f.write_str(",")?;
            }
            write!(f, "{fault}@{index}")?;
        }
        Ok(())
    }
}

#[cfg(feature = "chaos")]
mod active {
    use super::ChaosPlan;
    use std::sync::{Mutex, OnceLock};

    static INSTALLED: Mutex<Option<ChaosPlan>> = Mutex::new(None);
    static FROM_ENV: OnceLock<Option<ChaosPlan>> = OnceLock::new();

    /// Activate `plan` process-wide (overrides `WASAI_CHAOS`).
    pub fn install(plan: ChaosPlan) {
        *INSTALLED.lock().unwrap_or_else(|p| p.into_inner()) = Some(plan);
    }

    /// Deactivate the installed plan (the environment plan, if any, applies
    /// again).
    pub fn clear() {
        *INSTALLED.lock().unwrap_or_else(|p| p.into_inner()) = None;
    }

    pub(super) fn current_fault_at(index: usize) -> Option<super::Fault> {
        if let Some(plan) = INSTALLED.lock().unwrap_or_else(|p| p.into_inner()).as_ref() {
            return plan.fault_at(index);
        }
        FROM_ENV
            .get_or_init(|| {
                let spec = std::env::var("WASAI_CHAOS").ok()?;
                match ChaosPlan::parse(&spec) {
                    Ok(p) if !p.is_empty() => Some(p),
                    Ok(_) => None,
                    Err(e) => {
                        eprintln!("ignoring WASAI_CHAOS: {e}");
                        None
                    }
                }
            })
            .as_ref()
            .and_then(|p| p.fault_at(index))
    }
}

#[cfg(feature = "chaos")]
pub use active::{clear, install};

/// The fault to inject into campaign `index`, per the active plan.
///
/// Always `None` unless the `chaos` cargo feature is enabled.
#[cfg(feature = "chaos")]
pub fn fault_at(index: usize) -> Option<Fault> {
    active::current_fault_at(index)
}

/// The fault to inject into campaign `index`, per the active plan.
///
/// Always `None` unless the `chaos` cargo feature is enabled.
#[cfg(not(feature = "chaos"))]
pub fn fault_at(_index: usize) -> Option<Fault> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_specs() {
        let p = ChaosPlan::parse("panic@1, stall@4 ,decode@0").expect("parses");
        assert_eq!(p.fault_at(1), Some(Fault::Panic));
        assert_eq!(p.fault_at(4), Some(Fault::SolverStall));
        assert_eq!(p.fault_at(0), Some(Fault::DecodeError));
        assert_eq!(p.fault_at(2), None);
        assert!(ChaosPlan::parse("").expect("empty ok").is_empty());
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(ChaosPlan::parse("panic").is_err());
        assert!(ChaosPlan::parse("explode@3").is_err());
        assert!(ChaosPlan::parse("panic@x").is_err());
    }

    #[test]
    fn fault_display_roundtrips_through_parse() {
        for f in [
            Fault::Panic,
            Fault::Trap,
            Fault::SolverStall,
            Fault::DecodeError,
            Fault::KillProc,
            Fault::StallProc,
        ] {
            assert_eq!(Fault::parse(&f.to_string()), Ok(f));
        }
    }

    #[test]
    fn plan_display_roundtrips_and_proc_stripping_preserves_the_rest() {
        let p = ChaosPlan::parse("panic@1,kill@2,stall@4,stallproc@5").expect("parses");
        assert_eq!(p.to_string(), "panic@1,kill@2,stall@4,stallproc@5");
        let stripped = p.without_proc_faults();
        assert_eq!(stripped.to_string(), "panic@1,stall@4");
        assert_eq!(ChaosPlan::parse(&stripped.to_string()), Ok(stripped));
    }

    #[test]
    fn proc_level_classification() {
        assert!(Fault::KillProc.is_proc_level());
        assert!(Fault::StallProc.is_proc_level());
        assert!(!Fault::Panic.is_proc_level());
        assert!(!Fault::SolverStall.is_proc_level());
    }
}
