//! The fuzzing harness: local-chain initiation with the target and the
//! adversary-oracle agent contracts (Algorithm 1, line 2), plus the payload
//! transaction templates of §3.5 and action-function location (§3.4.2).

use std::sync::Arc;

use wasai_chain::abi::{Abi, ActionDecl, ParamValue};
use wasai_chain::asset::Asset;
use wasai_chain::name::Name;
use wasai_chain::{Action, Chain, NativeKind, Transaction};
use wasai_vm::{CompiledModule, TraceKind, TraceRecord};
use wasai_wasm::instr::Instr;
use wasai_wasm::Module;

use crate::coverage::BranchSites;

/// Well-known harness account names.
pub mod accounts {
    use wasai_chain::name::Name;

    /// The fuzz target's account.
    pub fn target() -> Name {
        Name::new("fuzz.target")
    }

    /// The attacker-controlled account.
    pub fn attacker() -> Name {
        Name::new("attacker")
    }

    /// A friendly paying user.
    pub fn alice() -> Name {
        Name::new("alice")
    }

    /// The official token contract.
    pub fn token() -> Name {
        Name::new("eosio.token")
    }

    /// The counterfeit token contract (§2.3.1).
    pub fn fake_token() -> Name {
        Name::new("fake.token")
    }

    /// The notification-forwarding agent (§2.3.2).
    pub fn fake_notif() -> Name {
        Name::new("fake.notif")
    }
}

/// The contract under test.
#[derive(Debug, Clone)]
pub struct TargetInfo {
    /// The original (uninstrumented) module — trace sites refer to it.
    pub original: Module,
    /// The contract ABI.
    pub abi: Abi,
}

impl TargetInfo {
    /// Bundle a module and ABI.
    pub fn new(original: Module, abi: Abi) -> Self {
        TargetInfo { original, abi }
    }

    /// The `transfer` declaration if the contract has an eosponser.
    pub fn transfer_decl(&self) -> Option<&ActionDecl> {
        self.abi.action(Name::new("transfer"))
    }
}

/// A target with its per-contract shared artifacts computed once: the
/// instrumented + compiled module and the branch-site table.
///
/// Instrumentation, compilation and branch-site scanning are pure functions
/// of the module, so campaigns that differ only in tool or RNG seed can
/// share one `Arc<PreparedTarget>` instead of redoing that work per
/// campaign — the fleet scheduler's shared-artifact cache.
#[derive(Debug)]
pub struct PreparedTarget {
    /// The target (original module + ABI) — what campaigns introspect.
    pub info: TargetInfo,
    /// The instrumented module, compiled once for every chain deployment.
    pub compiled: Arc<CompiledModule>,
    /// Branch sites of the *original* module (trace sites refer to it).
    pub branch_sites: BranchSites,
    /// The post-`setup_chain` chain state, captured once. Campaigns fork it
    /// copy-on-write instead of replaying deployment from genesis per seed.
    /// `None` when the fast path is disabled (`WASAI_VM_FAST=0`) or the
    /// target was prepared for the reference interpreter.
    snapshot: Option<Chain>,
}

impl PreparedTarget {
    /// Instrument, compile and scan `target` once, and capture the
    /// post-setup chain snapshot that [`PreparedTarget::fork_chain`] serves.
    ///
    /// # Errors
    ///
    /// Fails when the module cannot be instrumented or compiled.
    pub fn prepare(target: TargetInfo) -> Result<Arc<Self>, wasai_chain::ChainError> {
        Self::prepare_inner(target, true, false)
    }

    /// [`PreparedTarget::prepare`] without instrumentation: the *original*
    /// module is compiled and snapshotted. Concrete replay — confirming a
    /// verdict by re-running a seed, or measuring raw execution throughput —
    /// consumes receipts, not traces, and the trace hooks that
    /// instrumentation threads through every instruction dominate its cost.
    ///
    /// # Errors
    ///
    /// Fails when the module cannot be compiled.
    pub fn prepare_concrete(target: TargetInfo) -> Result<Arc<Self>, wasai_chain::ChainError> {
        Self::prepare_inner(target, false, false)
    }

    /// [`PreparedTarget::prepare_concrete`] pinned to the reference
    /// interpreter and genesis setup — the baseline arm for uninstrumented
    /// replay comparisons.
    ///
    /// # Errors
    ///
    /// Fails when the module cannot be compiled.
    pub fn prepare_concrete_reference(
        target: TargetInfo,
    ) -> Result<Arc<Self>, wasai_chain::ChainError> {
        Self::prepare_inner(target, false, true)
    }

    /// [`PreparedTarget::prepare`] pinned to the reference interpreter and
    /// genesis chain setup, regardless of `WASAI_VM_FAST`. The differential
    /// suite and the throughput benchmark's baseline arm use this to compare
    /// the fast path against the unaccelerated execution stack.
    ///
    /// # Errors
    ///
    /// Fails when the module cannot be instrumented or compiled.
    pub fn prepare_reference(target: TargetInfo) -> Result<Arc<Self>, wasai_chain::ChainError> {
        Self::prepare_inner(target, true, true)
    }

    fn prepare_inner(
        target: TargetInfo,
        instrument: bool,
        reference: bool,
    ) -> Result<Arc<Self>, wasai_chain::ChainError> {
        let module = if instrument {
            wasai_wasm::instrument::instrument(&target.original)
                .map_err(|e| wasai_chain::ChainError::BadContract(e.to_string()))?
                .module
        } else {
            target.original.clone()
        };
        let compiled = if reference {
            CompiledModule::compile_reference(module)
        } else {
            CompiledModule::compile(module)
        }
        .map_err(|e| wasai_chain::ChainError::BadContract(e.to_string()))?;
        let branch_sites = BranchSites::new(&target.original);
        let mut prepared = PreparedTarget {
            info: target,
            compiled,
            branch_sites,
            snapshot: None,
        };
        if !reference && wasai_vm::fast_path_enabled() {
            prepared.snapshot = Some(prepared.setup_chain_genesis()?);
        }
        Ok(Arc::new(prepared))
    }

    /// A chain ready for fuzzing: a copy-on-write fork of the post-setup
    /// snapshot when one was captured, or a fresh genesis setup otherwise.
    /// Forks are byte-equivalent to genesis setup (the harness pushes no
    /// transactions during setup) and isolated from each other — a seed's
    /// writes never reach the snapshot or sibling forks.
    ///
    /// # Errors
    ///
    /// Propagates harness account-creation errors on the genesis path.
    pub fn fork_chain(&self) -> Result<Chain, wasai_chain::ChainError> {
        match &self.snapshot {
            Some(snapshot) => {
                let timer =
                    wasai_obs::ScopeTimer::start(wasai_obs::Histogram::SnapshotRestoreWallSeconds);
                let chain = snapshot.fork();
                drop(timer);
                wasai_obs::inc(wasai_obs::Counter::VmSnapshotRestores);
                Ok(chain)
            }
            None => self.setup_chain_genesis(),
        }
    }

    /// Initialize a chain from genesis: deploy the cached compiled module
    /// and the harness cast from scratch, bypassing the snapshot. The
    /// differential suite uses this as the ground truth
    /// [`PreparedTarget::fork_chain`] must match.
    ///
    /// # Errors
    ///
    /// Propagates harness account-creation errors.
    pub fn setup_chain_genesis(&self) -> Result<Chain, wasai_chain::ChainError> {
        setup_chain_compiled(self.compiled.clone(), self.info.abi.clone())
    }
}

/// Initialize the local blockchain: deploy the (instrumented) target, the
/// token contracts and the adversary agents, and fund everyone.
///
/// # Errors
///
/// Propagates deployment errors (e.g. an instrumented module that fails to
/// compile).
pub fn setup_chain(
    target: &TargetInfo,
    instrument: bool,
) -> Result<Chain, wasai_chain::ChainError> {
    if instrument {
        let prepared = PreparedTarget::prepare(target.clone())?;
        return setup_chain_prepared(&prepared);
    }
    let compiled = CompiledModule::compile(target.original.clone())
        .map_err(|e| wasai_chain::ChainError::BadContract(e.to_string()))?;
    setup_chain_compiled(compiled, target.abi.clone())
}

/// [`setup_chain`] against a [`PreparedTarget`]: forks the cached post-setup
/// snapshot (or re-runs genesis setup when no snapshot was captured) instead
/// of re-instrumenting, recompiling and redeploying per campaign. Every
/// campaign entry point — the WASAI engine, the baselines, the benches —
/// obtains its chain through this single helper, so the snapshot path is
/// adopted (and can be disabled via `WASAI_VM_FAST=0`) uniformly.
///
/// # Errors
///
/// Propagates harness account-creation errors.
pub fn setup_chain_prepared(prepared: &PreparedTarget) -> Result<Chain, wasai_chain::ChainError> {
    prepared.fork_chain()
}

fn setup_chain_compiled(
    compiled: Arc<CompiledModule>,
    abi: Abi,
) -> Result<Chain, wasai_chain::ChainError> {
    let mut chain = Chain::new();
    chain.deploy_native(accounts::token(), NativeKind::Token);
    chain.deploy_native(accounts::fake_token(), NativeKind::Token);
    chain.deploy_native(
        accounts::fake_notif(),
        NativeKind::NotifForwarder {
            forward_to: accounts::target(),
        },
    );
    chain.create_account(accounts::attacker())?;
    chain.create_account(accounts::alice())?;

    chain.deploy_compiled(accounts::target(), compiled, abi);

    // Fund the cast: real EOS for users and the target (so reward payouts
    // work), fake EOS for the attacker.
    chain.issue(
        accounts::token(),
        accounts::attacker(),
        Asset::eos(1_000_000),
    );
    chain.issue(accounts::token(), accounts::alice(), Asset::eos(1_000_000));
    chain.issue(accounts::token(), accounts::target(), Asset::eos(10_000));
    chain.issue(
        accounts::fake_token(),
        accounts::attacker(),
        Asset::eos(1_000_000),
    );
    Ok(chain)
}

/// Transfer-shaped parameters with `from`/`to` forced (used by payloads that
/// must satisfy the token contract).
pub fn forced_transfer_params(params: &[ParamValue], from: Name, to: Name) -> Vec<ParamValue> {
    let mut p = params.to_vec();
    if !p.is_empty() {
        p[0] = ParamValue::Name(from);
    }
    if p.len() > 1 {
        p[1] = ParamValue::Name(to);
    }
    // Clamp the quantity into the payer's balance so the token contract
    // does not reject the payload before the victim sees it.
    if let Some(ParamValue::Asset(a)) = p.get_mut(2) {
        if a.amount <= 0 || a.amount > 10_000_000 {
            *a = Asset::eos(10);
        }
        *a = Asset::new(a.amount, wasai_chain::asset::eos_symbol());
    }
    p
}

/// Payload 1 — a legitimate payment: `transfer@eosio.token` attacker→target
/// (Figure 1's flow; used to locate the eosponser and explore it).
pub fn official_transfer(params: &[ParamValue]) -> Transaction {
    let p = forced_transfer_params(params, accounts::attacker(), accounts::target());
    Transaction::single(Action::new(
        accounts::token(),
        Name::new("transfer"),
        &[accounts::attacker()],
        &p,
    ))
}

/// Payload 2 — direct Fake EOS: invoke the victim's eosponser directly
/// (§2.3.1, exploit path 1). Parameters are fully attacker-chosen.
pub fn direct_fake_transfer(params: &[ParamValue]) -> Transaction {
    Transaction::single(Action::new(
        accounts::target(),
        Name::new("transfer"),
        &[accounts::attacker()],
        params,
    ))
}

/// Payload 3 — counterfeit token: `transfer@fake.token` attacker→target
/// (§2.3.1, exploit path 2).
pub fn fake_token_transfer(params: &[ParamValue]) -> Transaction {
    let p = forced_transfer_params(params, accounts::attacker(), accounts::target());
    Transaction::single(Action::new(
        accounts::fake_token(),
        Name::new("transfer"),
        &[accounts::attacker()],
        &p,
    ))
}

/// Payload 4 — Fake Notification: pay real EOS to the forwarding agent,
/// which relays the notification to the victim with `code` intact (§2.3.2).
pub fn fake_notif_transfer(params: &[ParamValue]) -> Transaction {
    let p = forced_transfer_params(params, accounts::attacker(), accounts::fake_notif());
    Transaction::single(Action::new(
        accounts::token(),
        Name::new("transfer"),
        &[accounts::attacker()],
        &p,
    ))
}

/// A plain direct action on the target, attacker-signed.
pub fn direct_action(action: Name, params: &[ParamValue]) -> Transaction {
    Transaction::single(Action::new(
        accounts::target(),
        action,
        &[accounts::attacker()],
        params,
    ))
}

/// Locate the executed action function from a trace (§3.4.2): the function
/// entered through the dispatcher's `call_indirect` inside `apply`. Falls
/// back to the last function entered (direct-call dispatchers).
pub fn locate_action_function(module: &Module, trace: &[TraceRecord]) -> Option<u32> {
    let apply_idx = module.exported_func("apply")?;
    let apply_body = &module.local_func(apply_idx)?.body;
    let mut after_indirect = false;
    let mut last_begin: Option<u32> = None;
    for rec in trace {
        match rec.kind {
            TraceKind::Site { func, pc } if func == apply_idx => {
                if matches!(apply_body.get(pc as usize), Some(Instr::CallIndirect(_))) {
                    after_indirect = true;
                }
            }
            TraceKind::FuncBegin { func } => {
                if after_indirect {
                    return Some(func);
                }
                if func != apply_idx {
                    last_begin = Some(func);
                }
            }
            _ => {}
        }
    }
    last_begin
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_params_pin_from_to_and_sanitize_quantity() {
        let params = vec![
            ParamValue::Name(Name::new("zzz")),
            ParamValue::Name(Name::new("yyy")),
            ParamValue::Asset(Asset::new(-5, wasai_chain::asset::eos_symbol())),
            ParamValue::String("m".into()),
        ];
        let p = forced_transfer_params(&params, accounts::attacker(), accounts::target());
        assert_eq!(p[0], ParamValue::Name(accounts::attacker()));
        assert_eq!(p[1], ParamValue::Name(accounts::target()));
        match &p[2] {
            ParamValue::Asset(a) => assert!(a.is_positive()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn payload_shapes() {
        let params = vec![
            ParamValue::Name(accounts::attacker()),
            ParamValue::Name(accounts::target()),
            ParamValue::Asset(Asset::eos(1)),
            ParamValue::String(String::new()),
        ];
        assert_eq!(
            official_transfer(&params).actions[0].account,
            accounts::token()
        );
        assert_eq!(
            direct_fake_transfer(&params).actions[0].account,
            accounts::target()
        );
        assert_eq!(
            fake_token_transfer(&params).actions[0].account,
            accounts::fake_token()
        );
        let fnotif = fake_notif_transfer(&params);
        assert_eq!(fnotif.actions[0].account, accounts::token());
        // The payee is the agent, not the target.
        let data = &fnotif.actions[0].data;
        assert_eq!(&data[8..16], &accounts::fake_notif().raw().to_le_bytes());
    }
}

#[cfg(test)]
mod locate_tests {
    use super::*;
    use wasai_vm::TraceVal;
    use wasai_wasm::builder::ModuleBuilder;
    use wasai_wasm::types::ValType::*;

    fn module_with_indirect() -> (Module, u32, u32) {
        let mut b = ModuleBuilder::new();
        let action = b.func(&[I64], &[], &[], vec![Instr::End]);
        b.table(1).elem(0, vec![action]);
        let ty = b.module().local_func(action).unwrap().type_idx;
        let apply = b.func(
            &[I64, I64, I64],
            &[],
            &[],
            vec![
                Instr::LocalGet(0),
                Instr::I32Const(0),
                Instr::CallIndirect(ty),
                Instr::End,
            ],
        );
        b.export_func("apply", apply);
        (b.build(), apply, action)
    }

    fn site(func: u32, pc: u32) -> TraceRecord {
        TraceRecord {
            kind: TraceKind::Site { func, pc },
            operands: vec![TraceVal::I(0)],
        }
    }

    fn begin(func: u32) -> TraceRecord {
        TraceRecord {
            kind: TraceKind::FuncBegin { func },
            operands: vec![],
        }
    }

    #[test]
    fn locates_via_call_indirect() {
        let (m, apply, action) = module_with_indirect();
        let trace = vec![begin(apply), site(apply, 2), begin(action)];
        assert_eq!(locate_action_function(&m, &trace), Some(action));
    }

    #[test]
    fn falls_back_to_last_entered_function() {
        let (m, apply, action) = module_with_indirect();
        // No call_indirect site observed (direct-call dispatcher).
        let trace = vec![begin(apply), begin(action)];
        assert_eq!(locate_action_function(&m, &trace), Some(action));
    }

    #[test]
    fn empty_trace_locates_nothing() {
        let (m, _, _) = module_with_indirect();
        assert_eq!(locate_action_function(&m, &[]), None);
    }
}
