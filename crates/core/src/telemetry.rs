//! Telemetry — deterministic structured event tracing and per-stage metrics.
//!
//! The engine computes every quantity the paper's evaluation is built on —
//! coverage growth over virtual time, seeds solved vs. discarded, SMT query
//! outcomes, per-oracle verdicts — but (before this module) never exposed
//! them as first-class data. A [`TelemetrySink`] receives typed
//! [`TelemetryEvent`]s from the engine, the fleet scheduler, and the replay
//! and solver stages; everything downstream (the [`Metrics`] aggregator, the
//! JSONL trace writer behind `wasai … --trace-out`, the `wasai stats`
//! summarizer) is a fold over that one event stream.
//!
//! # Determinism contract
//!
//! Events are keyed by **virtual-clock** timestamps, never wall clocks, and
//! every event is derived from campaign-local state (the campaign's own RNG,
//! clock, and coverage set). A campaign therefore emits a byte-identical
//! event stream regardless of scheduling, and a fleet trace merged in
//! campaign-index order is byte-identical for every `WASAI_JOBS` setting —
//! the same contract the fleet's result merging already obeys. Fleet-level
//! events ([`TelemetryEvent::CampaignAborted`]) are emitted *after* the
//! index-keyed merge, in index order, for the same reason.
//!
//! # Sink lifecycle
//!
//! Campaigns default to **no sink**: the engine skips event construction
//! entirely (a single `Option` check per site), so untraced runs behave and
//! perform exactly as before. A sink is attached per campaign
//! ([`crate::Wasai::with_sink`] / [`crate::Engine::set_sink`]), lives for
//! that campaign only, and observes events strictly in emission order. The
//! [`Recorder`] sink buffers events for post-campaign inspection; the
//! [`Metrics`] sink folds them into counters and virtual-time histograms on
//! the fly.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::report::VulnClass;

/// The long-running campaign stages virtual time is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Target preparation: decode, validate, instrument, compile.
    Prepare,
    /// Instrumented concrete execution on the local chain.
    Execute,
    /// Symbolic trace replay (Symback).
    Replay,
    /// Constraint solving.
    Solve,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 4] = [Stage::Prepare, Stage::Execute, Stage::Replay, Stage::Solve];

    /// The stable machine-readable name (the JSONL spelling).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Prepare => "prepare",
            Stage::Execute => "execute",
            Stage::Replay => "replay",
            Stage::Solve => "solve",
        }
    }

    /// Parse the JSONL spelling back.
    pub fn parse(s: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|st| st.name() == s)
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome of one SMT query, as telemetry records it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SmtOutcome {
    /// Satisfiable — a model (and thus an adaptive seed) was produced.
    Sat,
    /// Unsatisfiable — the flipped branch is infeasible on this path.
    Unsat,
    /// Budget or deadline exhausted before a verdict.
    Unknown,
}

impl SmtOutcome {
    /// The stable machine-readable name (the JSONL spelling).
    pub fn name(self) -> &'static str {
        match self {
            SmtOutcome::Sat => "sat",
            SmtOutcome::Unsat => "unsat",
            SmtOutcome::Unknown => "unknown",
        }
    }

    /// Parse the JSONL spelling back.
    pub fn parse(s: &str) -> Option<SmtOutcome> {
        [SmtOutcome::Sat, SmtOutcome::Unsat, SmtOutcome::Unknown]
            .into_iter()
            .find(|o| o.name() == s)
    }
}

impl fmt::Display for SmtOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One typed telemetry event.
///
/// Every variant carries `vtime`, the emitting campaign's virtual-clock
/// reading in microseconds at emission — the determinism key that makes
/// traces reproducible across worker counts.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// A campaign began (virtual time zero).
    CampaignStarted {
        /// The campaign's RNG seed.
        seed: u64,
        /// Number of declared ABI actions under fuzz.
        actions: usize,
        /// Virtual microseconds at emission (always 0).
        vtime: u64,
    },
    /// Virtual time was charged to a stage.
    StageTiming {
        /// The stage the charge belongs to.
        stage: Stage,
        /// Virtual microseconds charged by this step.
        dur_us: u64,
        /// Virtual microseconds at emission (after the charge).
        vtime: u64,
    },
    /// One seed was executed on the local chain.
    SeedExecuted {
        /// The action invoked.
        action: String,
        /// The delivery payload (`official`, `direct-fake`, …).
        payload: String,
        /// New distinct branches this execution discovered.
        coverage_delta: usize,
        /// Cumulative distinct branches after this execution.
        branches: usize,
        /// Virtual microseconds at emission.
        vtime: u64,
    },
    /// One trace was replayed symbolically.
    Replayed {
        /// Trace records processed.
        records: usize,
        /// Conditional states (flip candidates) collected.
        conditionals: usize,
        /// Replay was cut short by the wall-clock watchdog.
        truncated: bool,
        /// Virtual microseconds at emission.
        vtime: u64,
    },
    /// One SMT flip query was solved.
    SmtQuery {
        /// Solver verdict.
        outcome: SmtOutcome,
        /// SAT conflicts used.
        conflicts: u64,
        /// Unit propagations performed (what the virtual clock charges).
        props: u64,
        /// The query was answered from the campaign's memo cache (an
        /// identical canonical query was solved earlier this campaign).
        /// Deterministic: independent of worker count and of any fleet-level
        /// cache.
        cache_hit: bool,
        /// The shared-prefix incremental session had already consumed part
        /// of this replay's path constraints when this query arrived. Every
        /// earlier query of the replay advances the session — whether it
        /// was solved or replayed from the memo/fleet cache — so the tag
        /// has one meaning regardless of which layer answered, and stays
        /// deterministic.
        incremental: bool,
        /// Virtual microseconds at emission (after the charge).
        vtime: u64,
    },
    /// A solved model produced an adaptive seed for an unexplored branch.
    ConstraintFlipped {
        /// Function index of the flipped site.
        func: u32,
        /// Instruction offset of the flipped site.
        pc: u32,
        /// Target direction (branches: condition ≠ 0).
        direction: u64,
        /// Virtual microseconds at emission.
        vtime: u64,
    },
    /// One oracle's final verdict (emitted once per oracle at campaign end).
    OracleVerdict {
        /// Oracle name (the five `VulnClass` display names, or a custom
        /// oracle's name).
        oracle: String,
        /// Whether the oracle flagged the contract.
        flagged: bool,
        /// Virtual microseconds at emission (the campaign's final reading).
        vtime: u64,
    },
    /// A campaign ran to completion (its report follows out of band).
    CampaignFinished {
        /// Fuzzing iterations executed.
        iterations: u64,
        /// Distinct branches covered.
        branches: usize,
        /// The wall-clock watchdog cut the campaign short.
        truncated: bool,
        /// Final virtual-clock reading.
        vtime: u64,
    },
    /// A fault-isolated campaign died instead of completing (emitted by the
    /// fleet scheduler after the index-keyed merge, never by the campaign).
    CampaignAborted {
        /// Campaign index in the fleet.
        campaign: usize,
        /// Stage marker active when the campaign died.
        stage: String,
        /// Outcome tag: `failed`, `panicked`, or `timed-out`.
        outcome: String,
        /// Virtual microseconds (always 0 — the campaign's clock is lost).
        vtime: u64,
    },
}

impl TelemetryEvent {
    /// The stable machine-readable event name (the JSONL `event` field).
    pub fn name(&self) -> &'static str {
        match self {
            TelemetryEvent::CampaignStarted { .. } => "campaign_started",
            TelemetryEvent::StageTiming { .. } => "stage_timing",
            TelemetryEvent::SeedExecuted { .. } => "seed_executed",
            TelemetryEvent::Replayed { .. } => "replayed",
            TelemetryEvent::SmtQuery { .. } => "smt_query",
            TelemetryEvent::ConstraintFlipped { .. } => "constraint_flipped",
            TelemetryEvent::OracleVerdict { .. } => "oracle_verdict",
            TelemetryEvent::CampaignFinished { .. } => "campaign_finished",
            TelemetryEvent::CampaignAborted { .. } => "campaign_aborted",
        }
    }

    /// The virtual-clock timestamp of the event.
    pub fn vtime(&self) -> u64 {
        match self {
            TelemetryEvent::CampaignStarted { vtime, .. }
            | TelemetryEvent::StageTiming { vtime, .. }
            | TelemetryEvent::SeedExecuted { vtime, .. }
            | TelemetryEvent::Replayed { vtime, .. }
            | TelemetryEvent::SmtQuery { vtime, .. }
            | TelemetryEvent::ConstraintFlipped { vtime, .. }
            | TelemetryEvent::OracleVerdict { vtime, .. }
            | TelemetryEvent::CampaignFinished { vtime, .. }
            | TelemetryEvent::CampaignAborted { vtime, .. } => *vtime,
        }
    }

    /// Serialize as one JSONL trace line for campaign index `campaign`.
    ///
    /// The field order is fixed, so equal event streams serialize to
    /// byte-identical traces.
    pub fn to_jsonl(&self, campaign: usize) -> String {
        let head = format!(
            "{{\"campaign\":{campaign},\"event\":\"{}\",\"vtime\":{}",
            self.name(),
            self.vtime()
        );
        let body = match self {
            TelemetryEvent::CampaignStarted { seed, actions, .. } => {
                format!(",\"seed\":{seed},\"actions\":{actions}")
            }
            TelemetryEvent::StageTiming { stage, dur_us, .. } => {
                format!(",\"stage\":\"{}\",\"dur_us\":{dur_us}", stage.name())
            }
            TelemetryEvent::SeedExecuted {
                action,
                payload,
                coverage_delta,
                branches,
                ..
            } => format!(
                ",\"action\":\"{}\",\"payload\":\"{}\",\"coverage_delta\":{coverage_delta},\"branches\":{branches}",
                json_escape(action),
                json_escape(payload)
            ),
            TelemetryEvent::Replayed {
                records,
                conditionals,
                truncated,
                ..
            } => format!(
                ",\"records\":{records},\"conditionals\":{conditionals},\"truncated\":{truncated}"
            ),
            TelemetryEvent::SmtQuery {
                outcome,
                conflicts,
                props,
                cache_hit,
                incremental,
                ..
            } => format!(
                ",\"outcome\":\"{}\",\"conflicts\":{conflicts},\"props\":{props},\"cache_hit\":{cache_hit},\"incremental\":{incremental}",
                outcome.name()
            ),
            TelemetryEvent::ConstraintFlipped {
                func,
                pc,
                direction,
                ..
            } => format!(",\"func\":{func},\"pc\":{pc},\"direction\":{direction}"),
            TelemetryEvent::OracleVerdict {
                oracle, flagged, ..
            } => format!(",\"oracle\":\"{}\",\"flagged\":{flagged}", json_escape(oracle)),
            TelemetryEvent::CampaignFinished {
                iterations,
                branches,
                truncated,
                ..
            } => format!(
                ",\"iterations\":{iterations},\"branches\":{branches},\"truncated\":{truncated}"
            ),
            TelemetryEvent::CampaignAborted {
                stage, outcome, ..
            } => format!(
                ",\"stage\":\"{}\",\"outcome\":\"{}\"",
                json_escape(stage),
                json_escape(outcome)
            ),
        };
        format!("{head}{body}}}")
    }

    /// Parse one JSONL trace line back into `(campaign, event)`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed token or missing field.
    pub fn parse_jsonl(line: &str) -> Result<(usize, TelemetryEvent), String> {
        let fields = parse_json_fields(line)?;
        let str_of = |k: &str| -> Result<String, String> {
            match fields.get(k) {
                Some(JsonValue::Str(s)) => Ok(s.clone()),
                _ => Err(format!("missing string field {k:?} in {line:?}")),
            }
        };
        let num_of = |k: &str| -> Result<u64, String> {
            match fields.get(k) {
                Some(JsonValue::Num(n)) => Ok(*n),
                _ => Err(format!("missing numeric field {k:?} in {line:?}")),
            }
        };
        let bool_of = |k: &str| -> Result<bool, String> {
            match fields.get(k) {
                Some(JsonValue::Bool(b)) => Ok(*b),
                _ => Err(format!("missing boolean field {k:?} in {line:?}")),
            }
        };
        let campaign = num_of("campaign")? as usize;
        let vtime = num_of("vtime")?;
        let name = str_of("event")?;
        let event = match name.as_str() {
            "campaign_started" => TelemetryEvent::CampaignStarted {
                seed: num_of("seed")?,
                actions: num_of("actions")? as usize,
                vtime,
            },
            "stage_timing" => TelemetryEvent::StageTiming {
                stage: Stage::parse(&str_of("stage")?)
                    .ok_or_else(|| format!("unknown stage in {line:?}"))?,
                dur_us: num_of("dur_us")?,
                vtime,
            },
            "seed_executed" => TelemetryEvent::SeedExecuted {
                action: str_of("action")?,
                payload: str_of("payload")?,
                coverage_delta: num_of("coverage_delta")? as usize,
                branches: num_of("branches")? as usize,
                vtime,
            },
            "replayed" => TelemetryEvent::Replayed {
                records: num_of("records")? as usize,
                conditionals: num_of("conditionals")? as usize,
                truncated: bool_of("truncated")?,
                vtime,
            },
            "smt_query" => TelemetryEvent::SmtQuery {
                outcome: SmtOutcome::parse(&str_of("outcome")?)
                    .ok_or_else(|| format!("unknown outcome in {line:?}"))?,
                conflicts: num_of("conflicts")?,
                props: num_of("props")?,
                // Reuse tags postdate the trace format: absent in old
                // traces, which means the query was solved from scratch.
                cache_hit: bool_of("cache_hit").unwrap_or(false),
                incremental: bool_of("incremental").unwrap_or(false),
                vtime,
            },
            "constraint_flipped" => TelemetryEvent::ConstraintFlipped {
                func: num_of("func")? as u32,
                pc: num_of("pc")? as u32,
                direction: num_of("direction")?,
                vtime,
            },
            "oracle_verdict" => TelemetryEvent::OracleVerdict {
                oracle: str_of("oracle")?,
                flagged: bool_of("flagged")?,
                vtime,
            },
            "campaign_finished" => TelemetryEvent::CampaignFinished {
                iterations: num_of("iterations")?,
                branches: num_of("branches")? as usize,
                truncated: bool_of("truncated")?,
                vtime,
            },
            "campaign_aborted" => TelemetryEvent::CampaignAborted {
                campaign,
                stage: str_of("stage")?,
                outcome: str_of("outcome")?,
                vtime,
            },
            other => return Err(format!("unknown event {other:?}")),
        };
        Ok((campaign, event))
    }
}

/// A consumer of telemetry events.
///
/// Implementations must not let scheduling influence what they derive from
/// the stream: the events themselves are deterministic, and a sink that only
/// folds over them (like [`Metrics`]) inherits that determinism.
pub trait TelemetrySink: fmt::Debug + Send {
    /// Observe one event, in emission order.
    fn record(&mut self, event: TelemetryEvent);
}

/// A sink that discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn record(&mut self, _event: TelemetryEvent) {}
}

/// A sink that buffers every event for post-campaign inspection.
///
/// Clones share one buffer, so a clone handed to the engine (which consumes
/// its sink) leaves the original able to [`Recorder::take`] the events after
/// the campaign completes.
#[derive(Debug, Default, Clone)]
pub struct Recorder {
    events: Arc<Mutex<Vec<TelemetryEvent>>>,
}

impl Recorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Drain the recorded events (in emission order).
    pub fn take(&self) -> Vec<TelemetryEvent> {
        std::mem::take(&mut *lock_events(&self.events))
    }

    /// A copy of the recorded events (in emission order).
    pub fn snapshot(&self) -> Vec<TelemetryEvent> {
        lock_events(&self.events).clone()
    }
}

fn lock_events(m: &Mutex<Vec<TelemetryEvent>>) -> std::sync::MutexGuard<'_, Vec<TelemetryEvent>> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl TelemetrySink for Recorder {
    fn record(&mut self, event: TelemetryEvent) {
        lock_events(&self.events).push(event);
    }
}

/// Number of log₂ buckets in a [`VtimeHistogram`] (covers up to ~8 virtual
/// seconds per step; longer steps saturate into the last bucket).
pub const HIST_BUCKETS: usize = 24;

/// A histogram of virtual-time durations with power-of-two buckets.
///
/// Bucket `i` counts durations in `[2^(i-1), 2^i)` microseconds (bucket 0
/// counts sub-microsecond charges). The exact totals are preserved in
/// [`VtimeHistogram::total_us`], so histogram totals can be checked against
/// the engine's final [`crate::VirtualClock`] reading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VtimeHistogram {
    counts: [u64; HIST_BUCKETS],
    /// Number of observations.
    pub samples: u64,
    /// Sum of all observed durations, in virtual microseconds.
    pub total_us: u64,
}

impl Default for VtimeHistogram {
    fn default() -> Self {
        VtimeHistogram {
            counts: [0; HIST_BUCKETS],
            samples: 0,
            total_us: 0,
        }
    }
}

impl VtimeHistogram {
    /// The bucket index a duration falls into.
    pub fn bucket_of(dur_us: u64) -> usize {
        (64 - u64::leading_zeros(dur_us) as usize).min(HIST_BUCKETS - 1)
    }

    /// Record one duration.
    pub fn observe(&mut self, dur_us: u64) {
        self.counts[Self::bucket_of(dur_us)] += 1;
        self.samples += 1;
        self.total_us += dur_us;
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64; HIST_BUCKETS] {
        &self.counts
    }

    /// Mean duration in virtual microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.total_us.checked_div(self.samples).unwrap_or(0)
    }
}

/// Counters and per-stage virtual-time histograms folded from an event
/// stream — the aggregation behind `wasai stats`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Campaigns started.
    pub campaigns: u64,
    /// Campaigns that ran to completion.
    pub finished: u64,
    /// Seeds executed on the chain.
    pub seeds: u64,
    /// Sum of per-execution coverage deltas (new branches discovered).
    pub coverage_gained: u64,
    /// Symbolic replays performed.
    pub replays: u64,
    /// Trace records replayed in total.
    pub replay_records: u64,
    /// Constraints successfully flipped into adaptive seeds.
    pub flips: u64,
    /// SMT queries answered Sat.
    pub smt_sat: u64,
    /// SMT queries answered Unsat.
    pub smt_unsat: u64,
    /// SMT queries that exhausted their budget.
    pub smt_unknown: u64,
    /// Total SAT unit propagations.
    pub smt_props: u64,
    /// Total SAT conflicts.
    pub smt_conflicts: u64,
    /// SMT queries answered from the campaign memo cache.
    pub smt_cache_hits: u64,
    /// SMT queries answered through the shared-prefix incremental session.
    pub smt_incremental: u64,
    /// Virtual-time histograms per stage.
    pub stage_vtime: BTreeMap<Stage, VtimeHistogram>,
    /// Per-oracle flagged counts.
    pub oracle_flagged: BTreeMap<String, u64>,
    /// Per-oracle clean counts.
    pub oracle_clean: BTreeMap<String, u64>,
    /// Aborted campaigns by outcome tag (`failed`, `panicked`, `timed-out`).
    pub aborted: BTreeMap<String, u64>,
    /// Campaigns whose report was truncated by the wall-clock watchdog.
    pub truncated: u64,
}

impl Metrics {
    /// Fresh, empty metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Fold one event in.
    pub fn observe(&mut self, event: &TelemetryEvent) {
        match event {
            TelemetryEvent::CampaignStarted { .. } => self.campaigns += 1,
            TelemetryEvent::StageTiming { stage, dur_us, .. } => {
                self.stage_vtime.entry(*stage).or_default().observe(*dur_us);
            }
            TelemetryEvent::SeedExecuted { coverage_delta, .. } => {
                self.seeds += 1;
                self.coverage_gained += *coverage_delta as u64;
            }
            TelemetryEvent::Replayed { records, .. } => {
                self.replays += 1;
                self.replay_records += *records as u64;
            }
            TelemetryEvent::SmtQuery {
                outcome,
                conflicts,
                props,
                cache_hit,
                incremental,
                ..
            } => {
                match outcome {
                    SmtOutcome::Sat => self.smt_sat += 1,
                    SmtOutcome::Unsat => self.smt_unsat += 1,
                    SmtOutcome::Unknown => self.smt_unknown += 1,
                }
                self.smt_conflicts += conflicts;
                self.smt_props += props;
                if *cache_hit {
                    self.smt_cache_hits += 1;
                }
                if *incremental {
                    self.smt_incremental += 1;
                }
            }
            TelemetryEvent::ConstraintFlipped { .. } => self.flips += 1,
            TelemetryEvent::OracleVerdict {
                oracle, flagged, ..
            } => {
                let slot = if *flagged {
                    &mut self.oracle_flagged
                } else {
                    &mut self.oracle_clean
                };
                *slot.entry(oracle.clone()).or_default() += 1;
            }
            TelemetryEvent::CampaignFinished { truncated, .. } => {
                self.finished += 1;
                if *truncated {
                    self.truncated += 1;
                }
            }
            TelemetryEvent::CampaignAborted { outcome, .. } => {
                *self.aborted.entry(outcome.clone()).or_default() += 1;
            }
        }
    }

    /// Fold a whole event stream.
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a TelemetryEvent>) -> Self {
        let mut m = Metrics::new();
        for ev in events {
            m.observe(ev);
        }
        m
    }

    /// Total SMT queries (sat + unsat + unknown).
    pub fn smt_queries(&self) -> u64 {
        self.smt_sat + self.smt_unsat + self.smt_unknown
    }

    /// Virtual microseconds attributed to one stage.
    pub fn stage_total_us(&self, stage: Stage) -> u64 {
        self.stage_vtime.get(&stage).map_or(0, |h| h.total_us)
    }

    /// Virtual microseconds attributed across all stages.
    ///
    /// For a single campaign this equals the engine's final
    /// [`crate::VirtualClock`] reading: every charge the clock takes is
    /// emitted as exactly one [`TelemetryEvent::StageTiming`].
    pub fn total_vtime_us(&self) -> u64 {
        Stage::ALL.iter().map(|&s| self.stage_total_us(s)).sum()
    }

    /// Total aborted campaigns across all outcome tags.
    pub fn total_aborted(&self) -> u64 {
        self.aborted.values().sum()
    }

    /// Render the human-readable summary table (`wasai stats`).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "=== campaign telemetry ===");
        let _ = writeln!(
            out,
            "campaigns: {} started, {} finished, {} aborted, {} truncated",
            self.campaigns,
            self.finished,
            self.total_aborted(),
            self.truncated
        );
        if !self.aborted.is_empty() {
            let parts: Vec<String> = self
                .aborted
                .iter()
                .map(|(k, n)| format!("{n} {k}"))
                .collect();
            let _ = writeln!(out, "aborted by outcome: {}", parts.join(", "));
        }
        let _ = writeln!(
            out,
            "seeds executed: {} ({} new branches discovered)",
            self.seeds, self.coverage_gained
        );
        let _ = writeln!(
            out,
            "symbolic replays: {} ({} trace records)",
            self.replays, self.replay_records
        );
        let _ = writeln!(out, "constraints flipped into seeds: {}", self.flips);
        let _ = writeln!(
            out,
            "SMT queries: {} (sat {}, unsat {}, unknown {}) — {} conflicts, {} propagations",
            self.smt_queries(),
            self.smt_sat,
            self.smt_unsat,
            self.smt_unknown,
            self.smt_conflicts,
            self.smt_props
        );
        let _ = writeln!(
            out,
            "solver reuse: {} cache hits ({:.1}% hit rate), {} incremental",
            self.smt_cache_hits,
            100.0 * self.smt_cache_hits as f64 / self.smt_queries().max(1) as f64,
            self.smt_incremental
        );
        let total = self.total_vtime_us().max(1);
        let _ = writeln!(out, "\nper-stage virtual time:");
        let _ = writeln!(
            out,
            "  {:<10} {:>14} {:>7} {:>9} {:>11}",
            "stage", "total(µs)", "share", "samples", "mean(µs)"
        );
        for stage in Stage::ALL {
            let h = self.stage_vtime.get(&stage).cloned().unwrap_or_default();
            let _ = writeln!(
                out,
                "  {:<10} {:>14} {:>6.1}% {:>9} {:>11}",
                stage.name(),
                h.total_us,
                100.0 * h.total_us as f64 / total as f64,
                h.samples,
                h.mean_us()
            );
        }
        let _ = writeln!(
            out,
            "  {:<10} {:>14} {:>6.1}%",
            "total",
            self.total_vtime_us(),
            100.0
        );
        if !(self.oracle_flagged.is_empty() && self.oracle_clean.is_empty()) {
            let _ = writeln!(out, "\noracle verdicts (flagged / clean):");
            let names: BTreeSet<&String> = self
                .oracle_flagged
                .keys()
                .chain(self.oracle_clean.keys())
                .collect();
            for name in names {
                let _ = writeln!(
                    out,
                    "  {:<14} {:>5} / {:<5}",
                    name,
                    self.oracle_flagged.get(name).copied().unwrap_or(0),
                    self.oracle_clean.get(name).copied().unwrap_or(0)
                );
            }
        }
        out
    }
}

impl TelemetrySink for Metrics {
    fn record(&mut self, event: TelemetryEvent) {
        self.observe(&event);
    }
}

/// Build the per-oracle verdict events a campaign emits at its end: one
/// [`TelemetryEvent::OracleVerdict`] per [`VulnClass`] (in the paper's
/// order), then one per custom oracle finding.
///
/// Shared by the engine and the oracle unit tests so "what telemetry says"
/// and "what the report says" cannot drift apart.
pub fn oracle_verdicts(
    findings: &BTreeSet<VulnClass>,
    custom_findings: &[(String, String)],
    vtime: u64,
) -> Vec<TelemetryEvent> {
    oracle_verdicts_for(&VulnClass::ALL, findings, custom_findings, vtime)
}

/// [`oracle_verdicts`] against an explicit class list — each substrate
/// passes its own oracle catalog ([`VulnClass::ALL`] for EOSIO,
/// [`VulnClass::COSMWASM`] for CosmWasm) so the event stream always carries
/// one verdict per oracle the campaign actually ran.
pub fn oracle_verdicts_for(
    classes: &[VulnClass],
    findings: &BTreeSet<VulnClass>,
    custom_findings: &[(String, String)],
    vtime: u64,
) -> Vec<TelemetryEvent> {
    let mut out: Vec<TelemetryEvent> = classes
        .iter()
        .map(|class| TelemetryEvent::OracleVerdict {
            oracle: class.to_string(),
            flagged: findings.contains(class),
            vtime,
        })
        .collect();
    for (name, _) in custom_findings {
        out.push(TelemetryEvent::OracleVerdict {
            oracle: name.clone(),
            flagged: true,
            vtime,
        });
    }
    out
}

/// Serialize per-campaign event streams into one JSONL trace, in the order
/// given (callers pass campaigns in index order for deterministic traces).
pub fn write_trace<'a>(
    campaigns: impl IntoIterator<Item = (usize, &'a [TelemetryEvent])>,
) -> String {
    let mut out = String::new();
    for (index, events) in campaigns {
        for ev in events {
            out.push_str(&ev.to_jsonl(index));
            out.push('\n');
        }
    }
    out
}

/// Parse a JSONL trace back into `(campaign, event)` pairs, skipping blank
/// lines.
///
/// # Errors
///
/// Returns the first line that fails to parse, with its line number.
pub fn parse_trace(text: &str) -> Result<Vec<(usize, TelemetryEvent)>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(
            TelemetryEvent::parse_jsonl(line).map_err(|e| format!("line {}: {e}", lineno + 1))?,
        );
    }
    Ok(out)
}

/// Minimal JSON string escaping for trace/triage lines (flat objects only).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A value in a flat JSON object line (the only shapes the trace and triage
/// formats emit).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// An unsigned integer.
    Num(u64),
    /// A non-negative decimal fraction (observability dumps emit histogram
    /// `_sum` series in seconds).
    Float(f64),
    /// A string (unescaped).
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is an integer.
    pub fn as_num(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a float, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n as f64),
            JsonValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse one flat JSON object line (string/unsigned-number/decimal/boolean
/// values only — exactly what the trace, triage, and metrics-dump writers
/// emit).
///
/// # Errors
///
/// Returns a description of the first malformed token.
pub fn parse_json_fields(line: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut fields = BTreeMap::new();
    let s = line.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("not a JSON object: {line:?}"))?;
    let mut chars = inner.chars().peekable();
    loop {
        // Skip separators and whitespace.
        while matches!(chars.peek(), Some(c) if c.is_whitespace() || *c == ',') {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        let key = parse_json_string(&mut chars)?;
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        if chars.next() != Some(':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        let value = match chars.peek() {
            Some('"') => JsonValue::Str(parse_json_string(&mut chars)?),
            Some(c) if c.is_ascii_digit() => {
                let mut digits = String::new();
                while matches!(chars.peek(), Some(c) if c.is_ascii_digit()) {
                    digits.push(chars.next().unwrap_or('0'));
                }
                if chars.peek() == Some(&'.') {
                    digits.push(chars.next().unwrap_or('.'));
                    while matches!(chars.peek(), Some(c) if c.is_ascii_digit()) {
                        digits.push(chars.next().unwrap_or('0'));
                    }
                    JsonValue::Float(
                        digits
                            .parse()
                            .map_err(|e| format!("bad number {digits:?}: {e}"))?,
                    )
                } else {
                    JsonValue::Num(
                        digits
                            .parse()
                            .map_err(|e| format!("bad number {digits:?}: {e}"))?,
                    )
                }
            }
            Some('t' | 'f') => {
                let mut word = String::new();
                while matches!(chars.peek(), Some(c) if c.is_ascii_alphabetic()) {
                    word.push(chars.next().unwrap_or(' '));
                }
                match word.as_str() {
                    "true" => JsonValue::Bool(true),
                    "false" => JsonValue::Bool(false),
                    other => return Err(format!("bad literal {other:?}")),
                }
            }
            other => return Err(format!("unexpected value start {other:?} for key {key:?}")),
        };
        fields.insert(key, value);
    }
    Ok(fields)
}

/// Parse a quoted, escaped JSON string starting at the current character.
fn parse_json_string(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected opening quote".to_string());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".to_string()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|e| format!("bad \\u escape {hex:?}: {e}"))?;
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(c) => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TelemetryEvent> {
        vec![
            TelemetryEvent::CampaignStarted {
                seed: 7,
                actions: 3,
                vtime: 0,
            },
            TelemetryEvent::StageTiming {
                stage: Stage::Execute,
                dur_us: 2_500,
                vtime: 2_500,
            },
            TelemetryEvent::SeedExecuted {
                action: "transfer".into(),
                payload: "official".into(),
                coverage_delta: 2,
                branches: 2,
                vtime: 2_500,
            },
            TelemetryEvent::Replayed {
                records: 120,
                conditionals: 4,
                truncated: false,
                vtime: 2_500,
            },
            TelemetryEvent::StageTiming {
                stage: Stage::Solve,
                dur_us: 21_000,
                vtime: 23_500,
            },
            TelemetryEvent::SmtQuery {
                outcome: SmtOutcome::Sat,
                conflicts: 3,
                props: 500,
                cache_hit: true,
                incremental: false,
                vtime: 23_500,
            },
            TelemetryEvent::ConstraintFlipped {
                func: 4,
                pc: 17,
                direction: 1,
                vtime: 23_500,
            },
            TelemetryEvent::OracleVerdict {
                oracle: "Fake EOS".into(),
                flagged: true,
                vtime: 23_500,
            },
            TelemetryEvent::CampaignFinished {
                iterations: 9,
                branches: 2,
                truncated: false,
                vtime: 23_500,
            },
            TelemetryEvent::CampaignAborted {
                campaign: 0,
                stage: "replay".into(),
                outcome: "panicked".into(),
                vtime: 0,
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_variant() {
        for ev in sample_events() {
            let line = ev.to_jsonl(3);
            let (campaign, back) = TelemetryEvent::parse_jsonl(&line).expect("parses");
            // CampaignAborted carries its own index; the line's index wins.
            let expected = match ev {
                TelemetryEvent::CampaignAborted {
                    stage,
                    outcome,
                    vtime,
                    ..
                } => TelemetryEvent::CampaignAborted {
                    campaign: 3,
                    stage,
                    outcome,
                    vtime,
                },
                other => other,
            };
            assert_eq!(campaign, 3);
            assert_eq!(back, expected, "line: {line}");
        }
    }

    #[test]
    fn write_then_parse_trace_is_identity() {
        let events = sample_events();
        let text = write_trace([(0, events.as_slice()), (2, events.as_slice())]);
        let parsed = parse_trace(&text).expect("parses");
        assert_eq!(parsed.len(), events.len() * 2);
        assert_eq!(parsed[0].0, 0);
        assert_eq!(parsed[events.len()].0, 2);
    }

    #[test]
    fn escaped_strings_round_trip() {
        let ev = TelemetryEvent::SeedExecuted {
            action: "we\"ird\\na\nme\t".into(),
            payload: "direct-fake".into(),
            coverage_delta: 0,
            branches: 0,
            vtime: 1,
        };
        let line = ev.to_jsonl(0);
        let (_, back) = TelemetryEvent::parse_jsonl(&line).expect("parses");
        assert_eq!(back, ev);
    }

    #[test]
    fn metrics_fold_counts_and_histograms() {
        let events = sample_events();
        let m = Metrics::from_events(&events);
        assert_eq!(m.campaigns, 1);
        assert_eq!(m.finished, 1);
        assert_eq!(m.seeds, 1);
        assert_eq!(m.coverage_gained, 2);
        assert_eq!(m.replays, 1);
        assert_eq!(m.replay_records, 120);
        assert_eq!(m.flips, 1);
        assert_eq!(m.smt_queries(), 1);
        assert_eq!(m.smt_sat, 1);
        assert_eq!(m.smt_cache_hits, 1);
        assert_eq!(m.smt_incremental, 0);
        assert_eq!(m.total_vtime_us(), 23_500);
        assert_eq!(m.stage_total_us(Stage::Execute), 2_500);
        assert_eq!(m.stage_total_us(Stage::Solve), 21_000);
        assert_eq!(m.oracle_flagged.get("Fake EOS"), Some(&1));
        assert_eq!(m.aborted.get("panicked"), Some(&1));
        assert_eq!(m.total_aborted(), 1);
        // Incremental sink fold equals the batch fold.
        let mut inc = Metrics::new();
        for ev in events {
            inc.record(ev);
        }
        assert_eq!(inc, m);
        // The rendered table mentions the headline numbers.
        let table = m.render();
        assert!(table.contains("SMT queries: 1 (sat 1, unsat 0, unknown 0)"));
        assert!(table.contains("solver reuse: 1 cache hits (100.0% hit rate), 0 incremental"));
        assert!(table.contains("execute"));
        assert!(table.contains("Fake EOS"));
    }

    #[test]
    fn pre_reuse_smt_query_lines_parse_with_tags_false() {
        // Traces written before the reuse tags existed must keep parsing;
        // a missing tag means the query was solved from scratch.
        let line = "{\"campaign\":0,\"event\":\"smt_query\",\"vtime\":5,\
                    \"outcome\":\"sat\",\"conflicts\":1,\"props\":2}";
        let (_, ev) = TelemetryEvent::parse_jsonl(line).expect("parses");
        assert_eq!(
            ev,
            TelemetryEvent::SmtQuery {
                outcome: SmtOutcome::Sat,
                conflicts: 1,
                props: 2,
                cache_hit: false,
                incremental: false,
                vtime: 5,
            }
        );
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(VtimeHistogram::bucket_of(0), 0);
        assert_eq!(VtimeHistogram::bucket_of(1), 1);
        assert_eq!(VtimeHistogram::bucket_of(2), 2);
        assert_eq!(VtimeHistogram::bucket_of(3), 2);
        assert_eq!(VtimeHistogram::bucket_of(1024), 11);
        assert_eq!(VtimeHistogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        let mut h = VtimeHistogram::default();
        h.observe(3);
        h.observe(5);
        assert_eq!(h.samples, 2);
        assert_eq!(h.total_us, 8);
        assert_eq!(h.mean_us(), 4);
    }

    #[test]
    fn oracle_verdicts_cover_all_classes_in_order() {
        let mut findings = BTreeSet::new();
        findings.insert(VulnClass::Rollback);
        let custom = vec![("tapos".to_string(), "seen".to_string())];
        let events = oracle_verdicts(&findings, &custom, 42);
        assert_eq!(events.len(), VulnClass::ALL.len() + 1);
        for (class, ev) in VulnClass::ALL.iter().zip(&events) {
            match ev {
                TelemetryEvent::OracleVerdict {
                    oracle,
                    flagged,
                    vtime,
                } => {
                    assert_eq!(oracle, &class.to_string());
                    assert_eq!(*flagged, *class == VulnClass::Rollback);
                    assert_eq!(*vtime, 42);
                }
                other => panic!("expected verdict, got {other:?}"),
            }
        }
        match &events[5] {
            TelemetryEvent::OracleVerdict {
                oracle, flagged, ..
            } => {
                assert_eq!(oracle, "tapos");
                assert!(flagged);
            }
            other => panic!("expected custom verdict, got {other:?}"),
        }
    }

    #[test]
    fn recorder_clones_share_one_buffer() {
        let rec = Recorder::new();
        let mut handle: Box<dyn TelemetrySink> = Box::new(rec.clone());
        handle.record(TelemetryEvent::CampaignStarted {
            seed: 1,
            actions: 1,
            vtime: 0,
        });
        drop(handle);
        assert_eq!(rec.snapshot().len(), 1);
        assert_eq!(rec.take().len(), 1);
        assert!(rec.take().is_empty());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(TelemetryEvent::parse_jsonl("not json").is_err());
        assert!(TelemetryEvent::parse_jsonl("{\"campaign\":0}").is_err());
        assert!(
            TelemetryEvent::parse_jsonl("{\"campaign\":0,\"event\":\"nope\",\"vtime\":0}").is_err()
        );
        assert!(parse_json_fields("{\"a\":}").is_err());
    }
}
