//! The public façade: analyze one contract with WASAI.

use std::sync::Arc;

use wasai_chain::abi::Abi;
use wasai_wasm::Module;

use crate::config::FuzzConfig;
use crate::engine::Engine;
use crate::harness::{PreparedTarget, TargetInfo};
use crate::report::FuzzReport;
use crate::telemetry::{Recorder, TelemetryEvent, TelemetrySink};
use wasai_smt::SolverCache;

/// Where the campaign's target comes from: a raw module prepared on `run`,
/// or a shared pre-instrumented artifact (the fleet cache).
#[derive(Debug)]
enum Target {
    Raw(Box<TargetInfo>),
    Prepared(Arc<PreparedTarget>),
}

/// A configured WASAI analysis of one Wasm smart contract.
///
/// # Examples
///
/// ```no_run
/// use wasai_core::{Wasai, FuzzConfig};
/// # let (module, abi) = todo!() as (wasai_wasm::Module, wasai_chain::abi::Abi);
/// let report = Wasai::new(module, abi)
///     .with_config(FuzzConfig::default())
///     .run()?;
/// for finding in &report.findings {
///     println!("vulnerable: {finding}");
/// }
/// # Ok::<(), wasai_chain::ChainError>(())
/// ```
#[derive(Debug)]
pub struct Wasai {
    target: Target,
    cfg: FuzzConfig,
    oracles: Vec<Box<dyn crate::oracle::CustomOracle>>,
    sink: Option<Box<dyn TelemetrySink>>,
    solver_cache: Option<Arc<SolverCache>>,
}

impl Wasai {
    /// Analyze `module` (with its ABI) under the default configuration.
    pub fn new(module: Module, abi: Abi) -> Self {
        Wasai {
            target: Target::Raw(Box::new(TargetInfo::new(module, abi))),
            cfg: FuzzConfig::default(),
            oracles: Vec::new(),
            sink: None,
            solver_cache: None,
        }
    }

    /// Analyze a cached [`PreparedTarget`]: instrumentation, compilation and
    /// the branch-site table are shared with every other campaign holding
    /// the same `Arc` instead of being redone per campaign.
    pub fn from_prepared(prepared: Arc<PreparedTarget>) -> Self {
        Wasai {
            target: Target::Prepared(prepared),
            cfg: FuzzConfig::default(),
            oracles: Vec::new(),
            sink: None,
            solver_cache: None,
        }
    }

    /// Override the configuration.
    pub fn with_config(mut self, cfg: FuzzConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Register a custom vulnerability oracle (§5's extension interface).
    pub fn with_oracle(mut self, oracle: Box<dyn crate::oracle::CustomOracle>) -> Self {
        self.oracles.push(oracle);
        self
    }

    /// Attach a telemetry sink for the campaign (see
    /// [`crate::telemetry`] for the event taxonomy and determinism
    /// contract). Without one, the campaign emits nothing and behaves
    /// exactly as before telemetry existed.
    pub fn with_sink(mut self, sink: Box<dyn TelemetrySink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Share a fleet-wide solver query cache with this campaign (see
    /// [`wasai_smt::SolverCache`]). Campaigns holding the same `Arc` skip
    /// each other's already-solved flip queries; reports and traces are
    /// byte-identical with or without it.
    pub fn with_solver_cache(mut self, cache: Arc<SolverCache>) -> Self {
        self.solver_cache = Some(cache);
        self
    }

    /// Run the campaign.
    ///
    /// # Errors
    ///
    /// Fails if the contract cannot be instrumented or deployed (e.g. it
    /// does not validate).
    pub fn run(self) -> Result<FuzzReport, wasai_chain::ChainError> {
        let prepared = match self.target {
            Target::Raw(info) => PreparedTarget::prepare(*info)?,
            Target::Prepared(p) => p,
        };
        let mut engine = Engine::from_prepared(prepared, self.cfg)?;
        for o in self.oracles {
            engine.add_oracle(o);
        }
        if let Some(sink) = self.sink {
            engine.set_sink(sink);
        }
        if let Some(cache) = self.solver_cache {
            engine.set_solver_cache(cache);
        }
        Ok(engine.run())
    }

    /// Run the campaign and return its full telemetry event stream along
    /// with the report (a [`Recorder`] is attached internally; any sink set
    /// via [`Wasai::with_sink`] is replaced).
    ///
    /// # Errors
    ///
    /// Fails if the contract cannot be instrumented or deployed.
    pub fn run_traced(
        mut self,
    ) -> Result<(FuzzReport, Vec<TelemetryEvent>), wasai_chain::ChainError> {
        let recorder = Recorder::new();
        self.sink = Some(Box::new(recorder.clone()));
        let report = self.run()?;
        Ok((report, recorder.take()))
    }
}
