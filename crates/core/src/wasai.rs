//! The public façade: analyze one contract with WASAI.

use std::sync::Arc;

use wasai_chain::abi::Abi;
use wasai_wasm::Module;

use crate::config::FuzzConfig;
use crate::harness::{PreparedTarget, TargetInfo};
use crate::report::FuzzReport;
use crate::substrate::{substrate, CampaignContext, CampaignTarget, SubstrateKind};
use crate::telemetry::{Recorder, TelemetryEvent, TelemetrySink};
use wasai_smt::SolverCache;

/// A configured WASAI analysis of one Wasm smart contract.
///
/// # Examples
///
/// ```no_run
/// use wasai_core::{Wasai, FuzzConfig};
/// # let (module, abi) = todo!() as (wasai_wasm::Module, wasai_chain::abi::Abi);
/// let report = Wasai::new(module, abi)
///     .with_config(FuzzConfig::default())
///     .run()?;
/// for finding in &report.findings {
///     println!("vulnerable: {finding}");
/// }
/// # Ok::<(), wasai_chain::ChainError>(())
/// ```
#[derive(Debug)]
pub struct Wasai {
    target: CampaignTarget,
    cfg: FuzzConfig,
    substrate: Option<SubstrateKind>,
    oracles: Vec<Box<dyn crate::oracle::CustomOracle>>,
    sink: Option<Box<dyn TelemetrySink>>,
    solver_cache: Option<Arc<SolverCache>>,
}

impl Wasai {
    /// Analyze `module` (with its ABI) under the default configuration.
    pub fn new(module: Module, abi: Abi) -> Self {
        Wasai {
            target: CampaignTarget::Raw(Box::new(TargetInfo::new(module, abi))),
            cfg: FuzzConfig::default(),
            substrate: None,
            oracles: Vec::new(),
            sink: None,
            solver_cache: None,
        }
    }

    /// Analyze a cached [`PreparedTarget`]: instrumentation, compilation and
    /// the branch-site table are shared with every other campaign holding
    /// the same `Arc` instead of being redone per campaign.
    pub fn from_prepared(prepared: Arc<PreparedTarget>) -> Self {
        Wasai {
            target: CampaignTarget::Prepared(prepared),
            cfg: FuzzConfig::default(),
            substrate: None,
            oracles: Vec::new(),
            sink: None,
            solver_cache: None,
        }
    }

    /// Pin the chain substrate instead of auto-detecting it from the
    /// module's entry exports. The EOSIO path is byte-identical whether
    /// pinned or detected.
    pub fn with_substrate(mut self, kind: SubstrateKind) -> Self {
        self.substrate = Some(kind);
        self
    }

    /// Override the configuration.
    pub fn with_config(mut self, cfg: FuzzConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Register a custom vulnerability oracle (§5's extension interface).
    pub fn with_oracle(mut self, oracle: Box<dyn crate::oracle::CustomOracle>) -> Self {
        self.oracles.push(oracle);
        self
    }

    /// Attach a telemetry sink for the campaign (see
    /// [`crate::telemetry`] for the event taxonomy and determinism
    /// contract). Without one, the campaign emits nothing and behaves
    /// exactly as before telemetry existed.
    pub fn with_sink(mut self, sink: Box<dyn TelemetrySink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Share a fleet-wide solver query cache with this campaign (see
    /// [`wasai_smt::SolverCache`]). Campaigns holding the same `Arc` skip
    /// each other's already-solved flip queries; reports and traces are
    /// byte-identical with or without it.
    pub fn with_solver_cache(mut self, cache: Arc<SolverCache>) -> Self {
        self.solver_cache = Some(cache);
        self
    }

    /// Run the campaign.
    ///
    /// # Errors
    ///
    /// Fails if the contract cannot be instrumented or deployed (e.g. it
    /// does not validate).
    pub fn run(self) -> Result<FuzzReport, wasai_chain::ChainError> {
        let kind = self
            .substrate
            .unwrap_or_else(|| SubstrateKind::detect(self.target.module()));
        substrate(kind).run_campaign(CampaignContext {
            target: self.target,
            cfg: self.cfg,
            oracles: self.oracles,
            sink: self.sink,
            solver_cache: self.solver_cache,
        })
    }

    /// Run the campaign and return its full telemetry event stream along
    /// with the report (a [`Recorder`] is attached internally; any sink set
    /// via [`Wasai::with_sink`] is replaced).
    ///
    /// # Errors
    ///
    /// Fails if the contract cannot be instrumented or deployed.
    pub fn run_traced(
        mut self,
    ) -> Result<(FuzzReport, Vec<TelemetryEvent>), wasai_chain::ChainError> {
        let recorder = Recorder::new();
        self.sink = Some(Box::new(recorder.clone()));
        let report = self.run()?;
        Ok((report, recorder.take()))
    }
}
