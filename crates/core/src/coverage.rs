//! Branch-coverage extraction from traces (RQ1's metric: "the number of
//! distinct branches explored").
//!
//! Shared by WASAI and the baseline fuzzers so Figure 3 compares like with
//! like: a branch is a `(function, pc, direction)` triple of a `br_if`/`if`
//! (direction = condition ≠ 0) or a `br_table` (direction = index). The
//! dispatcher (`apply`) is excluded — "WASAI only focuses on exploring
//! branches in the action functions" (§5).

use std::collections::HashSet;

use wasai_vm::{TraceKind, TraceRecord};
use wasai_wasm::instr::Instr;
use wasai_wasm::Module;

/// A covered branch: `(func, pc, direction)`.
pub type BranchKey = (u32, u32, u64);

/// Extract the branches exercised by a trace.
pub fn branches_in_trace(module: &Module, trace: &[TraceRecord]) -> HashSet<BranchKey> {
    let apply_idx = module.exported_func("apply");
    let mut out = HashSet::new();
    for rec in trace {
        let TraceKind::Site { func, pc } = rec.kind else { continue };
        if Some(func) == apply_idx {
            continue;
        }
        let Some(f) = module.local_func(func) else { continue };
        match f.body.get(pc as usize) {
            Some(Instr::BrIf(_)) | Some(Instr::If(_)) => {
                let cond = rec.operands.first().map(|v| v.bits()).unwrap_or(0);
                out.insert((func, pc, (cond != 0) as u64));
            }
            Some(Instr::BrTable(..)) => {
                let idx = rec.operands.first().map(|v| v.bits()).unwrap_or(0);
                out.insert((func, pc, idx));
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasai_vm::TraceVal;
    use wasai_wasm::builder::ModuleBuilder;
    use wasai_wasm::types::{BlockType, ValType::*};

    #[test]
    fn extracts_directions_and_skips_apply() {
        let mut b = ModuleBuilder::new();
        let action = b.func(&[I64], &[], &[], vec![
            Instr::LocalGet(0),
            Instr::I32WrapI64,
            Instr::If(BlockType::Empty),
            Instr::Nop,
            Instr::End,
            Instr::End,
        ]);
        let apply = b.func(&[I64, I64, I64], &[], &[], vec![
            Instr::LocalGet(0),
            Instr::I32WrapI64,
            Instr::BrIf(0),
            Instr::End,
        ]);
        b.export_func("apply", apply);
        let m = b.build();

        let trace = vec![
            TraceRecord {
                kind: TraceKind::Site { func: apply, pc: 2 },
                operands: vec![TraceVal::I(1)],
            },
            TraceRecord {
                kind: TraceKind::Site { func: action, pc: 2 },
                operands: vec![TraceVal::I(0)],
            },
        ];
        let branches = branches_in_trace(&m, &trace);
        assert_eq!(branches.len(), 1, "apply branches are excluded");
        assert!(branches.contains(&(action, 2, 0)));
    }
}
