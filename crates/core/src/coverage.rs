//! Branch-coverage extraction from traces (RQ1's metric: "the number of
//! distinct branches explored").
//!
//! Shared by WASAI and the baseline fuzzers so Figure 3 compares like with
//! like: a branch is a `(function, pc, direction)` triple of a `br_if`/`if`
//! (direction = condition ≠ 0) or a `br_table` (direction = index). The
//! dispatcher (`apply`) is excluded — "WASAI only focuses on exploring
//! branches in the action functions" (§5).

use std::collections::{HashMap, HashSet};

use wasai_vm::{TraceKind, TraceRecord};
use wasai_wasm::instr::Instr;
use wasai_wasm::Module;

/// A covered branch: `(func, pc, direction)`.
pub type BranchKey = (u32, u32, u64);

/// Cumulative coverage over virtual time: a monotone series of
/// `(virtual_us, branches)` samples.
///
/// First-class so every consumer — the engine, the baselines, Figure 3's
/// bucketing, telemetry — shares one representation and one interpolation
/// rule instead of each keeping private `Vec<(u64, usize)>` bookkeeping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageSeries {
    points: Vec<(u64, usize)>,
}

impl CoverageSeries {
    /// An empty series.
    pub fn new() -> Self {
        CoverageSeries::default()
    }

    /// Append a sample at `virtual_us` with cumulative `branches`.
    pub fn push(&mut self, virtual_us: u64, branches: usize) {
        self.points.push((virtual_us, branches));
    }

    /// The raw `(virtual_us, branches)` samples, in recording order.
    pub fn points(&self) -> &[(u64, usize)] {
        &self.points
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Cumulative branches at virtual time `at_us` (step interpolation:
    /// the last sample at or before `at_us`, 0 before the first sample).
    pub fn value_at(&self, at_us: u64) -> usize {
        self.points
            .iter()
            .take_while(|&&(t, _)| t <= at_us)
            .last()
            .map(|&(_, b)| b)
            .unwrap_or(0)
    }

    /// The final cumulative branch count (0 when empty).
    pub fn final_branches(&self) -> usize {
        self.points.last().map(|&(_, b)| b).unwrap_or(0)
    }

    /// Sum of [`CoverageSeries::value_at`] across many series — Figure 3's
    /// aggregate coverage at one time bucket.
    pub fn cumulative_at(series: &[CoverageSeries], at_us: u64) -> usize {
        series.iter().map(|s| s.value_at(at_us)).sum()
    }
}

impl FromIterator<(u64, usize)> for CoverageSeries {
    fn from_iter<I: IntoIterator<Item = (u64, usize)>>(iter: I) -> Self {
        CoverageSeries {
            points: iter.into_iter().collect(),
        }
    }
}

/// How a trace operand at a branch site maps to a direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SiteKind {
    /// `br_if` / `if`: direction = condition ≠ 0.
    Cond,
    /// `br_table`: direction = jump index.
    Table,
}

/// The branch-site table of one module, computed once so per-trace coverage
/// extraction is a hash lookup instead of an instruction-body walk.
///
/// Campaigns over the same contract (accuracy tables, coverage curves, the
/// fleet scheduler) share one table behind the `PreparedTarget` cache.
#[derive(Debug, Clone, Default)]
pub struct BranchSites {
    sites: HashMap<(u32, u32), SiteKind>,
    apply_idx: Option<u32>,
    directions: usize,
}

impl BranchSites {
    /// Scan `module` for every `br_if`/`if`/`br_table` site.
    pub fn new(module: &Module) -> Self {
        let apply_idx = module.exported_func("apply");
        let mut sites = HashMap::new();
        let mut directions = 0usize;
        let first_local = module.num_imported_funcs();
        for (local_i, f) in module.funcs.iter().enumerate() {
            let func = first_local + local_i as u32;
            if Some(func) == apply_idx {
                continue;
            }
            for (pc, instr) in f.body.iter().enumerate() {
                let kind = match instr {
                    Instr::BrIf(_) | Instr::If(_) => SiteKind::Cond,
                    Instr::BrTable(..) => SiteKind::Table,
                    _ => continue,
                };
                directions += match instr {
                    // Table arms plus the default target.
                    Instr::BrTable(targets, _) => targets.len() + 1,
                    _ => 2,
                };
                sites.insert((func, pc as u32), kind);
            }
        }
        BranchSites {
            sites,
            apply_idx,
            directions,
        }
    }

    /// Number of distinct branch *sites* (each contributes ≥ 1 direction).
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Upper bound on distinct coverable branch directions: 2 per
    /// conditional site, arms + default per `br_table` site. The coverage
    /// denominator for observability (the numerator is the explored
    /// `(func, pc, direction)` set, which this bounds).
    pub fn directions(&self) -> usize {
        self.directions
    }

    /// True if the module has no branch sites outside `apply`.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Extract the branches exercised by a trace.
    pub fn branches_in_trace(&self, trace: &[TraceRecord]) -> HashSet<BranchKey> {
        let mut out = HashSet::new();
        self.extend_from_trace(&mut out, trace);
        out
    }

    /// Add the branches exercised by a trace into an existing set.
    pub fn extend_from_trace(&self, out: &mut HashSet<BranchKey>, trace: &[TraceRecord]) {
        for rec in trace {
            let TraceKind::Site { func, pc } = rec.kind else {
                continue;
            };
            if Some(func) == self.apply_idx {
                continue;
            }
            let Some(kind) = self.sites.get(&(func, pc)) else {
                continue;
            };
            let operand = rec.operands.first().map(|v| v.bits()).unwrap_or(0);
            let direction = match kind {
                SiteKind::Cond => (operand != 0) as u64,
                SiteKind::Table => operand,
            };
            out.insert((func, pc, direction));
        }
    }
}

/// Extract the branches exercised by a trace.
///
/// One-shot convenience over [`BranchSites`]; callers running many traces
/// against the same module should build the table once instead.
pub fn branches_in_trace(module: &Module, trace: &[TraceRecord]) -> HashSet<BranchKey> {
    BranchSites::new(module).branches_in_trace(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasai_vm::TraceVal;
    use wasai_wasm::builder::ModuleBuilder;
    use wasai_wasm::types::{BlockType, ValType::*};

    #[test]
    fn extracts_directions_and_skips_apply() {
        let mut b = ModuleBuilder::new();
        let action = b.func(
            &[I64],
            &[],
            &[],
            vec![
                Instr::LocalGet(0),
                Instr::I32WrapI64,
                Instr::If(BlockType::Empty),
                Instr::Nop,
                Instr::End,
                Instr::End,
            ],
        );
        let apply = b.func(
            &[I64, I64, I64],
            &[],
            &[],
            vec![
                Instr::LocalGet(0),
                Instr::I32WrapI64,
                Instr::BrIf(0),
                Instr::End,
            ],
        );
        b.export_func("apply", apply);
        let m = b.build();

        let trace = vec![
            TraceRecord {
                kind: TraceKind::Site { func: apply, pc: 2 },
                operands: vec![TraceVal::I(1)],
            },
            TraceRecord {
                kind: TraceKind::Site {
                    func: action,
                    pc: 2,
                },
                operands: vec![TraceVal::I(0)],
            },
        ];
        let branches = branches_in_trace(&m, &trace);
        assert_eq!(branches.len(), 1, "apply branches are excluded");
        assert!(branches.contains(&(action, 2, 0)));

        let sites = BranchSites::new(&m);
        assert_eq!(sites.len(), 1, "apply sites are excluded");
        assert_eq!(sites.directions(), 2, "one conditional = two directions");
    }

    #[test]
    fn coverage_series_step_interpolates() {
        let s: CoverageSeries = [(10, 1), (20, 3), (40, 7)].into_iter().collect();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.value_at(0), 0);
        assert_eq!(s.value_at(10), 1);
        assert_eq!(s.value_at(19), 1);
        assert_eq!(s.value_at(20), 3);
        assert_eq!(s.value_at(1_000), 7);
        assert_eq!(s.final_branches(), 7);
        let other: CoverageSeries = [(5, 2)].into_iter().collect();
        assert_eq!(CoverageSeries::cumulative_at(&[s, other], 20), 5);
        assert_eq!(CoverageSeries::new().value_at(99), 0);
        assert_eq!(CoverageSeries::new().final_branches(), 0);
    }
}
