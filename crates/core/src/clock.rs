//! The virtual clock: a deterministic stand-in for wall-clock time.
//!
//! The paper's experiments run each fuzzer for 5 wall-clock minutes with a
//! 3,000 ms SMT cap (§4). Wall clocks make experiments machine-dependent and
//! slow; instead every cost source (executed instructions, solver work)
//! charges a calibrated number of virtual microseconds. Figure 3's shape —
//! WASAI pays for solving up front and overtakes the random fuzzer within
//! seconds — falls out of the same cost model both fuzzers are charged under.

/// Virtual-time cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Virtual nanoseconds per executed (instrumented) Wasm instruction.
    pub step_ns: u64,
    /// Fixed virtual microseconds per SMT query (encode + solve overhead).
    pub smt_query_us: u64,
    /// Virtual nanoseconds per SAT unit propagation.
    pub smt_prop_ns: u64,
    /// Fixed virtual microseconds per transaction (signing, scheduling).
    pub tx_overhead_us: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            step_ns: 2_000,
            smt_query_us: 20_000,
            smt_prop_ns: 2_000,
            tx_overhead_us: 2_000,
        }
    }
}

/// A monotone virtual clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualClock {
    micros: u64,
}

impl VirtualClock {
    /// A clock at zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Elapsed virtual microseconds.
    pub fn micros(&self) -> u64 {
        self.micros
    }

    /// Elapsed virtual seconds (fractional).
    pub fn seconds(&self) -> f64 {
        self.micros as f64 / 1e6
    }

    /// Charge transaction execution: fuel steps consumed + fixed overhead.
    pub fn charge_execution(&mut self, model: &CostModel, steps: u64) {
        self.micros += model.tx_overhead_us + steps * model.step_ns / 1_000;
    }

    /// Charge one SMT query.
    pub fn charge_smt(&mut self, model: &CostModel, propagations: u64) {
        self.micros += model.smt_query_us + propagations * model.smt_prop_ns / 1_000;
    }

    /// True once `timeout_us` virtual microseconds have elapsed.
    pub fn timed_out(&self, timeout_us: u64) -> bool {
        self.micros >= timeout_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let model = CostModel::default();
        let mut c = VirtualClock::new();
        c.charge_execution(&model, 10_000); // 2ms tx + 20ms steps
        assert_eq!(c.micros(), 2_000 + 20_000);
        c.charge_smt(&model, 1_000); // 20ms + 2ms
        assert_eq!(c.micros(), 22_000 + 22_000);
        assert!(!c.timed_out(1_000_000));
        assert!(c.timed_out(44_000));
    }

    #[test]
    fn smt_is_much_more_expensive_than_execution() {
        // The premise behind Figure 3's early crossover.
        let model = CostModel::default();
        let mut exec_only = VirtualClock::new();
        exec_only.charge_execution(&model, 10_000);
        let mut with_smt = VirtualClock::new();
        with_smt.charge_execution(&model, 10_000);
        with_smt.charge_smt(&model, 0);
        assert!(with_smt.micros() > exec_only.micros() * 15 / 10);
    }
}
