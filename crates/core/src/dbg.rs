//! The database dependency graph (DBG, §3.3.2).
//!
//! "We use DBG to record the database accesses, representing the transaction
//! dependency implicitly": if executing action φ₁ *reads* table `tb`, Engine
//! prefixes the next test of φ₁ with an action φ₂ known to *write* `tb`, so
//! the read finds data and execution reaches deeper code.

use std::collections::{HashMap, HashSet};

use wasai_chain::database::{DbAccess, TableId};
use wasai_chain::name::Name;

/// Read/write sets per action.
#[derive(Debug, Default)]
pub struct DependencyGraph {
    reads: HashMap<Name, HashSet<TableId>>,
    writes: HashMap<Name, HashSet<TableId>>,
}

impl DependencyGraph {
    /// An empty graph.
    pub fn new() -> Self {
        DependencyGraph::default()
    }

    /// Record one observed access of `action`.
    pub fn record(&mut self, action: Name, access: DbAccess, table: TableId) {
        let map = match access {
            DbAccess::Read => &mut self.reads,
            DbAccess::Write => &mut self.writes,
        };
        map.entry(action).or_default().insert(table);
    }

    /// Tables `action` has been seen reading.
    pub fn reads_of(&self, action: Name) -> impl Iterator<Item = &TableId> {
        self.reads.get(&action).into_iter().flatten()
    }

    /// An action (≠ `reader`) known to write any table `reader` reads — the
    /// dependency-fulfilling prefix action of §3.3.2.
    pub fn writer_for_reads_of(&self, reader: Name) -> Option<Name> {
        let tables = self.reads.get(&reader)?;
        for (writer, wset) in &self.writes {
            if *writer != reader && tables.iter().any(|t| wset.contains(t)) {
                return Some(*writer);
            }
        }
        None
    }

    /// Number of actions with recorded accesses.
    pub fn num_actions(&self) -> usize {
        let mut set: HashSet<Name> = self.reads.keys().copied().collect();
        set.extend(self.writes.keys().copied());
        set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: &str) -> TableId {
        TableId {
            code: Name::new("tgt"),
            scope: Name::new("tgt"),
            table: Name::new(n),
        }
    }

    #[test]
    fn finds_the_writer_for_a_reader() {
        let mut g = DependencyGraph::new();
        g.record(Name::new("reveal"), DbAccess::Read, table("bets"));
        g.record(Name::new("play"), DbAccess::Write, table("bets"));
        assert_eq!(
            g.writer_for_reads_of(Name::new("reveal")),
            Some(Name::new("play"))
        );
    }

    #[test]
    fn self_writes_do_not_count_as_dependencies() {
        let mut g = DependencyGraph::new();
        g.record(Name::new("play"), DbAccess::Read, table("bets"));
        g.record(Name::new("play"), DbAccess::Write, table("bets"));
        assert_eq!(g.writer_for_reads_of(Name::new("play")), None);
    }

    #[test]
    fn unrelated_tables_do_not_match() {
        let mut g = DependencyGraph::new();
        g.record(Name::new("reveal"), DbAccess::Read, table("bets"));
        g.record(Name::new("init"), DbAccess::Write, table("config"));
        assert_eq!(g.writer_for_reads_of(Name::new("reveal")), None);
        assert_eq!(g.num_actions(), 2);
    }
}
