//! Custom-oracle extension interface (§5).
//!
//! "The bug detectors can be extended in two steps: (1) adding oracles and
//! constructing the payload templates … (2) analyzing traces to confirm the
//! exploit events." A [`CustomOracle`] observes every executed payload of a
//! campaign (the §3.5 payload templates are already in place and carry
//! mutated arguments) and renders an extra verdict at the end; findings land
//! in [`crate::report::FuzzReport::custom_findings`].

use wasai_chain::action::ApiEvent;
use wasai_chain::name::Name;
use wasai_chain::Receipt;
use wasai_wasm::Module;

use crate::scanner::PayloadKind;

/// A user-supplied vulnerability detector.
pub trait CustomOracle: std::fmt::Debug + Send {
    /// Short identifier shown in reports.
    fn name(&self) -> &str;

    /// Step 2 of §5: analyze one execution's traces/events for exploit
    /// evidence. Called for every payload and fuzz iteration, in order.
    fn observe(&mut self, module: &Module, kind: PayloadKind, receipt: &Receipt);

    /// Final verdict after the campaign: `Some(description)` flags the
    /// contract.
    fn verdict(&self) -> Option<String>;
}

/// A ready-made oracle: flag any call of a given library API by the target
/// contract (the shape of the BlockinfoDep detector, §2.3.4, generalized —
/// e.g. flag `current_time` as an alternative weak-randomness source).
#[derive(Debug)]
pub struct ApiUsageOracle {
    api: String,
    contract: Name,
    seen: bool,
}

impl ApiUsageOracle {
    /// Flag uses of `api` by `contract`.
    pub fn new(api: impl Into<String>, contract: Name) -> Self {
        ApiUsageOracle {
            api: api.into(),
            contract,
            seen: false,
        }
    }
}

impl CustomOracle for ApiUsageOracle {
    fn name(&self) -> &str {
        &self.api
    }

    fn observe(&mut self, _module: &Module, _kind: PayloadKind, receipt: &Receipt) {
        for ev in &receipt.api_events {
            let hit = match ev {
                ApiEvent::TaposRead { contract } => {
                    *contract == self.contract
                        && (self.api == "tapos_block_num" || self.api == "tapos_block_prefix")
                }
                ApiEvent::SendDeferred { contract, .. } => {
                    *contract == self.contract && self.api == "send_deferred"
                }
                ApiEvent::SendInline { contract, .. } => {
                    *contract == self.contract && self.api == "send_inline"
                }
                ApiEvent::RequireRecipient { contract, .. } => {
                    *contract == self.contract && self.api == "require_recipient"
                }
                ApiEvent::Db(op) => op.contract == self.contract && self.api == "db",
                _ => false,
            };
            if hit {
                self.seen = true;
            }
        }
    }

    fn verdict(&self) -> Option<String> {
        self.seen.then(|| format!("target invoked {}", self.api))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasai_chain::database::{DbAccess, DbOp, TableId};

    fn receipt_with(ev: ApiEvent) -> Receipt {
        Receipt {
            api_events: vec![ev],
            ..Receipt::default()
        }
    }

    #[test]
    fn api_usage_oracle_flags_matching_events() {
        let target = Name::new("fuzz.target");
        let mut o = ApiUsageOracle::new("send_deferred", target);
        assert_eq!(o.verdict(), None);
        o.observe(
            &Module::new(),
            PayloadKind::Action,
            &receipt_with(ApiEvent::SendDeferred {
                contract: target,
                target: Name::new("eosio.token"),
                action: Name::new("transfer"),
            }),
        );
        assert!(o.verdict().is_some());
    }

    #[test]
    fn api_usage_oracle_ignores_other_contracts() {
        let mut o = ApiUsageOracle::new("db", Name::new("fuzz.target"));
        o.observe(
            &Module::new(),
            PayloadKind::Action,
            &receipt_with(ApiEvent::Db(DbOp {
                contract: Name::new("somebody.else"),
                access: DbAccess::Write,
                table: TableId {
                    code: Name::new("somebody.else"),
                    scope: Name::new("s"),
                    table: Name::new("t"),
                },
            })),
        );
        assert_eq!(o.verdict(), None);
    }
}
