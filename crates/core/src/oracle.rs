//! Custom-oracle extension interface (§5).
//!
//! "The bug detectors can be extended in two steps: (1) adding oracles and
//! constructing the payload templates … (2) analyzing traces to confirm the
//! exploit events." A [`CustomOracle`] observes every executed payload of a
//! campaign (the §3.5 payload templates are already in place and carry
//! mutated arguments) and renders an extra verdict at the end; findings land
//! in [`crate::report::FuzzReport::custom_findings`].

use wasai_chain::action::ApiEvent;
use wasai_chain::name::Name;
use wasai_chain::Receipt;
use wasai_wasm::Module;

use crate::scanner::PayloadKind;

/// A user-supplied vulnerability detector.
pub trait CustomOracle: std::fmt::Debug + Send {
    /// Short identifier shown in reports.
    fn name(&self) -> &str;

    /// Step 2 of §5: analyze one execution's traces/events for exploit
    /// evidence. Called for every payload and fuzz iteration, in order.
    fn observe(&mut self, module: &Module, kind: PayloadKind, receipt: &Receipt);

    /// Final verdict after the campaign: `Some(description)` flags the
    /// contract.
    fn verdict(&self) -> Option<String>;
}

/// A ready-made oracle: flag any call of a given library API by the target
/// contract (the shape of the BlockinfoDep detector, §2.3.4, generalized —
/// e.g. flag `current_time` as an alternative weak-randomness source).
#[derive(Debug)]
pub struct ApiUsageOracle {
    api: String,
    contract: Name,
    seen: bool,
}

impl ApiUsageOracle {
    /// Flag uses of `api` by `contract`.
    pub fn new(api: impl Into<String>, contract: Name) -> Self {
        ApiUsageOracle {
            api: api.into(),
            contract,
            seen: false,
        }
    }
}

impl CustomOracle for ApiUsageOracle {
    fn name(&self) -> &str {
        &self.api
    }

    fn observe(&mut self, _module: &Module, _kind: PayloadKind, receipt: &Receipt) {
        for ev in &receipt.api_events {
            let hit = match ev {
                ApiEvent::TaposRead { contract } => {
                    *contract == self.contract
                        && (self.api == "tapos_block_num" || self.api == "tapos_block_prefix")
                }
                ApiEvent::SendDeferred { contract, .. } => {
                    *contract == self.contract && self.api == "send_deferred"
                }
                ApiEvent::SendInline { contract, .. } => {
                    *contract == self.contract && self.api == "send_inline"
                }
                ApiEvent::RequireRecipient { contract, .. } => {
                    *contract == self.contract && self.api == "require_recipient"
                }
                ApiEvent::Db(op) => op.contract == self.contract && self.api == "db",
                _ => false,
            };
            if hit {
                self.seen = true;
            }
        }
    }

    fn verdict(&self) -> Option<String> {
        self.seen.then(|| format!("target invoked {}", self.api))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasai_chain::database::{DbAccess, DbOp, TableId};

    fn receipt_with(ev: ApiEvent) -> Receipt {
        Receipt {
            api_events: vec![ev],
            ..Receipt::default()
        }
    }

    #[test]
    fn api_usage_oracle_flags_matching_events() {
        let target = Name::new("fuzz.target");
        let mut o = ApiUsageOracle::new("send_deferred", target);
        assert_eq!(o.verdict(), None);
        o.observe(
            &Module::new(),
            PayloadKind::Action,
            &receipt_with(ApiEvent::SendDeferred {
                contract: target,
                target: Name::new("eosio.token"),
                action: Name::new("transfer"),
            }),
        );
        assert!(o.verdict().is_some());
    }

    #[test]
    fn api_usage_oracle_ignores_other_contracts() {
        let mut o = ApiUsageOracle::new("db", Name::new("fuzz.target"));
        o.observe(
            &Module::new(),
            PayloadKind::Action,
            &receipt_with(ApiEvent::Db(DbOp {
                contract: Name::new("somebody.else"),
                access: DbAccess::Write,
                table: TableId {
                    code: Name::new("somebody.else"),
                    scope: Name::new("s"),
                    table: Name::new("t"),
                },
            })),
        );
        assert_eq!(o.verdict(), None);
    }

    /// Edge-case coverage for the five §3.5 verdicts: each class flagged
    /// from a minimal hand-built trace, plus the all-clean negative case —
    /// and, for every scenario, the emitted `OracleVerdict` telemetry must
    /// say exactly what the verdict set says.
    mod verdict_telemetry {
        use std::collections::BTreeSet;

        use wasai_chain::database::{DbAccess, DbOp, TableId};
        use wasai_chain::name::Name;
        use wasai_chain::Receipt;
        use wasai_vm::{TraceKind, TraceRecord};
        use wasai_wasm::builder::ModuleBuilder;
        use wasai_wasm::instr::Instr;
        use wasai_wasm::types::ValType::I64;
        use wasai_wasm::Module;

        use crate::harness::accounts;
        use crate::report::VulnClass;
        use crate::scanner::{PayloadKind, Scanner};
        use crate::telemetry::{self, TelemetryEvent};

        /// A module with an exported `apply` plus one eosponser-shaped
        /// function (mirrors the scanner's own test fixture).
        fn module_and_eosponser() -> (Module, u32) {
            let mut b = ModuleBuilder::new();
            let eosponser = b.func(
                &[I64, I64, I64],
                &[],
                &[],
                vec![
                    Instr::LocalGet(2),
                    Instr::LocalGet(0),
                    Instr::I64Ne,
                    Instr::Drop,
                    Instr::End,
                ],
            );
            let apply = b.func(&[I64, I64, I64], &[], &[], vec![Instr::End]);
            b.export_func("apply", apply);
            (b.build(), eosponser)
        }

        fn begin(func: u32) -> TraceRecord {
            TraceRecord {
                kind: TraceKind::FuncBegin { func },
                operands: vec![],
            }
        }

        /// The invariant under test: the verdict telemetry a campaign emits
        /// is exactly the report's findings, one event per class in paper
        /// order, plus one flagged event per custom finding.
        fn assert_telemetry_matches(findings: &BTreeSet<VulnClass>, custom: &[(String, String)]) {
            let events = telemetry::oracle_verdicts(findings, custom, 7);
            assert_eq!(events.len(), VulnClass::ALL.len() + custom.len());
            for (class, ev) in VulnClass::ALL.iter().zip(&events) {
                match ev {
                    TelemetryEvent::OracleVerdict {
                        oracle,
                        flagged,
                        vtime,
                    } => {
                        assert_eq!(oracle, &class.to_string());
                        assert_eq!(
                            *flagged,
                            findings.contains(class),
                            "telemetry for {class} disagrees with the report"
                        );
                        assert_eq!(*vtime, 7);
                    }
                    other => panic!("expected OracleVerdict, got {other:?}"),
                }
            }
            for ((name, _), ev) in custom.iter().zip(&events[VulnClass::ALL.len()..]) {
                match ev {
                    TelemetryEvent::OracleVerdict {
                        oracle, flagged, ..
                    } => {
                        assert_eq!(oracle, name);
                        assert!(*flagged, "custom findings are always flagged");
                    }
                    other => panic!("expected OracleVerdict, got {other:?}"),
                }
            }
        }

        #[test]
        fn fake_eos_verdict() {
            let (module, eosponser) = module_and_eosponser();
            let mut s = Scanner::new();
            s.set_eosponser(eosponser);
            let receipt = Receipt {
                trace: vec![begin(eosponser)],
                ..Receipt::default()
            };
            s.observe(&module, PayloadKind::DirectFake, &receipt, None);
            let (findings, _) = s.verdicts();
            assert_eq!(findings, BTreeSet::from([VulnClass::FakeEos]));
            assert_telemetry_matches(&findings, &[]);
        }

        #[test]
        fn fake_notif_verdict() {
            let (module, eosponser) = module_and_eosponser();
            let mut s = Scanner::new();
            s.set_eosponser(eosponser);
            let receipt = Receipt {
                trace: vec![begin(eosponser)],
                ..Receipt::default()
            };
            s.observe(
                &module,
                PayloadKind::ForwardedNotif,
                &receipt,
                Some(accounts::fake_notif().raw()),
            );
            let (findings, _) = s.verdicts();
            assert_eq!(findings, BTreeSet::from([VulnClass::FakeNotif]));
            assert_telemetry_matches(&findings, &[]);
        }

        #[test]
        fn missauth_verdict() {
            let (module, _) = module_and_eosponser();
            let target = accounts::target();
            let mut s = Scanner::new();
            let receipt = Receipt {
                api_events: vec![wasai_chain::action::ApiEvent::Db(DbOp {
                    contract: target,
                    access: DbAccess::Write,
                    table: TableId {
                        code: target,
                        scope: target,
                        table: Name::new("t"),
                    },
                })],
                ..Receipt::default()
            };
            s.observe(&module, PayloadKind::Action, &receipt, None);
            let (findings, _) = s.verdicts();
            assert_eq!(findings, BTreeSet::from([VulnClass::MissAuth]));
            assert_telemetry_matches(&findings, &[]);
        }

        #[test]
        fn blockinfo_dep_verdict() {
            let (module, _) = module_and_eosponser();
            let mut s = Scanner::new();
            let receipt = Receipt {
                api_events: vec![wasai_chain::action::ApiEvent::TaposRead {
                    contract: accounts::target(),
                }],
                ..Receipt::default()
            };
            s.observe(&module, PayloadKind::Action, &receipt, None);
            let (findings, _) = s.verdicts();
            assert_eq!(findings, BTreeSet::from([VulnClass::BlockinfoDep]));
            assert_telemetry_matches(&findings, &[]);
        }

        #[test]
        fn rollback_verdict() {
            let (module, _) = module_and_eosponser();
            let target = accounts::target();
            let mut s = Scanner::new();
            // A prior auth isolates Rollback from the MissAuth detector.
            let receipt = Receipt {
                api_events: vec![
                    wasai_chain::action::ApiEvent::RequireAuth {
                        contract: target,
                        actor: Name::new("attacker"),
                    },
                    wasai_chain::action::ApiEvent::SendInline {
                        contract: target,
                        target: Name::new("eosio.token"),
                        action: Name::new("transfer"),
                    },
                ],
                ..Receipt::default()
            };
            s.observe(&module, PayloadKind::Action, &receipt, None);
            let (findings, _) = s.verdicts();
            assert_eq!(findings, BTreeSet::from([VulnClass::Rollback]));
            assert_telemetry_matches(&findings, &[]);
        }

        #[test]
        fn negative_case_emits_five_clean_verdicts() {
            let (module, eosponser) = module_and_eosponser();
            let mut s = Scanner::new();
            s.set_eosponser(eosponser);
            s.observe(&module, PayloadKind::Official, &Receipt::default(), None);
            let (findings, _) = s.verdicts();
            assert!(findings.is_empty());
            assert_telemetry_matches(&findings, &[]);
        }

        #[test]
        fn custom_oracle_verdict_rides_along() {
            let findings = BTreeSet::from([VulnClass::Rollback]);
            let custom = vec![(
                "send_deferred".to_string(),
                "target invoked send_deferred".to_string(),
            )];
            assert_telemetry_matches(&findings, &custom);
        }
    }

    /// End-to-end positive/negative pairs for the two CosmWasm oracle
    /// classes, run through the full [`crate::Wasai`] façade with substrate
    /// auto-detection: each vulnerable fixture must flag, and its corrected
    /// twin — same shape, one guard added — must NOT fire the oracle.
    mod cw_oracles {
        use wasai_chain::abi::Abi;
        use wasai_wasm::builder::ModuleBuilder;
        use wasai_wasm::instr::Instr;
        use wasai_wasm::types::{BlockType, ValType::*};
        use wasai_wasm::Module;

        use crate::config::FuzzConfig;
        use crate::cw::cw_accounts;
        use crate::report::{FuzzReport, VulnClass};
        use crate::wasai::Wasai;

        fn run(module: Module) -> FuzzReport {
            Wasai::new(module, Abi::default())
                .with_config(FuzzConfig::quick())
                .run()
                .expect("fixture deploys")
        }

        /// `instantiate` writes the owner key. With `guard`, a second
        /// instantiate aborts instead of overwriting.
        fn instantiate_contract(guard: bool) -> Module {
            let mut b = ModuleBuilder::new();
            let write = b.import_func("env", "storage_write", &[I64, I64], &[]);
            let has = b.import_func("env", "storage_has", &[I64], &[I32]);
            let abort = b.import_func("env", "cw_abort", &[I64], &[]);
            let mut body = vec![];
            if guard {
                body.extend([
                    Instr::I64Const(0),
                    Instr::Call(has),
                    Instr::If(BlockType::Empty),
                    Instr::I64Const(1),
                    Instr::Call(abort),
                    Instr::End,
                ]);
            }
            body.extend([
                Instr::I64Const(0),
                Instr::LocalGet(0),
                Instr::Call(write),
                Instr::End,
            ]);
            let inst = b.func(&[I64, I64, I64], &[], &[], body);
            b.export_func("instantiate", inst);
            b.build()
        }

        /// `execute(1)` queues an over-funded submessage (the unfunded
        /// contract cannot cover it, so the reply sees failure); `reply`
        /// credits a ledger key. With `guard`, the reply returns early
        /// unless the submessage succeeded.
        fn reply_contract(guard: bool) -> Module {
            let mut b = ModuleBuilder::new();
            let write = b.import_func("env", "storage_write", &[I64, I64], &[]);
            let submsg = b.import_func("env", "submsg", &[I64, I64, I64, I64], &[]);
            let exec = b.func(
                &[I64, I64, I64],
                &[],
                &[],
                vec![
                    Instr::LocalGet(1),
                    Instr::I64Const(1),
                    Instr::I64Eq,
                    Instr::If(BlockType::Empty),
                    Instr::I64Const(cw_accounts::payee().as_i64()),
                    Instr::I64Const(0),
                    Instr::I64Const(100),
                    Instr::I64Const(7),
                    Instr::Call(submsg),
                    Instr::End,
                    Instr::End,
                ],
            );
            let mut reply_body = vec![];
            if guard {
                reply_body.extend([
                    Instr::LocalGet(1),
                    Instr::I32Eqz,
                    Instr::If(BlockType::Empty),
                    Instr::Return,
                    Instr::End,
                ]);
            }
            reply_body.extend([
                Instr::I64Const(5),
                Instr::I64Const(1),
                Instr::Call(write),
                Instr::End,
            ]);
            let reply = b.func(&[I64, I32], &[], &[], reply_body);
            b.export_func("execute", exec);
            b.export_func("reply", reply);
            b.build()
        }

        #[test]
        fn open_instantiate_flags_unauth_instantiate() {
            let report = run(instantiate_contract(false));
            assert!(report.has(VulnClass::UnauthInstantiate));
            assert!(
                report
                    .exploits
                    .iter()
                    .any(|e| e.class == VulnClass::UnauthInstantiate),
                "finding carries an exploit record"
            );
        }

        #[test]
        fn guarded_instantiate_does_not_flag() {
            let report = run(instantiate_contract(true));
            assert!(
                !report.has(VulnClass::UnauthInstantiate),
                "a correct re-instantiate guard must not fire the oracle"
            );
            assert!(report.findings.is_empty());
        }

        #[test]
        fn blind_reply_flags_unchecked_reply() {
            let report = run(reply_contract(false));
            assert!(report.has(VulnClass::UncheckedReply));
        }

        #[test]
        fn guarded_reply_does_not_flag() {
            let report = run(reply_contract(true));
            assert!(
                !report.has(VulnClass::UncheckedReply),
                "a success-checked reply must not fire the oracle"
            );
            assert!(report.findings.is_empty());
        }

        #[test]
        fn cw_reports_never_raise_eosio_classes() {
            for module in [instantiate_contract(false), reply_contract(false)] {
                let report = run(module);
                for class in VulnClass::ALL {
                    assert!(
                        !report.has(class),
                        "CosmWasm campaign raised EOSIO-only class {class}"
                    );
                }
            }
        }
    }
}
