//! The vulnerability Scanner (§3.5): analyzes execution receipts and traces
//! for exploit events and emits the final verdicts.

use std::collections::BTreeSet;

use wasai_chain::action::ApiEvent;
use wasai_chain::database::DbAccess;
use wasai_chain::Receipt;
use wasai_vm::TraceKind;
use wasai_wasm::Module;

use crate::harness::accounts;
use crate::report::{ExploitRecord, VulnClass};

/// Which oracle payload produced an observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadKind {
    /// Legitimate `transfer@eosio.token` to the target.
    Official,
    /// Direct invocation of the eosponser (Fake EOS path 1).
    DirectFake,
    /// Counterfeit-token transfer (Fake EOS path 2).
    FakeToken,
    /// Forwarded notification through the agent (Fake Notif).
    ForwardedNotif,
    /// Ordinary fuzzing of a non-transfer action.
    Action,
}

impl PayloadKind {
    /// The stable machine-readable name (the spelling telemetry traces use).
    pub fn name(self) -> &'static str {
        match self {
            PayloadKind::Official => "official",
            PayloadKind::DirectFake => "direct-fake",
            PayloadKind::FakeToken => "fake-token",
            PayloadKind::ForwardedNotif => "forwarded-notif",
            PayloadKind::Action => "action",
        }
    }
}

/// Accumulates exploit evidence across the whole campaign.
#[derive(Debug, Default)]
pub struct Scanner {
    /// id_e — the eosponser's function id, located from a valid EOS
    /// transaction trace (§3.5).
    pub eosponser: Option<u32>,
    fake_eos_hit: bool,
    forwarded_hit: bool,
    payee_guard_seen: bool,
    missauth: bool,
    blockinfo: bool,
    rollback: bool,
    exploits: Vec<ExploitRecord>,
}

impl Scanner {
    /// A fresh scanner for a target.
    pub fn new() -> Self {
        Scanner::default()
    }

    /// Record the located eosponser id.
    pub fn set_eosponser(&mut self, id: u32) {
        self.eosponser = Some(id);
    }

    /// Whether the eosponser's `function_begin` appears in the trace
    /// (`vul := id_e ∈ i⃗d`).
    fn eosponser_ran(&self, receipt: &Receipt) -> bool {
        match self.eosponser {
            None => false,
            Some(id) => receipt
                .trace
                .iter()
                .any(|r| r.kind == TraceKind::FuncBegin { func: id }),
        }
    }

    /// Scan a trace for the Fake Notif guard code: an `i64.eq`/`i64.ne`
    /// whose operands are the payee (`to`) and `_self` (§3.5).
    fn payee_guard_in(module: &Module, receipt: &Receipt, to_value: u64, self_value: u64) -> bool {
        // A compare of equal values is indistinguishable from incidental
        // equality (e.g. the dispatcher's `code == receiver` when the
        // attacker sets `to = _self`); only unequal pairs are evidence.
        if to_value == self_value {
            return false;
        }
        let apply_idx = module.exported_func("apply");
        receipt.trace.iter().any(|r| {
            let TraceKind::Site { func, pc } = r.kind else {
                return false;
            };
            if Some(func) == apply_idx {
                return false; // dispatcher compares are not payee guards
            }
            let Some(f) = module.local_func(func) else {
                return false;
            };
            let Some(instr) = f.body.get(pc as usize) else {
                return false;
            };
            if !instr.is_i64_guard_compare() || r.operands.len() != 2 {
                return false;
            }
            let a = r.operands[0].bits();
            let b = r.operands[1].bits();
            (a == to_value && b == self_value) || (a == self_value && b == to_value)
        })
    }

    /// Ingest one executed payload/fuzz receipt.
    ///
    /// `to_value` is the transfer's payee for transfer-shaped payloads (used
    /// for guard detection).
    pub fn observe(
        &mut self,
        module: &Module,
        kind: PayloadKind,
        receipt: &Receipt,
        to_value: Option<u64>,
    ) {
        let self_value = accounts::target().raw();
        // Guard evidence accumulates from every trace (§4.2: the guard may
        // sit behind deep paths, so every explored path counts).
        if let Some(to) = to_value {
            if Self::payee_guard_in(module, receipt, to, self_value) {
                self.payee_guard_seen = true;
            }
        }
        match kind {
            PayloadKind::DirectFake | PayloadKind::FakeToken => {
                if self.eosponser_ran(receipt) && !self.fake_eos_hit {
                    self.fake_eos_hit = true;
                    self.exploits.push(ExploitRecord {
                        class: VulnClass::FakeEos,
                        payload: match kind {
                            PayloadKind::DirectFake => {
                                "direct transfer action on the victim (code ≠ eosio.token)"
                                    .to_string()
                            }
                            _ => "transfer of counterfeit EOS issued by fake.token".to_string(),
                        },
                    });
                }
            }
            PayloadKind::ForwardedNotif => {
                if self.eosponser_ran(receipt) {
                    self.forwarded_hit = true;
                }
            }
            PayloadKind::Official | PayloadKind::Action => {}
        }
        self.scan_api_events(kind, receipt);
    }

    fn scan_api_events(&mut self, kind: PayloadKind, receipt: &Receipt) {
        let target = accounts::target();
        let mut authed = false;
        for ev in &receipt.api_events {
            match ev {
                ApiEvent::RequireAuth { contract, .. } if *contract == target => authed = true,
                ApiEvent::HasAuth {
                    contract,
                    granted: true,
                    ..
                } if *contract == target => {
                    authed = true;
                }
                ApiEvent::TaposRead { contract } if *contract == target && !self.blockinfo => {
                    self.blockinfo = true;
                    self.exploits.push(ExploitRecord {
                        class: VulnClass::BlockinfoDep,
                        payload: "tapos_block_num/prefix used as randomness source".into(),
                    });
                }
                ApiEvent::SendInline {
                    contract,
                    target: t,
                    action,
                } if *contract == target => {
                    if !self.rollback {
                        self.rollback = true;
                        self.exploits.push(ExploitRecord {
                            class: VulnClass::Rollback,
                            payload: format!(
                                "inline action {action}@{t} is revertable by the caller"
                            ),
                        });
                    }
                    if kind == PayloadKind::Action && !authed {
                        self.flag_missauth("send_inline without a prior permission check");
                    }
                }
                ApiEvent::Db(op)
                    if op.contract == target
                        && op.access == DbAccess::Write
                        && kind == PayloadKind::Action
                        && !authed =>
                {
                    self.flag_missauth("database write without a prior permission check");
                }
                _ => {}
            }
        }
    }

    fn flag_missauth(&mut self, what: &str) {
        if !self.missauth {
            self.missauth = true;
            self.exploits.push(ExploitRecord {
                class: VulnClass::MissAuth,
                payload: format!("attacker-signed action performed a side effect: {what}"),
            });
        }
    }

    /// Final verdicts (`vul(τ⃗)` of §3.5).
    pub fn verdicts(&mut self) -> (BTreeSet<VulnClass>, Vec<ExploitRecord>) {
        let mut out = BTreeSet::new();
        if self.fake_eos_hit {
            out.insert(VulnClass::FakeEos);
        }
        // Fake Notif: the eosponser ran on a forwarded notification AND no
        // guard comparing the payee with _self was ever executed (§3.5).
        if self.forwarded_hit && !self.payee_guard_seen {
            out.insert(VulnClass::FakeNotif);
            self.exploits.push(ExploitRecord {
                class: VulnClass::FakeNotif,
                payload: "notification forwarded by fake.notif executed the eosponser".into(),
            });
        }
        if self.missauth {
            out.insert(VulnClass::MissAuth);
        }
        if self.blockinfo {
            out.insert(VulnClass::BlockinfoDep);
        }
        if self.rollback {
            out.insert(VulnClass::Rollback);
        }
        (out, self.exploits.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasai_chain::name::Name;
    use wasai_vm::{TraceRecord, TraceVal};
    use wasai_wasm::builder::ModuleBuilder;
    use wasai_wasm::instr::Instr;
    use wasai_wasm::types::ValType::*;

    /// A module with `apply` (exported) and one extra function containing an
    /// `i64.ne` at pc 2 (a payee-guard shape).
    fn module_with_guard() -> (Module, u32) {
        let mut b = ModuleBuilder::new();
        let eosponser = b.func(
            &[I64, I64, I64],
            &[],
            &[],
            vec![
                Instr::LocalGet(2),
                Instr::LocalGet(0),
                Instr::I64Ne,
                Instr::Drop,
                Instr::End,
            ],
        );
        let apply = b.func(&[I64, I64, I64], &[], &[], vec![Instr::End]);
        b.export_func("apply", apply);
        (b.build(), eosponser)
    }

    fn begin(func: u32) -> TraceRecord {
        TraceRecord {
            kind: TraceKind::FuncBegin { func },
            operands: vec![],
        }
    }

    fn guard_site(func: u32, a: u64, b: u64) -> TraceRecord {
        TraceRecord {
            kind: TraceKind::Site { func, pc: 2 },
            operands: vec![TraceVal::I(a as i64), TraceVal::I(b as i64)],
        }
    }

    #[test]
    fn fake_eos_requires_eosponser_entry() {
        let (module, eosponser) = module_with_guard();
        let mut s = Scanner::new();
        s.set_eosponser(eosponser);
        // Fake payload without the eosponser running: no flag.
        s.observe(&module, PayloadKind::DirectFake, &Receipt::default(), None);
        assert!(!s.verdicts().0.contains(&VulnClass::FakeEos));

        let mut s = Scanner::new();
        s.set_eosponser(eosponser);
        let receipt = Receipt {
            trace: vec![begin(eosponser)],
            ..Receipt::default()
        };
        s.observe(&module, PayloadKind::DirectFake, &receipt, None);
        assert!(s.verdicts().0.contains(&VulnClass::FakeEos));
    }

    #[test]
    fn fake_notif_cleared_by_observed_guard() {
        let (module, eosponser) = module_with_guard();
        let to = accounts::fake_notif().raw();
        let self_v = accounts::target().raw();

        // Forwarded notification runs the eosponser, no guard: vulnerable.
        let mut s = Scanner::new();
        s.set_eosponser(eosponser);
        let receipt = Receipt {
            trace: vec![begin(eosponser)],
            ..Receipt::default()
        };
        s.observe(&module, PayloadKind::ForwardedNotif, &receipt, Some(to));
        assert!(s.verdicts().0.contains(&VulnClass::FakeNotif));

        // Same, but the to-vs-self compare executed: safe.
        let mut s = Scanner::new();
        s.set_eosponser(eosponser);
        let receipt = Receipt {
            trace: vec![begin(eosponser), guard_site(eosponser, to, self_v)],
            ..Receipt::default()
        };
        s.observe(&module, PayloadKind::ForwardedNotif, &receipt, Some(to));
        assert!(!s.verdicts().0.contains(&VulnClass::FakeNotif));
    }

    #[test]
    fn guard_detection_ignores_unrelated_compares() {
        let (module, eosponser) = module_with_guard();
        let to = accounts::fake_notif().raw();
        let mut s = Scanner::new();
        s.set_eosponser(eosponser);
        let receipt = Receipt {
            trace: vec![begin(eosponser), guard_site(eosponser, 123, 456)],
            ..Receipt::default()
        };
        s.observe(&module, PayloadKind::ForwardedNotif, &receipt, Some(to));
        assert!(
            s.verdicts().0.contains(&VulnClass::FakeNotif),
            "a compare of unrelated values is not the guard"
        );
    }

    #[test]
    fn missauth_requires_effect_without_prior_auth() {
        use wasai_chain::database::{DbAccess, DbOp, TableId};
        let (module, _) = module_with_guard();
        let target = accounts::target();
        let table = TableId {
            code: target,
            scope: target,
            table: Name::new("t"),
        };
        let write = ApiEvent::Db(DbOp {
            contract: target,
            access: DbAccess::Write,
            table,
        });
        let auth = ApiEvent::RequireAuth {
            contract: target,
            actor: Name::new("attacker"),
        };

        // Auth precedes the write: safe.
        let mut s = Scanner::new();
        let receipt = Receipt {
            api_events: vec![auth.clone(), write.clone()],
            ..Receipt::default()
        };
        s.observe(&module, PayloadKind::Action, &receipt, None);
        assert!(!s.verdicts().0.contains(&VulnClass::MissAuth));

        // Write with no auth before it: vulnerable.
        let mut s = Scanner::new();
        let receipt = Receipt {
            api_events: vec![write, auth],
            ..Receipt::default()
        };
        s.observe(&module, PayloadKind::Action, &receipt, None);
        assert!(s.verdicts().0.contains(&VulnClass::MissAuth));
    }

    #[test]
    fn blockinfo_and_rollback_from_api_events() {
        let (module, _) = module_with_guard();
        let target = accounts::target();
        let mut s = Scanner::new();
        let receipt = Receipt {
            api_events: vec![
                ApiEvent::TaposRead { contract: target },
                ApiEvent::SendInline {
                    contract: target,
                    target: Name::new("eosio.token"),
                    action: Name::new("transfer"),
                },
            ],
            ..Receipt::default()
        };
        s.observe(&module, PayloadKind::Action, &receipt, None);
        let (v, exploits) = s.verdicts();
        assert!(v.contains(&VulnClass::BlockinfoDep));
        assert!(v.contains(&VulnClass::Rollback));
        assert_eq!(
            exploits.len(),
            2 + 1 /* MissAuth from unauthorized inline */
        );
    }

    #[test]
    fn other_contracts_events_are_ignored() {
        let (module, _) = module_with_guard();
        let mut s = Scanner::new();
        let receipt = Receipt {
            api_events: vec![ApiEvent::TaposRead {
                contract: Name::new("bystander"),
            }],
            ..Receipt::default()
        };
        s.observe(&module, PayloadKind::Action, &receipt, None);
        assert!(s.verdicts().0.is_empty());
    }
}
