//! The substrate boundary: one trait over everything a chain backend
//! hardcodes — entrypoint/ABI model, import table, action dispatch, state
//! access and authorization model.
//!
//! WASAI's engine pipeline (instrument → compile → execute → trace → scan)
//! is substrate-neutral; what differs between chains is how a contract is
//! entered and which host APIs it sees. [`Substrate`] packages that
//! difference: the EOSIO backend routes campaigns through the unchanged
//! [`crate::engine::Engine`] (its reports are byte-identical to the
//! pre-trait code path — CI proves it differentially), the CosmWasm backend
//! through [`crate::cw::run_campaign`]. A third backend implements this
//! trait and inherits the conformance battery
//! (`tests/substrate_conformance.rs`) for free.
//!
//! Determinism contract per backend:
//! - **EOSIO**: reports and telemetry traces are byte-identical at any
//!   `WASAI_JOBS`/`--procs` count and kill schedule, and with or without
//!   the solver cache or tape fast path.
//! - **CosmWasm**: the campaign is solver-free; reports depend only on
//!   `rng_seed` and the wall-clock deadline (`truncated` latches exactly
//!   like the EOSIO engine's).

use std::sync::Arc;

use wasai_chain::abi::Abi;
use wasai_chain::cosmwasm::{CwChain, CwConfig, CwEntry};
use wasai_chain::database::TableId;
use wasai_chain::name::Name;
use wasai_chain::{Action, Chain, ChainConfig, ChainError, Transaction};
use wasai_smt::SolverCache;
use wasai_wasm::builder::ModuleBuilder;
use wasai_wasm::instr::{Instr, MemArg};
use wasai_wasm::types::{BlockType, ValType::*};
use wasai_wasm::Module;

use crate::config::FuzzConfig;
use crate::cw;
use crate::engine::Engine;
use crate::harness::{accounts, PreparedTarget, TargetInfo};
use crate::oracle::CustomOracle;
use crate::report::{FuzzReport, VulnClass};
use crate::telemetry::TelemetrySink;

/// Which chain substrate a campaign targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubstrateKind {
    /// EOSIO-style: one `apply(receiver, code, action)` export, `env`
    /// library APIs, notification/inline/deferred action model.
    Eosio,
    /// CosmWasm-style: `instantiate`/`execute`/`query` exports, env/info as
    /// arguments, bank + submessage/reply model.
    Cosmwasm,
}

impl SubstrateKind {
    /// Stable CLI / config name.
    pub fn name(self) -> &'static str {
        match self {
            SubstrateKind::Eosio => "eosio",
            SubstrateKind::Cosmwasm => "cosmwasm",
        }
    }

    /// Parse a CLI / config name.
    pub fn parse(s: &str) -> Option<SubstrateKind> {
        match s {
            "eosio" => Some(SubstrateKind::Eosio),
            "cosmwasm" | "cw" => Some(SubstrateKind::Cosmwasm),
            _ => None,
        }
    }

    /// Infer the substrate from a module's entry exports. `apply` wins
    /// (EOSIO contracts are the default and the historical behavior);
    /// otherwise an `instantiate` or `execute` export marks CosmWasm.
    /// Modules exporting neither default to EOSIO, which reports the same
    /// missing-entrypoint failure it always has.
    pub fn detect(module: &Module) -> SubstrateKind {
        if module.exported_func("apply").is_some() {
            SubstrateKind::Eosio
        } else if module.exported_func("instantiate").is_some()
            || module.exported_func("execute").is_some()
        {
            SubstrateKind::Cosmwasm
        } else {
            SubstrateKind::Eosio
        }
    }
}

impl std::fmt::Display for SubstrateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Where a campaign's target comes from: a raw module prepared at run time,
/// or a shared pre-instrumented artifact (the fleet cache). Preparation is
/// substrate-neutral — both backends consume the same artifact.
#[derive(Debug)]
pub enum CampaignTarget {
    /// Instrument/compile on demand.
    Raw(Box<TargetInfo>),
    /// A shared prepared artifact.
    Prepared(Arc<PreparedTarget>),
}

impl CampaignTarget {
    /// Resolve to a prepared artifact.
    ///
    /// # Errors
    ///
    /// Fails if the module cannot be instrumented or deployed.
    pub fn prepare(self) -> Result<Arc<PreparedTarget>, ChainError> {
        match self {
            CampaignTarget::Raw(info) => PreparedTarget::prepare(*info),
            CampaignTarget::Prepared(p) => Ok(p),
        }
    }

    /// The original (uninstrumented) module, for substrate detection.
    pub fn module(&self) -> &Module {
        match self {
            CampaignTarget::Raw(info) => &info.original,
            CampaignTarget::Prepared(p) => &p.info.original,
        }
    }
}

/// Everything a backend needs to run one campaign — the [`crate::Wasai`]
/// builder's state, handed across the substrate boundary.
pub struct CampaignContext {
    /// The contract under test.
    pub target: CampaignTarget,
    /// Campaign configuration.
    pub cfg: FuzzConfig,
    /// Custom oracles (§5). EOSIO-receipt-bound; the CosmWasm backend
    /// ignores them.
    pub oracles: Vec<Box<dyn CustomOracle>>,
    /// Telemetry sink, if any.
    pub sink: Option<Box<dyn TelemetrySink>>,
    /// Fleet-shared solver cache. The CosmWasm campaign is solver-free and
    /// ignores it.
    pub solver_cache: Option<Arc<SolverCache>>,
}

/// One chain backend behind the host-API boundary.
pub trait Substrate: Sync {
    /// Which substrate this is.
    fn kind(&self) -> SubstrateKind;

    /// The entry exports this substrate dispatches through.
    fn entry_exports(&self) -> &'static [&'static str];

    /// The oracle classes this substrate's campaigns report against.
    fn oracle_classes(&self) -> &'static [VulnClass];

    /// Run one fuzzing campaign.
    ///
    /// # Errors
    ///
    /// Fails if the contract cannot be instrumented or deployed.
    fn run_campaign(&self, ctx: CampaignContext) -> Result<FuzzReport, ChainError>;

    /// A fresh conformance harness with the given per-dispatch fuel budget,
    /// wired to this substrate's self-test fixture contract. The shared
    /// battery (`tests/substrate_conformance.rs`) drives it.
    fn conformance(&self, fuel_budget: u64) -> Box<dyn ConformanceHarness>;
}

/// Look up the backend for a kind.
pub fn substrate(kind: SubstrateKind) -> &'static dyn Substrate {
    match kind {
        SubstrateKind::Eosio => &EosioSubstrate,
        SubstrateKind::Cosmwasm => &CosmwasmSubstrate,
    }
}

/// The operations every substrate must express for the conformance battery:
/// persistence, rollback-on-trap, fuel metering and a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConformanceOp {
    /// Do nothing; must succeed.
    Noop,
    /// Persist marker value 11 under probe key 1; must commit.
    Store,
    /// Persist marker value 22 under probe key 2, then trap; must roll back.
    StoreThenTrap,
    /// Loop until the fuel budget exhausts; must trap with
    /// `steps_used == budget` and leave state untouched.
    Spin,
}

/// The outcome of one conformance dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConformanceVerdict {
    /// Whether the dispatch committed.
    pub ok: bool,
    /// Fuel consumed (meaningful on failure too).
    pub steps_used: u64,
}

/// A deployed self-test fixture the battery dispatches ops against.
pub trait ConformanceHarness {
    /// Dispatch one op as the substrate's default (unprivileged) caller.
    fn dispatch(&mut self, op: ConformanceOp) -> ConformanceVerdict;

    /// The persisted value under a probe key, if any.
    fn probe(&self, key: i64) -> Option<i64>;
}

// ---------------------------------------------------------------------------
// EOSIO backend
// ---------------------------------------------------------------------------

/// The EOSIO backend: campaigns route through the unchanged engine.
pub struct EosioSubstrate;

impl Substrate for EosioSubstrate {
    fn kind(&self) -> SubstrateKind {
        SubstrateKind::Eosio
    }

    fn entry_exports(&self) -> &'static [&'static str] {
        &["apply"]
    }

    fn oracle_classes(&self) -> &'static [VulnClass] {
        &VulnClass::ALL
    }

    fn run_campaign(&self, ctx: CampaignContext) -> Result<FuzzReport, ChainError> {
        let prepared = ctx.target.prepare()?;
        let mut engine = Engine::from_prepared(prepared, ctx.cfg)?;
        for o in ctx.oracles {
            engine.add_oracle(o);
        }
        if let Some(sink) = ctx.sink {
            engine.set_sink(sink);
        }
        if let Some(cache) = ctx.solver_cache {
            engine.set_solver_cache(cache);
        }
        Ok(engine.run())
    }

    fn conformance(&self, fuel_budget: u64) -> Box<dyn ConformanceHarness> {
        Box::new(EosioConformance::new(fuel_budget))
    }
}

/// The EOSIO fixture: an `apply`-dispatching contract storing 8-byte rows
/// through `db_store_i64`.
fn eosio_fixture() -> Module {
    let me = accounts::target().as_i64();
    let probe = probe_table().as_i64();
    let mut b = ModuleBuilder::with_memory(1);
    let db_store = b.import_func(
        "env",
        "db_store_i64",
        &[I64, I64, I64, I64, I32, I32],
        &[I32],
    );
    // db_store_i64(scope, table, payer, id, ptr, len) with the marker value
    // staged at memory offset 0.
    let store_row = |value: i64, id: i64| {
        vec![
            Instr::I32Const(0),
            Instr::I64Const(value),
            Instr::I64Store(MemArg::default()),
            Instr::I64Const(me),
            Instr::I64Const(probe),
            Instr::I64Const(me),
            Instr::I64Const(id),
            Instr::I32Const(0),
            Instr::I32Const(8),
            Instr::Call(db_store),
            Instr::Drop,
        ]
    };
    let mut body = vec![
        Instr::LocalGet(2),
        Instr::I64Const(Name::new("store").as_i64()),
        Instr::I64Eq,
        Instr::If(BlockType::Empty),
    ];
    body.extend(store_row(11, 1));
    body.extend([
        Instr::End,
        Instr::LocalGet(2),
        Instr::I64Const(Name::new("storetrap").as_i64()),
        Instr::I64Eq,
        Instr::If(BlockType::Empty),
    ]);
    body.extend(store_row(22, 2));
    body.extend([
        Instr::Unreachable,
        Instr::End,
        Instr::LocalGet(2),
        Instr::I64Const(Name::new("spin").as_i64()),
        Instr::I64Eq,
        Instr::If(BlockType::Empty),
        Instr::Loop(BlockType::Empty),
        Instr::Br(0),
        Instr::End,
        Instr::End,
        Instr::End,
    ]);
    let apply = b.func(&[I64, I64, I64], &[], &[], body);
    b.export_func("apply", apply);
    b.build()
}

fn probe_table() -> Name {
    Name::new("probe")
}

struct EosioConformance {
    chain: Chain,
}

impl EosioConformance {
    fn new(fuel_budget: u64) -> Self {
        let mut chain = Chain::with_config(ChainConfig {
            fuel_per_tx: fuel_budget,
            ..ChainConfig::default()
        });
        chain
            .create_account(accounts::attacker())
            .expect("fresh chain");
        chain
            .deploy_wasm(accounts::target(), eosio_fixture(), Abi::default())
            .expect("fixture compiles");
        EosioConformance { chain }
    }
}

impl ConformanceHarness for EosioConformance {
    fn dispatch(&mut self, op: ConformanceOp) -> ConformanceVerdict {
        let action = match op {
            ConformanceOp::Noop => "noop",
            ConformanceOp::Store => "store",
            ConformanceOp::StoreThenTrap => "storetrap",
            ConformanceOp::Spin => "spin",
        };
        let tx = Transaction::single(Action::new(
            accounts::target(),
            Name::new(action),
            &[accounts::attacker()],
            &[],
        ));
        match self.chain.push_transaction(&tx) {
            Ok(r) => ConformanceVerdict {
                ok: true,
                steps_used: r.steps_used,
            },
            Err(e) => ConformanceVerdict {
                ok: false,
                steps_used: e.receipt.steps_used,
            },
        }
    }

    fn probe(&self, key: i64) -> Option<i64> {
        let me = accounts::target();
        let table = TableId {
            code: me,
            scope: me,
            table: probe_table(),
        };
        let row = self.chain.db.find(table, key as u64)?;
        let bytes: [u8; 8] = row.get(..8)?.try_into().ok()?;
        Some(i64::from_le_bytes(bytes))
    }
}

// ---------------------------------------------------------------------------
// CosmWasm backend
// ---------------------------------------------------------------------------

/// The CosmWasm backend: campaigns route through [`crate::cw`].
pub struct CosmwasmSubstrate;

impl Substrate for CosmwasmSubstrate {
    fn kind(&self) -> SubstrateKind {
        SubstrateKind::Cosmwasm
    }

    fn entry_exports(&self) -> &'static [&'static str] {
        &["instantiate", "execute", "query", "reply"]
    }

    fn oracle_classes(&self) -> &'static [VulnClass] {
        &VulnClass::COSMWASM
    }

    fn run_campaign(&self, ctx: CampaignContext) -> Result<FuzzReport, ChainError> {
        // Custom oracles and the solver cache are EOSIO-bound (receipts and
        // flip queries); the CosmWasm campaign is solver-free.
        let prepared = ctx.target.prepare()?;
        cw::run_campaign(prepared, ctx.cfg, ctx.sink)
    }

    fn conformance(&self, fuel_budget: u64) -> Box<dyn ConformanceHarness> {
        Box::new(CwConformance::new(fuel_budget))
    }
}

/// The CosmWasm fixture: an `execute` opcode-dispatching contract using the
/// value-passing storage API.
fn cw_fixture() -> Module {
    let mut b = ModuleBuilder::new();
    let write = b.import_func("env", "storage_write", &[I64, I64], &[]);
    let abort = b.import_func("env", "cw_abort", &[I64], &[]);
    let case = |opcode: i64, then: Vec<Instr>| {
        let mut v = vec![
            Instr::LocalGet(1),
            Instr::I64Const(opcode),
            Instr::I64Eq,
            Instr::If(BlockType::Empty),
        ];
        v.extend(then);
        v.push(Instr::End);
        v
    };
    let mut body = case(
        1,
        vec![Instr::I64Const(1), Instr::I64Const(11), Instr::Call(write)],
    );
    body.extend(case(
        2,
        vec![
            Instr::I64Const(2),
            Instr::I64Const(22),
            Instr::Call(write),
            Instr::I64Const(2),
            Instr::Call(abort),
        ],
    ));
    body.extend(case(
        3,
        vec![Instr::Loop(BlockType::Empty), Instr::Br(0), Instr::End],
    ));
    body.push(Instr::End);
    let exec = b.func(&[I64, I64, I64], &[], &[], body);
    b.export_func("execute", exec);
    b.build()
}

struct CwConformance {
    chain: CwChain,
}

impl CwConformance {
    fn new(fuel_budget: u64) -> Self {
        let mut chain = CwChain::with_config(CwConfig {
            fuel_per_dispatch: fuel_budget,
        });
        chain.create_wallet(cw::cw_accounts::attacker(), 1_000_000);
        chain
            .deploy(accounts::target(), cw_fixture())
            .expect("fixture compiles");
        CwConformance { chain }
    }
}

impl ConformanceHarness for CwConformance {
    fn dispatch(&mut self, op: ConformanceOp) -> ConformanceVerdict {
        let msg = match op {
            ConformanceOp::Noop => 0,
            ConformanceOp::Store => 1,
            ConformanceOp::StoreThenTrap => 2,
            ConformanceOp::Spin => 3,
        };
        let budget = self.chain.config().fuel_per_dispatch;
        match self.chain.dispatch(
            CwEntry::Execute,
            accounts::target(),
            cw::cw_accounts::attacker(),
            msg,
            0,
        ) {
            Ok(r) => ConformanceVerdict {
                ok: true,
                steps_used: r.steps_used,
            },
            Err(e) => ConformanceVerdict {
                ok: false,
                steps_used: e.receipt().map_or(budget, |r| r.steps_used),
            },
        }
    }

    fn probe(&self, key: i64) -> Option<i64> {
        self.chain.storage_get(accounts::target(), key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_roundtrip() {
        for kind in [SubstrateKind::Eosio, SubstrateKind::Cosmwasm] {
            assert_eq!(SubstrateKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(SubstrateKind::parse("cw"), Some(SubstrateKind::Cosmwasm));
        assert_eq!(SubstrateKind::parse("solana"), None);
    }

    #[test]
    fn detect_classifies_entry_models() {
        assert_eq!(
            SubstrateKind::detect(&eosio_fixture()),
            SubstrateKind::Eosio
        );
        assert_eq!(
            SubstrateKind::detect(&cw_fixture()),
            SubstrateKind::Cosmwasm
        );
        assert_eq!(
            SubstrateKind::detect(&Module::new()),
            SubstrateKind::Eosio,
            "entry-less modules default to the historical behavior"
        );
    }

    #[test]
    fn registry_serves_both_backends() {
        for kind in [SubstrateKind::Eosio, SubstrateKind::Cosmwasm] {
            let s = substrate(kind);
            assert_eq!(s.kind(), kind);
            assert!(!s.entry_exports().is_empty());
            assert!(!s.oracle_classes().is_empty());
        }
        assert_eq!(
            substrate(SubstrateKind::Eosio).oracle_classes(),
            &VulnClass::ALL
        );
        assert_eq!(
            substrate(SubstrateKind::Cosmwasm).oracle_classes(),
            &VulnClass::COSMWASM
        );
    }

    #[test]
    fn fixtures_validate() {
        assert!(wasai_wasm::validate::validate(&eosio_fixture()).is_ok());
        assert!(wasai_wasm::validate::validate(&cw_fixture()).is_ok());
    }
}
