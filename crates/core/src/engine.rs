//! Engine — the concolic fuzzing loop of Algorithm 1.
//!
//! Per iteration: select an action (fulfilling database dependencies via the
//! DBG, §3.3.2), select a seed from the circular pool, execute it on the
//! local chain capturing traces (§3.3.1), report vulnerabilities (§3.5),
//! replay the trace symbolically (§3.4), flip unexplored conditional states
//! and solve them to enqueue adaptive seeds (§3.4.4) — until the (virtual)
//! timeout.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use wasai_chain::abi::{ActionDecl, ParamValue};
use wasai_chain::action::ApiEvent;
use wasai_chain::name::Name;
use wasai_chain::{Chain, Receipt, Transaction};
use wasai_obs as obs;
use wasai_smt::{CachedQuery, PrefixSolver, QueryKey, SolveResult, SolverCache};
use wasai_symex::{constraint_vars, flip_queries, seed_from_model, Replayer};

use crate::clock::VirtualClock;
use crate::config::FuzzConfig;
use crate::coverage::{BranchKey, CoverageSeries};
use crate::dbg::DependencyGraph;
use crate::fleet::stage;
use crate::harness::{self, accounts, PreparedTarget, TargetInfo};
use crate::oracle::CustomOracle;
use crate::pool::SeedPool;
use crate::report::FuzzReport;
use crate::scanner::{PayloadKind, Scanner};
use crate::seed::{random_seed, random_value};
use crate::telemetry::{self, SmtOutcome, Stage, TelemetryEvent, TelemetrySink};

/// The WASAI fuzzing engine.
#[derive(Debug)]
pub struct Engine {
    cfg: FuzzConfig,
    prepared: Arc<PreparedTarget>,
    chain: Chain,
    rng: StdRng,
    pool: SeedPool,
    dbg: DependencyGraph,
    clock: VirtualClock,
    scanner: Scanner,
    explored: HashSet<BranchKey>,
    attempted: HashMap<BranchKey, u32>,
    action_funcs: HashMap<Name, u32>,
    coverage_series: CoverageSeries,
    iterations: u64,
    smt_queries: u64,
    /// Virtual µs charged to execution / the solver — the deterministic
    /// split behind [`FuzzReport::exec_virtual_us`]. Accumulated at the
    /// clock charge sites, so the two always partition `clock.micros()`.
    exec_vus: u64,
    solve_vus: u64,
    stall: u64,
    transfer_round: u64,
    custom_oracles: Vec<Box<dyn CustomOracle>>,
    sink: Option<Box<dyn TelemetrySink>>,
    truncated: bool,
    /// Per-campaign query memo (L1). Keyed canonically (budget cap
    /// included), so the same guard re-reached by a later seed replays its
    /// `(result, stats)` instead of re-solving. Only definitive outcomes
    /// are stored ([`wasai_smt::cacheable`]) — a deadline-truncated
    /// `Unknown` must not shadow a retry that has time. Drives the
    /// deterministic `cache_hit` telemetry tag.
    memo: HashMap<QueryKey, CachedQuery>,
    /// Optional fleet-wide cache (L2), shared across campaigns like the
    /// `PreparedTarget` artifact cache. Hits are invisible in telemetry
    /// (they depend on sibling scheduling), which is what keeps traces
    /// byte-identical at any worker count.
    solver_cache: Option<Arc<SolverCache>>,
}

impl Engine {
    /// Set up the chain (instrumented target + agents) and the engine.
    ///
    /// # Errors
    ///
    /// Fails when the target cannot be instrumented or deployed.
    pub fn new(target: TargetInfo, cfg: FuzzConfig) -> Result<Self, wasai_chain::ChainError> {
        Self::from_prepared(PreparedTarget::prepare(target)?, cfg)
    }

    /// [`Engine::new`] against a cached [`PreparedTarget`]: the chain deploys
    /// the shared compiled module instead of re-instrumenting and
    /// recompiling, so campaigns over the same contract pay the preparation
    /// cost once.
    ///
    /// # Errors
    ///
    /// Fails when the harness chain cannot be initialized.
    pub fn from_prepared(
        prepared: Arc<PreparedTarget>,
        cfg: FuzzConfig,
    ) -> Result<Self, wasai_chain::ChainError> {
        let chain = harness::setup_chain_prepared(&prepared)?;
        Ok(Engine {
            rng: StdRng::seed_from_u64(cfg.rng_seed),
            cfg,
            prepared,
            chain,
            pool: SeedPool::new(),
            dbg: DependencyGraph::new(),
            clock: VirtualClock::new(),
            scanner: Scanner::new(),
            explored: HashSet::new(),
            attempted: HashMap::new(),
            action_funcs: HashMap::new(),
            coverage_series: CoverageSeries::new(),
            iterations: 0,
            smt_queries: 0,
            exec_vus: 0,
            solve_vus: 0,
            stall: 0,
            transfer_round: 0,
            custom_oracles: Vec::new(),
            sink: None,
            truncated: false,
            memo: HashMap::new(),
            solver_cache: None,
        })
    }

    /// Attach a fleet-shared solver query cache. Campaigns with and without
    /// one produce byte-identical reports and traces — the cache only
    /// changes how answers are obtained, never what they are.
    pub fn set_solver_cache(&mut self, cache: Arc<SolverCache>) {
        self.solver_cache = Some(cache);
    }

    /// Register a custom vulnerability oracle (§5's extension interface).
    pub fn add_oracle(&mut self, oracle: Box<dyn CustomOracle>) {
        self.custom_oracles.push(oracle);
    }

    /// Attach a telemetry sink for this campaign.
    ///
    /// Without a sink (the default) the engine skips event construction
    /// entirely, so untraced campaigns are byte-for-byte what they were
    /// before telemetry existed. Events carry virtual-clock timestamps only,
    /// so traced campaigns remain deterministic across worker counts.
    pub fn set_sink(&mut self, sink: Box<dyn TelemetrySink>) {
        self.sink = Some(sink);
    }

    /// Emit one event if a sink is attached.
    fn emit(&mut self, event: TelemetryEvent) {
        if let Some(sink) = self.sink.as_mut() {
            sink.record(event);
        }
    }

    /// Run the campaign to completion and produce the report.
    pub fn run(mut self) -> FuzzReport {
        // One Arc bump pins the action declarations for the whole campaign;
        // the hot loop below borrows them instead of cloning per iteration.
        let prepared = self.prepared.clone();

        self.emit(TelemetryEvent::CampaignStarted {
            seed: self.cfg.rng_seed,
            actions: prepared.info.abi.actions.len(),
            vtime: 0,
        });
        // Coverage denominator: this target's coverable direction count, summed once
        // per campaign so it stays consistent with the per-campaign-summed
        // coverage numerator.
        obs::add(
            obs::Counter::BranchSites,
            prepared.branch_sites.directions() as u64,
        );

        // Algorithm 1, line 2: fill `seeds` with random data.
        for decl in &prepared.info.abi.actions {
            for _ in 0..5 {
                let s = random_seed(&mut self.rng, decl, accounts::target());
                self.pool.push(s.action, s.params);
            }
        }

        self.payload_sweep();

        // Algorithm 1, lines 3–12: the fuzzing loop. The wall-clock deadline
        // check makes the loop degrade to a partial (`truncated`) report when
        // the watchdog fires, instead of running out virtual time.
        let num_actions = prepared.info.abi.actions.len();
        while !self.clock.timed_out(self.cfg.timeout_us)
            && self.stall < self.cfg.stall_iters
            && num_actions > 0
            && !self.deadline_fired()
        {
            let decl = &prepared.info.abi.actions[(self.iterations as usize) % num_actions];
            self.iterate(decl);
            self.iterations += 1;
            obs::inc(obs::Counter::Iterations);
            obs::worker::tick();
        }

        // Final adversary sweep: deeper on-chain state may open new paths.
        self.payload_sweep();

        let (findings, exploits) = self.scanner.verdicts();
        let custom_findings: Vec<(String, String)> = self
            .custom_oracles
            .iter()
            .filter_map(|o| o.verdict().map(|v| (o.name().to_string(), v)))
            .collect();
        let branches = self.explored.len();
        if self.sink.is_some() {
            for ev in telemetry::oracle_verdicts(&findings, &custom_findings, self.clock.micros()) {
                self.emit(ev);
            }
            self.emit(TelemetryEvent::CampaignFinished {
                iterations: self.iterations,
                branches,
                truncated: self.truncated,
                vtime: self.clock.micros(),
            });
        }
        let mut coverage_series = std::mem::take(&mut self.coverage_series);
        coverage_series.push(self.cfg.timeout_us.max(self.clock.micros()), branches);
        FuzzReport {
            findings,
            exploits,
            branches,
            coverage_series,
            iterations: self.iterations,
            virtual_us: self.clock.micros(),
            exec_virtual_us: self.exec_vus,
            solve_virtual_us: self.solve_vus,
            smt_queries: self.smt_queries,
            custom_findings,
            truncated: self.truncated,
        }
    }

    /// Check the wall-clock watchdog, latching [`FuzzReport::truncated`] the
    /// first time it fires. [`wasai_smt::Deadline::NONE`] (the default) never
    /// fires, so unwatched campaigns stay fully deterministic.
    fn deadline_fired(&mut self) -> bool {
        if !self.truncated && self.cfg.deadline.expired() {
            self.truncated = true;
        }
        self.truncated
    }

    /// Run the four oracle payloads (§3.5) once.
    fn payload_sweep(&mut self) {
        let prepared = self.prepared.clone();
        let Some(decl) = prepared.info.transfer_decl() else {
            return;
        };
        let base = random_seed(&mut self.rng, decl, accounts::target()).params;
        for kind in [
            PayloadKind::Official,
            PayloadKind::DirectFake,
            PayloadKind::FakeToken,
            PayloadKind::ForwardedNotif,
        ] {
            self.run_case(kind, decl.name, base.clone(), 0);
        }
    }

    /// Build the transaction for a payload kind; returns it together with
    /// the *effective* parameters (after from/to forcing), which are what
    /// the symbolic replay must bind to.
    fn build_tx(
        &self,
        kind: PayloadKind,
        action: Name,
        params: &[ParamValue],
    ) -> (Transaction, Vec<ParamValue>) {
        match kind {
            PayloadKind::Official => {
                let p = harness::forced_transfer_params(
                    params,
                    accounts::attacker(),
                    accounts::target(),
                );
                (harness::official_transfer(&p), p)
            }
            PayloadKind::DirectFake => (harness::direct_fake_transfer(params), params.to_vec()),
            PayloadKind::FakeToken => {
                let p = harness::forced_transfer_params(
                    params,
                    accounts::attacker(),
                    accounts::target(),
                );
                (harness::fake_token_transfer(&p), p)
            }
            PayloadKind::ForwardedNotif => {
                let p = harness::forced_transfer_params(
                    params,
                    accounts::attacker(),
                    accounts::fake_notif(),
                );
                (harness::fake_notif_transfer(&p), p)
            }
            PayloadKind::Action => (harness::direct_action(action, params), params.to_vec()),
        }
    }

    /// Execute one case and immediately chase its adaptive seeds *on the
    /// same delivery path*: a flipped constraint describes the path the
    /// executed payload took, so the new seed must ride the same payload to
    /// reach the flipped branch (progressively deepening through nested
    /// verification, §3.4.4).
    fn run_case(&mut self, kind: PayloadKind, action: Name, params: Vec<ParamValue>, depth: u32) {
        if self.clock.timed_out(self.cfg.timeout_us) || self.deadline_fired() {
            return;
        }
        let (tx, effective) = self.build_tx(kind, action, &params);
        let new_seeds = self.execute(kind, tx, action, effective);
        if depth < 4 {
            for s in new_seeds.into_iter().take(2) {
                // Chase the seed on the delivery that discovered the branch…
                self.run_case(kind, action, s.clone(), depth + 1);
                // …and on the forwarded path: the Fake Notif guard can only
                // be observed through the agent (to = fake.notif ≠ _self), so
                // deep guards behind verification need the solved inputs to
                // ride that payload too (§4.3's paytobtckey1 case).
                if action == Name::new("transfer") && kind != PayloadKind::ForwardedNotif {
                    self.run_case(PayloadKind::ForwardedNotif, action, s, depth + 1);
                }
            }
        }
    }

    /// One fuzzing iteration for an action.
    fn iterate(&mut self, decl: &ActionDecl) {
        // §3.3.2: if the action reads a table some other action writes,
        // execute that writer first to fulfil the transaction dependency.
        if let Some(writer) = self.dbg.writer_for_reads_of(decl.name) {
            if let Some(params) = self.pool.pop_rotate(writer) {
                // The eosponser is fed through the legitimate token path so
                // guard code does not reject the dependency prefix.
                let kind = if writer == Name::new("transfer") {
                    PayloadKind::Official
                } else {
                    PayloadKind::Action
                };
                self.run_case(kind, writer, params, 0);
            }
        }

        // Keep a trickle of fresh random seeds flowing so name-typed
        // parameters eventually hit every harness account (§3.3.2's pool
        // rotation alone would only recycle the initial candidates). This
        // must run every round: gating it on an iteration modulus aliases
        // with the action round-robin whenever the ABI size divides the
        // modulus, starving every action but the first of fresh seeds.
        let s = random_seed(&mut self.rng, decl, accounts::target());
        self.pool.push(s.action, s.params);

        let params = self.pool.pop_rotate(decl.name).unwrap_or_else(|| {
            decl.params
                .iter()
                .map(|&t| random_value(&mut self.rng, t, accounts::target()))
                .collect()
        });

        if decl.name == Name::new("transfer") {
            // Rotate through the three delivery paths so both the guard code
            // (official/forwarded) and the unguarded paths (direct) are
            // exercised with adaptive parameters. A dedicated counter keeps
            // the rotation independent of the action round-robin (which
            // shares the modulus when the ABI happens to have three actions).
            self.transfer_round += 1;
            let kind = match self.transfer_round % 3 {
                0 => PayloadKind::Official,
                1 => PayloadKind::DirectFake,
                _ => PayloadKind::ForwardedNotif,
            };
            self.run_case(kind, decl.name, params, 0);
        } else {
            self.run_case(PayloadKind::Action, decl.name, params, 0);
        }
    }

    /// Execute one transaction and run the full observation pipeline:
    /// scanner, DBG update, coverage, symbolic replay, constraint flipping.
    fn execute(
        &mut self,
        kind: PayloadKind,
        tx: Transaction,
        action: Name,
        params: Vec<ParamValue>,
    ) -> Vec<Vec<ParamValue>> {
        let prepared = self.prepared.clone();
        stage::enter(stage::EXECUTE);
        let receipt: Receipt = match self.chain.push_transaction(&tx) {
            Ok(r) => r,
            Err(e) => e.receipt,
        };
        stage::enter(stage::CAMPAIGN);
        obs::inc(obs::Counter::SeedsExecuted);
        let vtime_before = self.clock.micros();
        self.clock
            .charge_execution(&self.cfg.cost, receipt.steps_used);
        self.exec_vus += self.clock.micros() - vtime_before;
        self.emit(TelemetryEvent::StageTiming {
            stage: Stage::Execute,
            dur_us: self.clock.micros() - vtime_before,
            vtime: self.clock.micros(),
        });

        // Scanner: guard detection needs the transfer's payee value.
        let to_value = match params.get(1) {
            Some(ParamValue::Name(n)) if action == Name::new("transfer") => Some(n.raw()),
            _ => None,
        };
        self.scanner
            .observe(&prepared.info.original, kind, &receipt, to_value);
        for oracle in &mut self.custom_oracles {
            oracle.observe(&prepared.info.original, kind, &receipt);
        }

        // DBG update (§3.3.2).
        for ev in &receipt.api_events {
            if let ApiEvent::Db(op) = ev {
                if op.contract == accounts::target() {
                    self.dbg.record(action, op.access, op.table);
                }
            }
        }

        if receipt.trace.is_empty() {
            self.stall += 1;
            if self.sink.is_some() {
                let branches = self.explored.len();
                self.emit(TelemetryEvent::SeedExecuted {
                    action: action.to_string(),
                    payload: kind.name().to_string(),
                    coverage_delta: 0,
                    branches,
                    vtime: self.clock.micros(),
                });
            }
            return Vec::new();
        }

        // Locate the action function on first contact (§3.4.2).
        if let std::collections::hash_map::Entry::Vacant(entry) = self.action_funcs.entry(action) {
            if let Some(f) =
                harness::locate_action_function(&prepared.info.original, &receipt.trace)
            {
                entry.insert(f);
                if action == Name::new("transfer") && matches!(kind, PayloadKind::Official) {
                    self.scanner.set_eosponser(f);
                }
            }
        }

        // Coverage, via the target's precomputed branch-site table.
        let before = self.explored.len();
        prepared
            .branch_sites
            .extend_from_trace(&mut self.explored, &receipt.trace);
        if self.explored.len() > before {
            self.stall = 0;
        } else {
            self.stall += 1;
        }
        obs::add(
            obs::Counter::CoverageBranches,
            (self.explored.len() - before) as u64,
        );
        self.coverage_series
            .push(self.clock.micros(), self.explored.len());
        if self.sink.is_some() {
            let branches = self.explored.len();
            self.emit(TelemetryEvent::SeedExecuted {
                action: action.to_string(),
                payload: kind.name().to_string(),
                coverage_delta: branches - before,
                branches,
                vtime: self.clock.micros(),
            });
        }

        // Symbolic feedback (§3.4): replay, flip, solve, enqueue.
        if !self.cfg.feedback {
            return Vec::new();
        }
        let Some(&action_func) = self.action_funcs.get(&action) else {
            return Vec::new();
        };
        let Some(decl) = prepared.info.abi.action(action) else {
            return Vec::new();
        };
        // `params` is consumed into the binding pairs — no per-transaction
        // re-clone of the declaration or the values.
        let pairs: Vec<_> = decl.params.iter().copied().zip(params).collect();
        stage::enter(stage::REPLAY);
        obs::inc(obs::Counter::Replays);
        let replay_timer = obs::ScopeTimer::start(obs::Histogram::ReplayWallSeconds);
        let outcome = Replayer::new(&prepared.info.original, action_func, 1, &pairs)
            .with_deadline(self.cfg.deadline)
            .run(&receipt.trace);
        drop(replay_timer);
        stage::enter(stage::CAMPAIGN);
        if outcome.truncated {
            self.truncated = true;
        }
        self.emit(TelemetryEvent::Replayed {
            records: outcome.records,
            conditionals: outcome.conditionals.len(),
            truncated: outcome.truncated,
            vtime: self.clock.micros(),
        });

        // The solver inherits the campaign watchdog: whichever of the
        // per-query budget deadline and the campaign deadline is sooner wins.
        let mut budget = self.cfg.smt_budget;
        budget.deadline = budget.deadline.earliest(self.cfg.deadline);

        let set = flip_queries(&outcome, &self.explored);
        // One incremental session per replay: every query shares this
        // replay's path-constraint chain, so the common prefix is blasted
        // once and each flip solves from a fork of it.
        let mut session = PrefixSolver::new(&outcome.pool);
        let mut solved = 0usize;
        let mut new_seeds = Vec::new();
        for q in &set.queries {
            if solved >= self.cfg.max_queries_per_iter
                || self.clock.timed_out(self.cfg.timeout_us)
                || self.deadline_fired()
            {
                break;
            }
            let key = q.target_key();
            // A solved model does not guarantee the chased seed reaches the
            // flipped branch (the delivery path may force from/to and clamp
            // the asset, §3.5's payload templates), so allow a few retries
            // per target before writing it off — a permanently poisoned key
            // can otherwise stall a campaign two flips short of a gate.
            let tries = self.attempted.entry(key).or_insert(0);
            if *tries >= 3 {
                continue;
            }
            *tries += 1;
            stage::enter(stage::SOLVE);
            let solve_timer = obs::ScopeTimer::start(obs::Histogram::SolveWallSeconds);
            let prefix = &set.prefix[..q.prefix_len];
            let (result, stats, cache_hit, incremental) = if self.cfg.smt_reuse {
                let qkey = wasai_smt::query_key(
                    &outcome.pool,
                    prefix,
                    Some(q.flipped),
                    budget.max_conflicts,
                );
                obs::inc(obs::Counter::CacheLookupsCampaign);
                if let Some(entry) = self.memo.get(&qkey) {
                    obs::inc(obs::Counter::CacheHitsCampaign);
                    // L1: an identical canonical query was resolved earlier
                    // this campaign — replay its exact (result, stats), and
                    // advance the session over the prefix just like an L2
                    // hit, so the `incremental` tag of later queries has one
                    // meaning regardless of which layer answered.
                    let (r, s) = entry.decode(&outcome.pool);
                    let incremental = session.started();
                    session.advance(prefix);
                    (r, s, true, incremental)
                } else {
                    let incremental = session.started();
                    let fleet_hit = self
                        .solver_cache
                        .as_ref()
                        .and_then(|c| c.lookup(&qkey, &outcome.pool));
                    let (r, s) = match fleet_hit {
                        Some(hit) => {
                            // L2: a sibling campaign already solved this.
                            // Advance the session anyway so its state (and
                            // the `incremental` tag of later queries) does
                            // not depend on who populated the fleet cache.
                            session.advance(prefix);
                            hit
                        }
                        None => {
                            let (r, s) = session.solve(prefix, q.flipped, budget);
                            self.race_if_hard(
                                &outcome.pool,
                                prefix,
                                Some(q.flipped),
                                budget,
                                &r,
                                &s,
                            );
                            // A deadline-truncated Unknown is a watchdog
                            // artifact, not the query's answer — memoizing
                            // it would replay the truncation into sibling
                            // campaigns whose solves had time, so only
                            // definitive outcomes enter the fleet cache.
                            if wasai_smt::cacheable(&r, &budget) {
                                if let Some(cache) = &self.solver_cache {
                                    cache.store(
                                        qkey.clone(),
                                        CachedQuery::encode(&outcome.pool, &r, s),
                                    );
                                }
                            }
                            (r, s)
                        }
                    };
                    // Same rule for the per-campaign memo: a transient
                    // Unknown must not shadow a later retry of this key.
                    if wasai_smt::cacheable(&r, &budget) {
                        self.memo
                            .insert(qkey, CachedQuery::encode(&outcome.pool, &r, s));
                    }
                    (r, s, false, incremental)
                }
            } else {
                let constraints = q.constraints(&set.prefix);
                let (r, s) = wasai_smt::check(&outcome.pool, &constraints, budget);
                self.race_if_hard(&outcome.pool, &constraints, None, budget, &r, &s);
                (r, s, false, false)
            };
            drop(solve_timer);
            stage::enter(stage::CAMPAIGN);
            obs::inc(match result {
                SolveResult::Sat(_) => obs::Counter::SmtSat,
                SolveResult::Unsat => obs::Counter::SmtUnsat,
                SolveResult::Unknown => obs::Counter::SmtUnknown,
            });
            obs::add(obs::Counter::SmtPropagations, stats.propagations);
            obs::worker::tick();
            let vtime_before = self.clock.micros();
            self.clock.charge_smt(&self.cfg.cost, stats.propagations);
            self.solve_vus += self.clock.micros() - vtime_before;
            self.smt_queries += 1;
            solved += 1;
            if self.sink.is_some() {
                self.emit(TelemetryEvent::StageTiming {
                    stage: Stage::Solve,
                    dur_us: self.clock.micros() - vtime_before,
                    vtime: self.clock.micros(),
                });
                let outcome_tag = match result {
                    SolveResult::Sat(_) => SmtOutcome::Sat,
                    SolveResult::Unsat => SmtOutcome::Unsat,
                    SolveResult::Unknown => SmtOutcome::Unknown,
                };
                self.emit(TelemetryEvent::SmtQuery {
                    outcome: outcome_tag,
                    conflicts: stats.conflicts,
                    props: stats.propagations,
                    cache_hit,
                    incremental,
                    vtime: self.clock.micros(),
                });
            }
            if let SolveResult::Sat(model) = result {
                obs::inc(obs::Counter::Flips);
                self.emit(TelemetryEvent::ConstraintFlipped {
                    func: key.0,
                    pc: key.1,
                    direction: key.2,
                    vtime: self.clock.micros(),
                });
                let constraints = q.constraints(&set.prefix);
                let vars = constraint_vars(&outcome.pool, &constraints);
                let new_params = seed_from_model(&outcome.spec, &outcome.pool, &model, &vars);
                self.pool.push(action, new_params.clone());
                new_seeds.push(new_params);
                self.stall = 0;
            }
        }
        new_seeds
    }

    /// Portfolio race on hard queries: when `cfg.portfolio_k > 1` and the
    /// reference solve propagated at least `cfg.portfolio_threshold` times,
    /// re-solve the query under the variant configurations. The race is
    /// strictly out-of-band — the already-computed `result` stays the
    /// reported one, variant verdicts only feed `wasai-obs` counters — so
    /// reports and traces are byte-identical at any `k`.
    fn race_if_hard(
        &self,
        pool: &wasai_smt::TermPool,
        prefix: &[wasai_smt::TermId],
        flipped: Option<wasai_smt::TermId>,
        budget: wasai_smt::Budget,
        result: &SolveResult,
        stats: &wasai_smt::SolveStats,
    ) {
        if self.cfg.portfolio_k <= 1 || stats.propagations < self.cfg.portfolio_threshold {
            return;
        }
        let mut assertions = prefix.to_vec();
        assertions.extend(flipped);
        wasai_smt::portfolio::race_diagnostics(
            pool,
            &assertions,
            budget.max_conflicts,
            self.cfg.portfolio_k,
            result,
        );
    }
}
