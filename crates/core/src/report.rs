//! Vulnerability classes and fuzzing reports.

use std::collections::BTreeSet;
use std::fmt;

use crate::coverage::CoverageSeries;

/// The vulnerability classes WASAI detects: the five of §2.3 plus the
/// CosmWasm-substrate classes the CTF catalog names.
///
/// Variant order is load-bearing: `Ord` derives from declaration order and
/// drives the `findings:` line of [`FuzzReport::render`], and the EOSIO
/// classes come first so appending substrate-specific classes cannot perturb
/// any EOSIO golden report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VulnClass {
    /// Accepting counterfeit EOS tokens (§2.3.1).
    FakeEos,
    /// Accepting forwarded transfer notifications (§2.3.2).
    FakeNotif,
    /// Side effects without authorization checks (§2.3.3).
    MissAuth,
    /// Pseudorandomness from blockchain state (§2.3.4).
    BlockinfoDep,
    /// Revertable inline-action reward schemes (§2.3.5).
    Rollback,
    /// CosmWasm: `instantiate` callable by anyone — an attacker re-runs it
    /// and takes over privileged state (owner, config).
    UnauthInstantiate,
    /// CosmWasm: `reply` commits state without checking whether the
    /// submessage it answers actually succeeded.
    UncheckedReply,
}

impl VulnClass {
    /// The five EOSIO classes, in the paper's order. This is the set the
    /// EOSIO substrate reports against; it deliberately excludes the
    /// CosmWasm classes so telemetry and golden reports for EOSIO campaigns
    /// stay byte-identical as new substrates land.
    pub const ALL: [VulnClass; 5] = [
        VulnClass::FakeEos,
        VulnClass::FakeNotif,
        VulnClass::MissAuth,
        VulnClass::BlockinfoDep,
        VulnClass::Rollback,
    ];

    /// The classes the CosmWasm substrate reports against.
    pub const COSMWASM: [VulnClass; 2] = [VulnClass::UnauthInstantiate, VulnClass::UncheckedReply];

    /// Parse one class from its [`fmt::Display`] name — the inverse used by
    /// ground-truth label sidecars.
    pub fn from_label(s: &str) -> Option<VulnClass> {
        VulnClass::ALL
            .iter()
            .chain(VulnClass::COSMWASM.iter())
            .copied()
            .find(|c| c.to_string() == s)
    }
}

impl fmt::Display for VulnClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VulnClass::FakeEos => "Fake EOS",
            VulnClass::FakeNotif => "Fake Notif",
            VulnClass::MissAuth => "MissAuth",
            VulnClass::BlockinfoDep => "BlockinfoDep",
            VulnClass::Rollback => "Rollback",
            VulnClass::UnauthInstantiate => "UnauthInstantiate",
            VulnClass::UncheckedReply => "UncheckedReply",
        };
        f.write_str(s)
    }
}

/// A reproducible exploit observation attached to a finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploitRecord {
    /// Which class the payload demonstrated.
    pub class: VulnClass,
    /// Human-readable description of the payload transaction.
    pub payload: String,
}

/// The outcome of fuzzing one contract.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FuzzReport {
    /// Vulnerability classes flagged.
    pub findings: BTreeSet<VulnClass>,
    /// Exploit payload descriptions (WASAI "can produce exploit payloads").
    pub exploits: Vec<ExploitRecord>,
    /// Distinct branches covered in the target's action functions.
    pub branches: usize,
    /// Cumulative coverage over virtual time.
    pub coverage_series: CoverageSeries,
    /// Fuzzing iterations executed.
    pub iterations: u64,
    /// Virtual microseconds consumed.
    pub virtual_us: u64,
    /// Virtual microseconds charged to contract execution. Together with
    /// `solve_virtual_us` this partitions `virtual_us` (the clock only
    /// advances through execution and solver charges) — the span profiler's
    /// deterministic breakdown. Not rendered into the report text.
    pub exec_virtual_us: u64,
    /// Virtual microseconds charged to the SMT solver.
    pub solve_virtual_us: u64,
    /// SMT queries issued (0 for black-box fuzzers).
    pub smt_queries: u64,
    /// Verdicts of user-registered custom oracles (§5): `(name, finding)`.
    pub custom_findings: Vec<(String, String)>,
    /// The wall-clock watchdog fired and cut the campaign short: findings
    /// and coverage are valid but partial (a lower bound, not a verdict of
    /// cleanliness).
    pub truncated: bool,
}

impl FuzzReport {
    /// True if the class was flagged.
    pub fn has(&self, class: VulnClass) -> bool {
        self.findings.contains(&class)
    }

    /// True if anything was flagged.
    pub fn is_vulnerable(&self) -> bool {
        !self.findings.is_empty()
    }

    /// Render the report as deterministic plain text — the format the
    /// golden-report snapshots pin down.
    ///
    /// Every line is derived from ordered data (`BTreeSet` findings,
    /// execution-ordered exploits), so equal reports render byte-identically.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "=== fuzz report ===");
        let findings = if self.findings.is_empty() {
            "none".to_string()
        } else {
            self.findings
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = writeln!(out, "findings: {findings}");
        let _ = writeln!(out, "branches: {}", self.branches);
        let _ = writeln!(out, "iterations: {}", self.iterations);
        let _ = writeln!(out, "virtual_us: {}", self.virtual_us);
        let _ = writeln!(out, "smt_queries: {}", self.smt_queries);
        let _ = writeln!(out, "truncated: {}", self.truncated);
        let _ = writeln!(
            out,
            "coverage: {} samples, final {}",
            self.coverage_series.len(),
            self.coverage_series.final_branches()
        );
        for e in &self.exploits {
            let _ = writeln!(out, "exploit [{}]: {}", e.class, e.payload);
        }
        for (name, finding) in &self.custom_findings {
            let _ = writeln!(out, "custom [{name}]: {finding}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_match_paper_tables() {
        assert_eq!(VulnClass::FakeEos.to_string(), "Fake EOS");
        assert_eq!(VulnClass::BlockinfoDep.to_string(), "BlockinfoDep");
        assert_eq!(VulnClass::ALL.len(), 5);
    }

    #[test]
    fn cosmwasm_classes_sort_after_the_eosio_five() {
        for cw in VulnClass::COSMWASM {
            for eosio in VulnClass::ALL {
                assert!(eosio < cw, "{eosio} must order before {cw}");
            }
        }
    }

    #[test]
    fn labels_roundtrip_through_display() {
        for c in VulnClass::ALL.iter().chain(VulnClass::COSMWASM.iter()) {
            assert_eq!(VulnClass::from_label(&c.to_string()), Some(*c));
        }
        assert_eq!(VulnClass::from_label("NoSuchClass"), None);
    }

    #[test]
    fn report_queries() {
        let mut r = FuzzReport::default();
        assert!(!r.is_vulnerable());
        r.findings.insert(VulnClass::Rollback);
        assert!(r.has(VulnClass::Rollback));
        assert!(!r.has(VulnClass::FakeEos));
        assert!(r.is_vulnerable());
    }

    #[test]
    fn render_is_deterministic_text() {
        let mut r = FuzzReport {
            branches: 4,
            iterations: 12,
            virtual_us: 99_000,
            smt_queries: 3,
            ..FuzzReport::default()
        };
        r.findings.insert(VulnClass::FakeEos);
        r.coverage_series.push(10, 2);
        r.coverage_series.push(20, 4);
        r.exploits.push(ExploitRecord {
            class: VulnClass::FakeEos,
            payload: "direct eosponser call".into(),
        });
        r.custom_findings.push(("tapos".into(), "seen".into()));
        let text = r.render();
        assert_eq!(text, r.clone().render(), "rendering is pure");
        assert!(text.contains("findings: Fake EOS\n"));
        assert!(text.contains("coverage: 2 samples, final 4\n"));
        assert!(text.contains("exploit [Fake EOS]: direct eosponser call\n"));
        assert!(text.contains("custom [tapos]: seen\n"));
        assert!(FuzzReport::default().render().contains("findings: none\n"));
    }
}
