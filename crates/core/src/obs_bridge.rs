//! Bridges between the virtual-clock telemetry layer (PR 3) and the
//! wall-clock observability registry (`wasai-obs`).
//!
//! Three pieces live here:
//!
//! - [`MirrorSink`]: a [`TelemetrySink`] decorator that counts the event
//!   stream into obs counters, so the deterministic vtime telemetry and the
//!   wall-clock metrics can be cross-checked (after a run, event counts and
//!   counter values must agree exactly — unit-tested below). It is an
//!   opt-in diagnostic: the CLI does *not* attach it by default, because
//!   the engine/fleet hot paths already write the same counters directly
//!   and mirroring them twice would double-count.
//! - [`ProgressMonitor`]: the live `audit-dir` progress view — samples the
//!   global registry and heartbeat table, renders a one-line status to
//!   stderr, and flags stalled campaigns (no heartbeat tick for N
//!   wall-seconds) via the PR 2 stage markers mirrored into the heartbeat
//!   slots.
//! - [`metrics_json`]: renders a [`Metrics`] aggregate (from an offline
//!   trace) under the same Prometheus series names the live exposition
//!   uses, so `wasai stats --format json` correlates with `/metrics`.
//!
//! Everything here observes and renders; nothing feeds back into
//! scheduling or reports. Monitor output goes to stderr only, keeping
//! stdout (reports, verdict lines) byte-identical with observability on or
//! off.

use std::fmt;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use wasai_obs as obs;
use wasai_obs::{Counter, Gauge, Registry, StallReport};

use crate::telemetry::{Metrics, SmtOutcome, TelemetryEvent, TelemetrySink};

/// A [`TelemetrySink`] decorator that mirrors the event stream into obs
/// counters on a caller-chosen registry (tests use a private one), then
/// forwards each event to the inner sink unchanged.
#[derive(Debug)]
pub struct MirrorSink<S> {
    inner: S,
    registry: &'static Registry,
}

impl<S: TelemetrySink> MirrorSink<S> {
    /// Mirror events into `registry`, forwarding to `inner`.
    pub fn new(inner: S, registry: &'static Registry) -> MirrorSink<S> {
        MirrorSink { inner, registry }
    }

    /// The wrapped sink, back.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TelemetrySink> TelemetrySink for MirrorSink<S> {
    fn record(&mut self, event: TelemetryEvent) {
        let reg = self.registry;
        match &event {
            TelemetryEvent::CampaignStarted { .. }
            | TelemetryEvent::StageTiming { .. }
            | TelemetryEvent::OracleVerdict { .. } => {}
            TelemetryEvent::SeedExecuted { coverage_delta, .. } => {
                reg.inc(Counter::SeedsExecuted);
                reg.add(Counter::CoverageBranches, *coverage_delta as u64);
            }
            TelemetryEvent::Replayed { .. } => reg.inc(Counter::Replays),
            TelemetryEvent::SmtQuery {
                outcome,
                props,
                cache_hit,
                ..
            } => {
                reg.inc(match outcome {
                    SmtOutcome::Sat => Counter::SmtSat,
                    SmtOutcome::Unsat => Counter::SmtUnsat,
                    SmtOutcome::Unknown => Counter::SmtUnknown,
                });
                reg.add(Counter::SmtPropagations, *props);
                if *cache_hit {
                    reg.inc(Counter::CacheHitsCampaign);
                }
            }
            TelemetryEvent::ConstraintFlipped { .. } => reg.inc(Counter::Flips),
            TelemetryEvent::CampaignFinished { .. } => reg.inc(Counter::CampaignsOk),
            TelemetryEvent::CampaignAborted { outcome, .. } => reg.inc(match outcome.as_str() {
                "panicked" => Counter::CampaignsPanicked,
                "timed-out" => Counter::CampaignsTimedOut,
                "crashed" => Counter::CampaignsCrashed,
                _ => Counter::CampaignsFailed,
            }),
        }
        self.inner.record(event);
    }
}

/// A point-in-time progress reading, computed from registry + heartbeats.
/// This is what the monitor renders; tests consume it directly.
#[derive(Debug, Clone)]
pub struct MonitorReport {
    /// Campaigns finished cleanly so far.
    pub ok: u64,
    /// Campaigns failed (typed error) so far.
    pub failed: u64,
    /// Campaigns that panicked so far.
    pub panicked: u64,
    /// Campaigns cut off by the fleet deadline so far.
    pub timed_out: u64,
    /// Campaigns lost with a dead worker process (retries exhausted).
    pub crashed: u64,
    /// Worker subprocess re-dispatches by the supervisor so far.
    pub worker_restarts: u64,
    /// Heartbeat slot-aliasing events (worker count exceeded the table).
    pub hb_overflow: u64,
    /// Campaigns scheduled in the sweep (0 when unknown).
    pub total: u64,
    /// Seeds executed per wall-clock second since the monitor started.
    pub exec_per_sec: f64,
    /// Discovered branches / known branch sites, in percent (0 when no
    /// sites are known yet).
    pub coverage_pct: f64,
    /// Solver cache hits / lookups across both levels (0 when no lookups).
    pub cache_hit_rate: f64,
    /// Naive ETA: remaining campaigns at the observed campaigns/s rate
    /// (None until at least one campaign finished).
    pub eta: Option<Duration>,
    /// Campaigns with no heartbeat tick for at least the stall threshold.
    pub stalled: Vec<StallReport>,
}

impl MonitorReport {
    /// Campaigns retired (any outcome).
    pub fn done(&self) -> u64 {
        self.ok + self.failed + self.panicked + self.timed_out + self.crashed
    }
}

impl fmt::Display for MonitorReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} campaigns (ok {}, failed {}, panicked {}, timed-out {}",
            self.done(),
            self.total,
            self.ok,
            self.failed,
            self.panicked,
            self.timed_out
        )?;
        if self.crashed > 0 {
            write!(f, ", crashed {}", self.crashed)?;
        }
        write!(
            f,
            ") | {:.0} exec/s | cov {:.1}% | cache {:.0}%",
            self.exec_per_sec,
            self.coverage_pct,
            self.cache_hit_rate * 100.0
        )?;
        if self.worker_restarts > 0 {
            write!(f, " | restarts {}", self.worker_restarts)?;
        }
        if self.hb_overflow > 0 {
            write!(f, " | hb-overflow {}", self.hb_overflow)?;
        }
        if let Some(eta) = self.eta {
            write!(f, " | eta {}s", eta.as_secs())?;
        }
        if !self.stalled.is_empty() {
            write!(f, " | STALLED:")?;
            for s in &self.stalled {
                write!(
                    f,
                    " campaign {} ({} for {}s)",
                    s.campaign,
                    s.stage.name(),
                    s.idle_ms / 1000
                )?;
            }
        }
        Ok(())
    }
}

/// Live fleet progress monitor.
///
/// Samples the **global** registry and heartbeat table (that is where the
/// instrumented hot paths write) on a fixed interval, renders a status line
/// to stderr, and maintains the `wasai_stalled_campaigns` gauge. Purely a
/// reader: it never touches scheduling, stdout, or report files.
#[derive(Debug)]
pub struct ProgressMonitor {
    total: u64,
    stall_threshold: Duration,
    started: Instant,
}

impl ProgressMonitor {
    /// A monitor for a sweep of `total` campaigns flagging campaigns quiet
    /// for `stall_threshold`.
    pub fn new(total: u64, stall_threshold: Duration) -> ProgressMonitor {
        ProgressMonitor {
            total,
            stall_threshold,
            started: Instant::now(),
        }
    }

    /// Take one sample of the global registry + heartbeats.
    pub fn sample(&self) -> MonitorReport {
        let reg = obs::global();
        let ok = reg.counter(Counter::CampaignsOk);
        let failed = reg.counter(Counter::CampaignsFailed);
        let panicked = reg.counter(Counter::CampaignsPanicked);
        let timed_out = reg.counter(Counter::CampaignsTimedOut);
        let crashed = reg.counter(Counter::CampaignsCrashed);
        let worker_restarts = reg.counter(Counter::WorkerRestarts);
        let done = ok + failed + panicked + timed_out + crashed;

        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let seeds = reg.counter(Counter::SeedsExecuted);
        let sites = reg.counter(Counter::BranchSites);
        let branches = reg.counter(Counter::CoverageBranches);
        let lookups =
            reg.counter(Counter::CacheLookupsCampaign) + reg.counter(Counter::CacheLookupsFleet);
        let hits = reg.counter(Counter::CacheHitsCampaign) + reg.counter(Counter::CacheHitsFleet);

        let eta = (done > 0 && self.total > done).then(|| {
            let per_campaign = elapsed / done as f64;
            Duration::from_secs_f64(per_campaign * (self.total - done) as f64)
        });

        let stalled = obs::heartbeats().stalled(self.stall_threshold.as_millis() as u64);
        reg.gauge_set(Gauge::StalledCampaigns, stalled.len() as u64);
        let hb_overflow = obs::heartbeats().overflowed();
        reg.gauge_set(Gauge::HeartbeatOverflow, hb_overflow);

        MonitorReport {
            ok,
            failed,
            panicked,
            timed_out,
            crashed,
            worker_restarts,
            hb_overflow,
            total: self.total,
            exec_per_sec: seeds as f64 / elapsed,
            coverage_pct: if sites == 0 {
                0.0
            } else {
                branches as f64 * 100.0 / sites as f64
            },
            cache_hit_rate: if lookups == 0 {
                0.0
            } else {
                hits as f64 / lookups as f64
            },
            eta,
            stalled,
        }
    }

    /// Spawn the render loop on a background thread: one stderr status line
    /// per `interval` until the returned handle is stopped. With `tty` the
    /// line is redrawn in place (`\r`, no newline); otherwise each sample is
    /// its own line, suitable for log capture.
    pub fn spawn(self, interval: Duration, tty: bool) -> MonitorHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("wasai-progress".into())
            .spawn(move || {
                let mut last_len = 0usize;
                while !stop2.load(Ordering::Relaxed) {
                    let report = self.sample();
                    render(&report, tty, &mut last_len);
                    // Sleep in small slices so stop() is prompt even with
                    // second-scale intervals.
                    let mut remaining = interval;
                    while !stop2.load(Ordering::Relaxed) && remaining > Duration::ZERO {
                        let step = remaining.min(Duration::from_millis(50));
                        std::thread::sleep(step);
                        remaining = remaining.saturating_sub(step);
                    }
                }
                // Final sample so the last state is always visible.
                let report = self.sample();
                render(&report, tty, &mut last_len);
                if tty {
                    eprintln!();
                }
            })
            .expect("spawn progress monitor thread");
        MonitorHandle {
            stop,
            handle: Some(handle),
        }
    }
}

fn render(report: &MonitorReport, tty: bool, last_len: &mut usize) {
    let line = report.to_string();
    if tty {
        // Pad with spaces to fully overwrite the previous, longer line.
        let pad = last_len.saturating_sub(line.len());
        eprint!("\r{line}{}", " ".repeat(pad));
        let _ = std::io::stderr().flush();
        *last_len = line.len();
    } else {
        eprintln!("[wasai] {line}");
    }
}

/// Stops the monitor thread when dropped (or via [`MonitorHandle::stop`]).
#[derive(Debug)]
pub struct MonitorHandle {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MonitorHandle {
    /// Stop the render loop and join the thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MonitorHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Render an offline [`Metrics`] aggregate as JSON under the Prometheus
/// series names of the live exposition, so `wasai stats --format json`
/// output joins against scraped `/metrics` data by key.
pub fn metrics_json(m: &Metrics) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    let mut first = true;
    let mut field = |out: &mut String, key: &str, val: u64| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        // Series names carry label quotes — escape them for the JSON key.
        out.push_str(&format!(
            "  \"{}\": {val}",
            crate::telemetry::json_escape(key)
        ));
    };

    field(
        &mut out,
        "wasai_campaigns_total{outcome=\"ok\"}",
        m.finished,
    );
    for tag in ["failed", "panicked", "timed-out", "crashed"] {
        field(
            &mut out,
            &format!("wasai_campaigns_total{{outcome=\"{tag}\"}}"),
            m.aborted.get(tag).copied().unwrap_or(0),
        );
    }
    field(&mut out, "wasai_seeds_executed_total", m.seeds);
    field(&mut out, "wasai_coverage_branches_total", m.coverage_gained);
    field(&mut out, "wasai_replays_total", m.replays);
    field(&mut out, "wasai_flips_total", m.flips);
    field(
        &mut out,
        "wasai_smt_queries_total{outcome=\"sat\"}",
        m.smt_sat,
    );
    field(
        &mut out,
        "wasai_smt_queries_total{outcome=\"unsat\"}",
        m.smt_unsat,
    );
    field(
        &mut out,
        "wasai_smt_queries_total{outcome=\"unknown\"}",
        m.smt_unknown,
    );
    field(&mut out, "wasai_smt_propagations_total", m.smt_props);
    field(
        &mut out,
        "wasai_smt_cache_hits_total{level=\"campaign\"}",
        m.smt_cache_hits,
    );
    // Not registry series, but part of the offline aggregate; prefixed the
    // same way so consumers treat the namespace uniformly.
    field(&mut out, "wasai_campaigns_started_total", m.campaigns);
    field(&mut out, "wasai_replay_records_total", m.replay_records);
    field(&mut out, "wasai_smt_conflicts_total", m.smt_conflicts);
    field(&mut out, "wasai_smt_incremental_total", m.smt_incremental);
    field(&mut out, "wasai_truncated_campaigns_total", m.truncated);
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{parse_json_fields, Recorder, Stage};

    fn leaked_registry() -> &'static Registry {
        let r = Box::leak(Box::new(Registry::new()));
        r.enable();
        r
    }

    /// The MirrorSink cross-check: after a run, event counts in the
    /// recorded trace equal the mirrored counter values exactly.
    #[test]
    fn mirrored_counters_equal_event_counts() {
        let reg = leaked_registry();
        let mut sink = MirrorSink::new(Recorder::new(), reg);

        sink.record(TelemetryEvent::CampaignStarted {
            seed: 1,
            actions: 2,
            vtime: 0,
        });
        for i in 0..5u64 {
            sink.record(TelemetryEvent::SeedExecuted {
                action: "transfer".into(),
                payload: "official".into(),
                coverage_delta: 2,
                branches: (2 * (i + 1)) as usize,
                vtime: i,
            });
        }
        for _ in 0..3 {
            sink.record(TelemetryEvent::Replayed {
                records: 10,
                conditionals: 4,
                truncated: false,
                vtime: 9,
            });
        }
        for (outcome, cache_hit) in [
            (SmtOutcome::Sat, false),
            (SmtOutcome::Sat, true),
            (SmtOutcome::Unsat, false),
            (SmtOutcome::Unknown, false),
        ] {
            sink.record(TelemetryEvent::SmtQuery {
                outcome,
                conflicts: 1,
                props: 7,
                cache_hit,
                incremental: false,
                vtime: 10,
            });
        }
        sink.record(TelemetryEvent::ConstraintFlipped {
            func: 3,
            pc: 14,
            direction: 1,
            vtime: 11,
        });
        sink.record(TelemetryEvent::CampaignFinished {
            iterations: 6,
            branches: 10,
            truncated: false,
            vtime: 12,
        });
        sink.record(TelemetryEvent::CampaignAborted {
            campaign: 7,
            stage: "solve".into(),
            outcome: "timed-out".into(),
            vtime: 0,
        });

        // Counters mirror the event stream exactly.
        assert_eq!(reg.counter(Counter::SeedsExecuted), 5);
        assert_eq!(reg.counter(Counter::CoverageBranches), 10);
        assert_eq!(reg.counter(Counter::Replays), 3);
        assert_eq!(reg.counter(Counter::SmtSat), 2);
        assert_eq!(reg.counter(Counter::SmtUnsat), 1);
        assert_eq!(reg.counter(Counter::SmtUnknown), 1);
        assert_eq!(reg.counter(Counter::SmtPropagations), 28);
        assert_eq!(reg.counter(Counter::CacheHitsCampaign), 1);
        assert_eq!(reg.counter(Counter::Flips), 1);
        assert_eq!(reg.counter(Counter::CampaignsOk), 1);
        assert_eq!(reg.counter(Counter::CampaignsTimedOut), 1);

        // And the decorated sink recorded every event unchanged.
        let events = sink.into_inner().take();
        assert_eq!(events.len(), 16);

        // Cross-check against the PR 3 aggregator over the same stream.
        let mut metrics = Metrics::new();
        for ev in &events {
            metrics.observe(ev);
        }
        assert_eq!(metrics.seeds, reg.counter(Counter::SeedsExecuted));
        assert_eq!(
            metrics.coverage_gained,
            reg.counter(Counter::CoverageBranches)
        );
        assert_eq!(metrics.replays, reg.counter(Counter::Replays));
        assert_eq!(metrics.smt_sat, reg.counter(Counter::SmtSat));
        assert_eq!(metrics.flips, reg.counter(Counter::Flips));
    }

    #[test]
    fn mirror_forwards_stage_timing_without_counting() {
        let reg = leaked_registry();
        let mut sink = MirrorSink::new(Recorder::new(), reg);
        sink.record(TelemetryEvent::StageTiming {
            stage: Stage::Execute,
            dur_us: 100,
            vtime: 100,
        });
        for c in Counter::ALL {
            assert_eq!(reg.counter(*c), 0, "{:?} must stay 0", c);
        }
        assert_eq!(sink.into_inner().take().len(), 1);
    }

    #[test]
    fn metrics_json_uses_prometheus_series_names() {
        let mut m = Metrics::new();
        m.finished = 3;
        m.seeds = 120;
        m.coverage_gained = 45;
        m.smt_sat = 9;
        m.aborted.insert("timed-out".to_string(), 2);
        let json = metrics_json(&m);
        // The repo's own flat-JSON parser must read the dump back; keys are
        // unescaped Prometheus series names.
        let fields = parse_json_fields(&json).expect("parseable dump");
        let get = |k: &str| fields.get(k).and_then(|v| v.as_num());
        assert_eq!(get("wasai_campaigns_total{outcome=\"ok\"}"), Some(3));
        assert_eq!(get("wasai_campaigns_total{outcome=\"timed-out\"}"), Some(2));
        assert_eq!(get("wasai_seeds_executed_total"), Some(120));
        assert_eq!(get("wasai_coverage_branches_total"), Some(45));
        assert_eq!(get("wasai_smt_queries_total{outcome=\"sat\"}"), Some(9));
    }

    #[test]
    fn monitor_report_renders_stalls() {
        let report = MonitorReport {
            ok: 3,
            failed: 1,
            panicked: 0,
            timed_out: 0,
            crashed: 1,
            worker_restarts: 2,
            hb_overflow: 0,
            total: 8,
            exec_per_sec: 120.0,
            coverage_pct: 42.5,
            cache_hit_rate: 0.25,
            eta: Some(Duration::from_secs(9)),
            stalled: vec![StallReport {
                slot: 1,
                campaign: 5,
                idle_ms: 4000,
                stage: obs::Stage::Solve,
                ticks: 17,
            }],
        };
        let line = report.to_string();
        assert!(line.contains("5/8 campaigns"), "{line}");
        assert!(line.contains("ok 3"), "{line}");
        assert!(line.contains(", crashed 1)"), "{line}");
        assert!(line.contains("| restarts 2"), "{line}");
        assert!(
            !line.contains("hb-overflow"),
            "zero overflow stays quiet: {line}"
        );
        assert!(line.contains("cov 42.5%"), "{line}");
        assert!(line.contains("cache 25%"), "{line}");
        assert!(line.contains("eta 9s"), "{line}");
        assert!(
            line.contains("STALLED: campaign 5 (solve for 4s)"),
            "{line}"
        );
    }
}
