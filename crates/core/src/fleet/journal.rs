//! Durable outcome journal: append-only JSONL checkpoints for `audit-dir`.
//!
//! A sweep over a wild corpus runs for hours; losing the whole run to one
//! supervisor SIGKILL is not acceptable (ROADMAP item 1). The journal
//! records each **completed** campaign's outcome as one self-describing,
//! digest-protected JSON line, so a later `--resume` run can restore those
//! slots verbatim and re-run only the unfinished campaigns — emitting an
//! aggregate report byte-identical to an undisturbed run, because every
//! deterministic field travels through the record.
//!
//! # Format
//!
//! Line 1 is the header, binding the journal to one exact sweep:
//!
//! ```text
//! {"v":2,"kind":"wasai-journal","seed":5,"campaigns":6,"corpus":"a1b2…"}
//! ```
//!
//! `corpus` is an FNV-1a digest over the sorted contract names, so a
//! journal can never be resumed against a different directory, seed, or
//! corpus size. Each subsequent line is one [`OutcomeRecord`]:
//!
//! ```text
//! {"v":2,"index":3,"contract":"c.wasm","outcome":"ok","stage":"-",
//!  "detail":"","seed":6,"truncated":false,"branches":14,"findings":"",
//!  "virtual_us":812345,"iterations":64,"smt_queries":3,"exec_us":800000,
//!  "solve_us":12345,"elapsed_ms":17,"digest":"9f0e…"}
//! ```
//!
//! `digest` covers every deterministic field (everything except
//! `elapsed_ms`, which is wall clock); a record whose digest does not
//! re-derive is rejected, so a torn or bit-rotted line can never smuggle a
//! wrong outcome into a resumed report.
//!
//! # Atomicity and durability contract
//!
//! - The header is written to a `<path>.tmp` sibling, fsync'd, and
//!   **renamed** into place (then the directory is fsync'd), so a journal
//!   either exists with a valid header or not at all.
//! - Records are appended as one `write` each and fsync'd (`sync_data`)
//!   per append: after [`Journal::append`] returns, that outcome survives a
//!   process kill *and* a power cut.
//! - The parser tolerates exactly one torn write: a **final** line without
//!   a trailing newline, or an unparsable final line, is dropped (and
//!   truncated away before new appends). Corruption anywhere earlier is a
//!   hard error — silent data loss in the middle of a journal means the
//!   file is not what we wrote, and resuming from it would lie.
//!
//! Campaigns lost to a worker crash are **not** journaled: `crashed` is a
//! statement about the fleet, not the contract, so a resume gives those
//! campaigns a fresh chance instead of pinning the crash into the report.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::telemetry::{json_escape, parse_json_fields};

/// Journal format version; bumped on any incompatible change.
///
/// v2 added the per-campaign timeline fields (`iterations`,
/// `smt_queries`, `exec_us`, `solve_us`) feeding the audit timelines and
/// the `--profile-out` folded stacks.
pub const JOURNAL_VERSION: u64 = 2;

/// 64-bit FNV-1a, the repo's standard tiny content digest.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    const fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Feed one field plus a separator byte, so adjacent fields can never
    /// alias ("ab"+"c" vs "a"+"bc").
    fn field(&mut self, bytes: &[u8]) {
        self.write(bytes);
        self.write(&[0x1f]);
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Digest over the sorted contract names — the journal's corpus identity.
pub fn corpus_digest(names: &[String]) -> u64 {
    let mut h = Fnv::new();
    for n in names {
        h.field(n.as_bytes());
    }
    h.finish()
}

/// The sweep identity a journal is bound to (header line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalMeta {
    /// Sweep seed (campaign seeds derive from it by index).
    pub seed: u64,
    /// Number of campaigns in the sweep (sorted corpus size).
    pub campaigns: usize,
    /// [`corpus_digest`] over the sorted contract names.
    pub corpus: u64,
}

impl JournalMeta {
    /// The meta for a sweep of `names` (already sorted) at `seed`.
    pub fn new(seed: u64, names: &[String]) -> JournalMeta {
        JournalMeta {
            seed,
            campaigns: names.len(),
            corpus: corpus_digest(names),
        }
    }

    fn header_line(&self) -> String {
        format!(
            "{{\"v\":{JOURNAL_VERSION},\"kind\":\"wasai-journal\",\"seed\":{},\"campaigns\":{},\"corpus\":\"{:016x}\"}}",
            self.seed, self.campaigns, self.corpus,
        )
    }

    fn parse(line: &str) -> Result<JournalMeta, String> {
        let f = parse_json_fields(line).map_err(|e| format!("journal header: {e}"))?;
        let num = |key: &str| {
            f.get(key)
                .and_then(|v| v.as_num())
                .ok_or_else(|| format!("journal header: missing numeric field {key:?}"))
        };
        let kind = f.get("kind").and_then(|v| v.as_str()).unwrap_or_default();
        if kind != "wasai-journal" {
            return Err(format!(
                "journal header: kind {kind:?} is not \"wasai-journal\""
            ));
        }
        let v = num("v")?;
        if v != JOURNAL_VERSION {
            return Err(format!(
                "journal header: version {v} unsupported (expected {JOURNAL_VERSION})"
            ));
        }
        let corpus = f
            .get("corpus")
            .and_then(|v| v.as_str())
            .ok_or("journal header: missing corpus digest")
            .and_then(|s| {
                u64::from_str_radix(s, 16).map_err(|_| "journal header: bad corpus digest")
            })
            .map_err(str::to_string)?;
        Ok(JournalMeta {
            seed: num("seed")?,
            campaigns: num("campaigns")? as usize,
            corpus,
        })
    }
}

/// One completed campaign's outcome, with every field the aggregate report
/// needs to render that campaign's verdict and triage lines byte-for-byte.
///
/// This is also the wire format of the supervised fleet's status protocol:
/// workers print one record line per completed campaign, the supervisor
/// parses (digest-checking) and re-emits them into the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutcomeRecord {
    /// Campaign index in the sorted corpus.
    pub index: usize,
    /// Contract file name.
    pub contract: String,
    /// Outcome tag: `ok`, `failed`, `panicked`, `timed-out`, or `crashed`.
    pub outcome: String,
    /// Stage the campaign died in (`-` for successes).
    pub stage: String,
    /// Failure detail (empty for successes).
    pub detail: String,
    /// The campaign's repro seed (`sweep_seed ^ index`).
    pub seed: u64,
    /// Whether the report was truncated by the deadline watchdog.
    pub truncated: bool,
    /// Branches covered (0 for non-ok outcomes).
    pub branches: u64,
    /// Vulnerability classes found, display-joined with `", "` (empty for
    /// clean or non-ok campaigns) — exactly the verdict line's rendering.
    pub findings: String,
    /// Virtual microseconds the campaign simulated (0 for non-ok).
    pub virtual_us: u64,
    /// Fuzz iterations the campaign ran (0 for non-ok).
    pub iterations: u64,
    /// SMT queries the campaign issued (0 for non-ok).
    pub smt_queries: u64,
    /// Virtual microseconds charged to execution (0 for non-ok). With
    /// `solve_us` this partitions `virtual_us` — the clock only advances
    /// through execution and solver charges.
    pub exec_us: u64,
    /// Virtual microseconds charged to the SMT solver (0 for non-ok).
    pub solve_us: u64,
    /// Wall-clock milliseconds the campaign consumed. Excluded from the
    /// digest: wall clock is honest history, not identity.
    pub elapsed_ms: u64,
}

impl OutcomeRecord {
    /// True when the campaign completed and produced a report.
    pub fn is_ok(&self) -> bool {
        self.outcome == "ok"
    }

    /// Digest over the deterministic fields (everything but `elapsed_ms`).
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.field(self.index.to_string().as_bytes());
        h.field(self.contract.as_bytes());
        h.field(self.outcome.as_bytes());
        h.field(self.stage.as_bytes());
        h.field(self.detail.as_bytes());
        h.field(self.seed.to_string().as_bytes());
        h.field(&[u8::from(self.truncated)]);
        h.field(self.branches.to_string().as_bytes());
        h.field(self.findings.as_bytes());
        h.field(self.virtual_us.to_string().as_bytes());
        h.field(self.iterations.to_string().as_bytes());
        h.field(self.smt_queries.to_string().as_bytes());
        h.field(self.exec_us.to_string().as_bytes());
        h.field(self.solve_us.to_string().as_bytes());
        h.finish()
    }

    /// Render the record as its journal/wire line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"v\":{JOURNAL_VERSION},\"index\":{},\"contract\":\"{}\",\"outcome\":\"{}\",\"stage\":\"{}\",\"detail\":\"{}\",\"seed\":{},\"truncated\":{},\"branches\":{},\"findings\":\"{}\",\"virtual_us\":{},\"iterations\":{},\"smt_queries\":{},\"exec_us\":{},\"solve_us\":{},\"elapsed_ms\":{},\"digest\":\"{:016x}\"}}",
            self.index,
            json_escape(&self.contract),
            self.outcome,
            self.stage,
            json_escape(&self.detail),
            self.seed,
            self.truncated,
            self.branches,
            json_escape(&self.findings),
            self.virtual_us,
            self.iterations,
            self.smt_queries,
            self.exec_us,
            self.solve_us,
            self.elapsed_ms,
            self.digest(),
        )
    }

    /// Parse and digest-check one record line.
    ///
    /// # Errors
    ///
    /// Malformed JSON, missing fields, or a digest that does not re-derive
    /// from the parsed fields.
    pub fn parse(line: &str) -> Result<OutcomeRecord, String> {
        let f = parse_json_fields(line)?;
        let num = |key: &str| {
            f.get(key)
                .and_then(|v| v.as_num())
                .ok_or_else(|| format!("record: missing numeric field {key:?}"))
        };
        let text = |key: &str| {
            f.get(key)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("record: missing string field {key:?}"))
        };
        let v = num("v")?;
        if v != JOURNAL_VERSION {
            return Err(format!("record: version {v} unsupported"));
        }
        let rec = OutcomeRecord {
            index: num("index")? as usize,
            contract: text("contract")?,
            outcome: text("outcome")?,
            stage: text("stage")?,
            detail: text("detail")?,
            seed: num("seed")?,
            truncated: f
                .get("truncated")
                .and_then(|v| v.as_bool())
                .ok_or("record: missing boolean field \"truncated\"")?,
            branches: num("branches")?,
            findings: text("findings")?,
            virtual_us: num("virtual_us")?,
            iterations: num("iterations")?,
            smt_queries: num("smt_queries")?,
            exec_us: num("exec_us")?,
            solve_us: num("solve_us")?,
            elapsed_ms: num("elapsed_ms")?,
        };
        let stated = f
            .get("digest")
            .and_then(|v| v.as_str())
            .ok_or("record: missing digest")
            .and_then(|s| u64::from_str_radix(s, 16).map_err(|_| "record: bad digest"))
            .map_err(str::to_string)?;
        let derived = rec.digest();
        if stated != derived {
            return Err(format!(
                "record for index {}: digest mismatch (stated {stated:016x}, derived {derived:016x})",
                rec.index
            ));
        }
        Ok(rec)
    }
}

/// An open, append-mode journal. Create with [`Journal::create`] or
/// [`Journal::open_or_resume`].
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Create a fresh journal at `path`: the header line lands via
    /// tmp+rename (fsync'd file and directory), so the journal exists
    /// atomically or not at all. An existing file at `path` is replaced.
    pub fn create(path: &Path, meta: &JournalMeta) -> io::Result<Journal> {
        let tmp = tmp_sibling(path);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(meta.header_line().as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        sync_parent_dir(path);
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Open `path` for resuming the sweep described by `meta`: validate the
    /// header, load every intact record, drop (and truncate away) a torn
    /// final line, and return the journal positioned for further appends.
    ///
    /// A missing file is not an error — it becomes a fresh journal with no
    /// restored records, so `--resume` doubles as "journal this run".
    ///
    /// # Errors
    ///
    /// A header that does not match `meta` (different seed, corpus, or
    /// count), corruption anywhere except the final line, a record index
    /// out of range, or I/O failure.
    pub fn open_or_resume(
        path: &Path,
        meta: &JournalMeta,
    ) -> Result<(Journal, Vec<OutcomeRecord>), String> {
        if !path.exists() {
            let j = Journal::create(path, meta).map_err(|e| format!("{}: {e}", path.display()))?;
            return Ok((j, Vec::new()));
        }
        let display = path.display();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| format!("{display}: {e}"))?;
        let mut text = String::new();
        file.read_to_string(&mut text)
            .map_err(|e| format!("{display}: {e}"))?;

        // Split keeping byte offsets so a torn tail can be truncated away.
        let mut lines: Vec<(usize, &str)> = Vec::new();
        let mut offset = 0usize;
        for line in text.split_inclusive('\n') {
            lines.push((offset, line));
            offset += line.len();
        }
        let complete = |line: &str| line.ends_with('\n');

        let Some(&(_, header)) = lines.first() else {
            return Err(format!("{display}: empty journal (no header line)"));
        };
        if !complete(header) {
            return Err(format!("{display}: torn header line"));
        }
        let found = JournalMeta::parse(header.trim_end())?;
        if &found != meta {
            return Err(format!(
                "{display}: journal is for a different sweep (journal: seed {}, {} campaigns, corpus {:016x}; this run: seed {}, {} campaigns, corpus {:016x})",
                found.seed, found.campaigns, found.corpus, meta.seed, meta.campaigns, meta.corpus,
            ));
        }

        let mut records: Vec<OutcomeRecord> = Vec::new();
        let mut seen = vec![false; meta.campaigns];
        let mut keep_bytes = text.len();
        for (li, &(off, line)) in lines.iter().enumerate().skip(1) {
            let last = li == lines.len() - 1;
            let parsed = if complete(line) {
                OutcomeRecord::parse(line.trim_end())
            } else {
                Err("torn line (no trailing newline)".to_string())
            };
            match parsed {
                Ok(rec) => {
                    if rec.index >= meta.campaigns {
                        return Err(format!(
                            "{display} line {}: record index {} out of range (sweep has {} campaigns)",
                            li + 1,
                            rec.index,
                            meta.campaigns
                        ));
                    }
                    // Duplicates can only arise from a crash between a
                    // worker finishing and the supervisor journaling; the
                    // campaign is deterministic, so first record wins.
                    if !std::mem::replace(&mut seen[rec.index], true) {
                        records.push(rec);
                    }
                }
                Err(e) if last => {
                    // The tolerated torn write: drop the tail and truncate
                    // so future appends start on a clean line boundary.
                    eprintln!("resume: dropping torn final journal line ({e})");
                    keep_bytes = off;
                }
                Err(e) => {
                    return Err(format!(
                        "{display} line {}: corrupt journal record ({e}) — corruption before the final line is not recoverable",
                        li + 1
                    ));
                }
            }
        }
        if keep_bytes < text.len() {
            file.set_len(keep_bytes as u64)
                .map_err(|e| format!("{display}: truncating torn tail: {e}"))?;
            file.sync_data().map_err(|e| format!("{display}: {e}"))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| format!("{display}: {e}"))?;
        Ok((
            Journal {
                file,
                path: path.to_path_buf(),
            },
            records,
        ))
    }

    /// Append one record durably: a single write of the full line, flushed
    /// and fsync'd before returning.
    pub fn append(&mut self, rec: &OutcomeRecord) -> io::Result<()> {
        let mut line = rec.to_jsonl();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()?;
        wasai_obs::inc(wasai_obs::Counter::JournalRecords);
        Ok(())
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Best-effort fsync of `path`'s parent directory, making the rename
/// durable. Failure is ignored: some filesystems refuse directory fsync,
/// and the record-level fsyncs still bound the loss to the header.
fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wasai-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn rec(index: usize, outcome: &str) -> OutcomeRecord {
        OutcomeRecord {
            index,
            contract: format!("c{index:04}.wasm"),
            outcome: outcome.to_string(),
            stage: if outcome == "ok" { "-" } else { "solve" }.to_string(),
            detail: if outcome == "ok" {
                String::new()
            } else {
                "it \"broke\"\nbadly".to_string()
            },
            seed: 5 ^ index as u64,
            truncated: false,
            branches: 10 + index as u64,
            findings: if index.is_multiple_of(2) {
                String::new()
            } else {
                "Fake EOS, Rollback".to_string()
            },
            virtual_us: 1000 * index as u64,
            iterations: 8 * index as u64,
            smt_queries: index as u64,
            exec_us: 900 * index as u64,
            solve_us: 100 * index as u64,
            elapsed_ms: 17,
        }
    }

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("c{i:04}.wasm")).collect()
    }

    #[test]
    fn record_round_trips_with_escapes() {
        for r in [rec(0, "ok"), rec(1, "panicked"), rec(3, "timed-out")] {
            let line = r.to_jsonl();
            assert_eq!(OutcomeRecord::parse(&line).expect("round trip"), r);
        }
    }

    #[test]
    fn digest_excludes_wall_clock_but_covers_outcome() {
        let a = rec(1, "ok");
        let mut b = a.clone();
        b.elapsed_ms = 9999;
        assert_eq!(a.digest(), b.digest(), "wall clock is not identity");
        let mut c = a.clone();
        c.outcome = "failed".to_string();
        assert_ne!(a.digest(), c.digest());
        let mut d = a.clone();
        d.branches += 1;
        assert_ne!(a.digest(), d.digest());
    }

    #[test]
    fn tampered_record_is_rejected() {
        let line = rec(2, "ok").to_jsonl();
        let tampered = line.replace("\"outcome\":\"ok\"", "\"outcome\":\"failed\"");
        assert_ne!(line, tampered);
        let err = OutcomeRecord::parse(&tampered).expect_err("tampering must not parse");
        assert!(err.contains("digest mismatch"), "{err}");
    }

    #[test]
    fn create_append_resume_restores_records() {
        let dir = scratch("roundtrip");
        let path = dir.join("sweep.journal");
        let meta = JournalMeta::new(5, &names(4));
        let mut j = Journal::create(&path, &meta).expect("create");
        j.append(&rec(0, "ok")).expect("append");
        j.append(&rec(2, "failed")).expect("append");
        drop(j);
        let (_j, records) = Journal::open_or_resume(&path, &meta).expect("resume");
        assert_eq!(records, vec![rec(0, "ok"), rec(2, "failed")]);
    }

    #[test]
    fn missing_file_resumes_as_fresh_journal() {
        let dir = scratch("fresh");
        let path = dir.join("new.journal");
        let meta = JournalMeta::new(1, &names(2));
        let (j, records) = Journal::open_or_resume(&path, &meta).expect("fresh");
        assert!(records.is_empty());
        assert!(j.path().exists(), "header must be written");
    }

    #[test]
    fn torn_final_line_is_dropped_and_truncated() {
        let dir = scratch("torn");
        let path = dir.join("sweep.journal");
        let meta = JournalMeta::new(5, &names(4));
        let mut j = Journal::create(&path, &meta).expect("create");
        j.append(&rec(0, "ok")).expect("append");
        j.append(&rec(1, "ok")).expect("append");
        drop(j);
        // Simulate a mid-write kill: chop the last record in half.
        let text = std::fs::read_to_string(&path).expect("read");
        let cut = text.len() - 25;
        std::fs::write(&path, &text[..cut]).expect("tear");

        let (mut j, records) = Journal::open_or_resume(&path, &meta).expect("resume");
        assert_eq!(records, vec![rec(0, "ok")], "torn record must be dropped");
        // The torn bytes are gone: a fresh append starts a clean line.
        j.append(&rec(3, "ok")).expect("append after tear");
        drop(j);
        let (_j, records) = Journal::open_or_resume(&path, &meta).expect("re-resume");
        assert_eq!(records, vec![rec(0, "ok"), rec(3, "ok")]);
    }

    #[test]
    fn mid_file_corruption_is_fatal() {
        let dir = scratch("midfile");
        let path = dir.join("sweep.journal");
        let meta = JournalMeta::new(5, &names(4));
        let mut j = Journal::create(&path, &meta).expect("create");
        j.append(&rec(0, "ok")).expect("append");
        j.append(&rec(1, "ok")).expect("append");
        drop(j);
        let text = std::fs::read_to_string(&path).expect("read");
        let lines: Vec<&str> = text.lines().collect();
        let mangled = format!("{}\ngarbage not json\n{}\n", lines[0], lines[2]);
        std::fs::write(&path, mangled).expect("mangle");
        let err = Journal::open_or_resume(&path, &meta).expect_err("must fail");
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn mismatched_sweep_is_rejected() {
        let dir = scratch("mismatch");
        let path = dir.join("sweep.journal");
        let meta = JournalMeta::new(5, &names(4));
        Journal::create(&path, &meta).expect("create");
        let other_seed = JournalMeta::new(6, &names(4));
        assert!(Journal::open_or_resume(&path, &other_seed)
            .expect_err("seed mismatch")
            .contains("different sweep"));
        let other_corpus = JournalMeta::new(5, &names(5));
        assert!(Journal::open_or_resume(&path, &other_corpus)
            .expect_err("corpus mismatch")
            .contains("different sweep"));
    }

    #[test]
    fn duplicate_indices_keep_first_record() {
        let dir = scratch("dup");
        let path = dir.join("sweep.journal");
        let meta = JournalMeta::new(5, &names(4));
        let mut j = Journal::create(&path, &meta).expect("create");
        j.append(&rec(1, "ok")).expect("append");
        let mut later = rec(1, "ok");
        later.elapsed_ms = 99;
        j.append(&later).expect("append dup");
        drop(j);
        let (_j, records) = Journal::open_or_resume(&path, &meta).expect("resume");
        assert_eq!(records, vec![rec(1, "ok")]);
    }

    #[test]
    fn out_of_range_index_is_fatal() {
        let dir = scratch("range");
        let path = dir.join("sweep.journal");
        let meta = JournalMeta::new(5, &names(2));
        let mut j = Journal::create(&path, &meta).expect("create");
        j.append(&rec(7, "ok")).expect("append");
        drop(j);
        // Appending never validates (the writer knows its indices); the
        // reader is the gate.
        let err = Journal::open_or_resume(&path, &meta).expect_err("must fail");
        assert!(err.contains("out of range"), "{err}");
    }
}
