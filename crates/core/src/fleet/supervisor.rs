//! Process-level fleet supervision: shard campaigns across worker
//! subprocesses, survive their deaths, converge deterministically.
//!
//! Thread-level isolation ([`super::run_jobs_isolated`]) contains panics
//! and hangs, but not the failures that take the whole process with them —
//! OOM kills, SIGKILL, a VM bug that corrupts the heap. The supervisor
//! promotes the failure domain to the process: the corpus is sharded
//! across `procs` worker subprocesses (each running the ordinary thread
//! fleet internally), and each worker streams a status protocol back over
//! its stdout pipe:
//!
//! ```text
//! {"v":2,"index":3,…,"digest":"…"}        one OutcomeRecord per campaign
//! {"type":"hb","slot":0,"campaign":3,"ticks":412,"stage":"solve"}
//! {"type":"stats","seeds":15023}
//! {"type":"metrics","v":1,"counters":"…","gauges":"…","hists":"…","digest":"…"}
//! {"type":"done"}
//! ```
//!
//! Outcome lines are digest-checked [`OutcomeRecord`]s — the same format
//! the durable journal stores — so "merge the pipe" and "replay the
//! journal" are the same code path. Heartbeat lines bridge the worker's
//! PR 5 heartbeat table into the supervisor's, so the existing
//! `ProgressMonitor` stall detector watches subprocess campaigns exactly
//! like threads.
//!
//! Metrics frames carry the worker's **entire** cumulative registry — every
//! counter, gauge, and histogram bucket array, digest-checked
//! ([`obs::RegistrySnapshot`]). The supervisor merges each frame as a
//! *delta against the last frame from the same spawn generation*: counters
//! and histogram cells are `frame − last_frame` (applied to the global
//! registry as fleet totals and to [`obs::fleet`] as `shard="N"` series),
//! gauges are levels (latest value wins, fleet value is the per-shard sum).
//! A respawn resets the per-shard baseline to zero, and stale-generation
//! frames (a killed worker's drained tail) are rejected outright — so a
//! killed-and-retried worker can never double-count: whatever its ghost
//! already contributed stays, and the replacement re-reports from zero.
//! Losing a frame loses only latency, never data, because the next frame's
//! absolutes supersede it.
//!
//! # Failure policy
//!
//! A worker that exits without `done` (or goes `stall_timeout` without any
//! progress — no outcome, no fresh heartbeat tick — and is killed) is
//! re-dispatched with only its **unfinished** indices, after an
//! exponential backoff, at most `max_attempts` total spawns per shard.
//! When attempts are exhausted the shard's remaining campaigns are marked
//! `crashed` in their index-keyed slots and the sweep completes.
//!
//! # Determinism
//!
//! Campaign seeds derive from the sweep seed and the campaign's index in
//! the sorted corpus — never from the shard layout — so any `procs` value,
//! any kill schedule, and any retry interleaving converge to byte-identical
//! completed outcomes. The supervisor only decides *whether* a campaign
//! completed, never *what* it produced.

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, BufReader};
use std::process::Child;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use wasai_obs as obs;

use super::journal::OutcomeRecord;
use super::CampaignOutcome;

/// Tuning for one supervised sweep.
#[derive(Debug, Clone)]
pub struct SupervisorOpts {
    /// Worker subprocesses to shard the corpus across (≥ 1).
    pub procs: usize,
    /// Total spawn attempts per shard before its remaining campaigns are
    /// marked crashed (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub backoff: Duration,
    /// Kill and re-dispatch a worker with no observable progress (no
    /// outcome, no heartbeat advance) for this long. `None` disables the
    /// process-level stall detector.
    pub stall_timeout: Option<Duration>,
    /// Event-loop poll cadence (message wait timeout and housekeeping
    /// interval).
    pub poll: Duration,
}

impl Default for SupervisorOpts {
    fn default() -> Self {
        SupervisorOpts {
            procs: 1,
            max_attempts: 3,
            backoff: Duration::from_millis(100),
            stall_timeout: Some(Duration::from_secs(120)),
            poll: Duration::from_millis(25),
        }
    }
}

/// One parsed worker status line.
#[derive(Debug)]
enum WorkerMsg {
    /// A completed campaign's digest-checked record.
    Outcome(OutcomeRecord),
    /// A relayed heartbeat slot reading.
    Heartbeat {
        slot: usize,
        campaign: u64,
        ticks: u64,
        stage: String,
    },
    /// Process-wide cumulative seed counter (for the exec/s readout).
    Stats { seeds: u64 },
    /// A full cumulative registry snapshot (boxed: ~50 series of state).
    Metrics(Box<obs::RegistrySnapshot>),
    /// The worker finished its loop cleanly.
    Done,
}

/// Parse one line of the worker status protocol. `None` for lines that are
/// not ours (a worker's dependencies could print to stdout); malformed
/// *protocol* lines also come back as `None` — the campaign they described
/// stays unfinished and is simply re-run, which is always safe.
fn parse_worker_line(line: &str) -> Option<WorkerMsg> {
    let trimmed = line.trim();
    if trimmed.starts_with("{\"v\":") {
        return OutcomeRecord::parse(trimmed).ok().map(WorkerMsg::Outcome);
    }
    if !trimmed.starts_with("{\"type\":") {
        return None;
    }
    let fields = crate::telemetry::parse_json_fields(trimmed).ok()?;
    let num = |key: &str| fields.get(key).and_then(|v| v.as_num());
    match fields.get("type").and_then(|v| v.as_str())? {
        "hb" => Some(WorkerMsg::Heartbeat {
            slot: num("slot")? as usize,
            campaign: num("campaign")?,
            ticks: num("ticks")?,
            stage: fields
                .get("stage")
                .and_then(|v| v.as_str())
                .unwrap_or("campaign")
                .to_string(),
        }),
        "stats" => Some(WorkerMsg::Stats {
            seeds: num("seeds")?,
        }),
        // A malformed metrics frame (torn line, digest tamper, version
        // skew) is dropped like any other bad protocol line: the next
        // frame's cumulative absolutes supersede whatever this one carried.
        "metrics" => {
            let text = |key: &str| fields.get(key).and_then(|v| v.as_str());
            obs::RegistrySnapshot::from_parts(
                num("v")?,
                text("counters")?,
                text("gauges")?,
                text("hists")?,
                text("digest")?,
            )
            .ok()
            .map(|snap| WorkerMsg::Metrics(Box::new(snap)))
        }
        "done" => Some(WorkerMsg::Done),
        _ => None,
    }
}

/// Events the per-worker reader threads feed the supervisor loop, tagged
/// with the shard and its spawn generation (stale generations — a killed
/// worker's tail — still deliver outcomes but never deaths).
enum Event {
    Msg(usize, u32, WorkerMsg),
    Eof(usize, u32),
}

struct Shard {
    /// Indices not yet completed (re-dispatch set).
    remaining: BTreeSet<usize>,
    /// Spawn attempts so far.
    attempts: u32,
    /// Spawn generation of the current child (== attempts at spawn time).
    generation: u32,
    child: Option<Child>,
    readers: Vec<std::thread::JoinHandle<()>>,
    /// Wall time of the last observed progress (spawn, outcome, or
    /// heartbeat tick advance).
    last_progress: Instant,
    /// Last seen per-worker-slot tick counts (stall detection input).
    last_ticks: BTreeMap<usize, u64>,
    /// Last seen cumulative seed count (monitoring readout).
    last_seeds: u64,
    /// Last merged metrics frame from the current generation — the delta
    /// baseline. Reset to zero on respawn, so a fresh worker's cumulative
    /// counts merge in full without double-counting the dead one's.
    last_snap: Box<obs::RegistrySnapshot>,
    /// When to respawn after a death (exponential backoff).
    retry_at: Option<Instant>,
    /// Description of the most recent process failure.
    last_err: String,
    /// All attempts exhausted; remaining campaigns are crashed.
    dead: bool,
    /// Saw `done` with nothing remaining.
    done: bool,
    /// Supervisor-side heartbeat slots claimed per worker slot.
    hb_slots: BTreeMap<usize, usize>,
}

impl Shard {
    fn finished(&self) -> bool {
        self.done || self.dead || self.remaining.is_empty()
    }
}

/// Run a supervised sweep over `pending` (global campaign indices into the
/// sorted corpus `names`), spawning workers with `spawn(attempt, indices)`.
///
/// `on_record` fires once per **completed** campaign record, as it arrives
/// (journal append point). The returned vector holds one record per
/// pending index — completed records verbatim, plus fabricated `crashed`
/// records for campaigns lost with their shard — in index order.
///
/// # Errors
///
/// Only setup failures (first spawn of a shard's first attempt) abort the
/// sweep; once running, every failure is contained in a shard.
pub fn run_supervised<F>(
    opts: &SupervisorOpts,
    names: &[String],
    seed: u64,
    pending: &[usize],
    mut spawn: F,
    mut on_record: impl FnMut(&OutcomeRecord),
) -> Result<Vec<OutcomeRecord>, String>
where
    F: FnMut(u32, &[usize]) -> std::io::Result<Child>,
{
    let procs = opts.procs.max(1).min(pending.len().max(1));
    let (tx, rx) = mpsc::channel::<Event>();

    // Contiguous sharding: shard k takes the k-th chunk of pending. The
    // layout is a scheduling detail — results are keyed by global index.
    let chunk = pending.len().div_ceil(procs.max(1)).max(1);
    let mut shards: Vec<Shard> = pending
        .chunks(chunk)
        .map(|indices| Shard {
            remaining: indices.iter().copied().collect(),
            attempts: 0,
            generation: 0,
            child: None,
            readers: Vec::new(),
            last_progress: Instant::now(),
            last_ticks: BTreeMap::new(),
            last_seeds: 0,
            last_snap: Box::new(obs::RegistrySnapshot::zero()),
            retry_at: None,
            last_err: String::new(),
            dead: false,
            done: false,
            hb_slots: BTreeMap::new(),
        })
        .collect();

    let mut results: BTreeMap<usize, OutcomeRecord> = BTreeMap::new();

    for (wid, shard) in shards.iter_mut().enumerate() {
        spawn_shard(shard, wid, &mut spawn, &tx)
            .map_err(|e| format!("spawning worker {wid}: {e}"))?;
    }

    while !shards.iter().all(Shard::finished) {
        match rx.recv_timeout(opts.poll) {
            Ok(Event::Msg(wid, generation, msg)) => {
                let shard = &mut shards[wid];
                let stale = generation != shard.generation;
                match msg {
                    WorkerMsg::Outcome(rec) => {
                        // Outcomes are valid from any generation: a killed
                        // worker's drained tail is still true, completed
                        // work (the record is digest-checked). The worker
                        // counts its own outcomes into its registry, which
                        // metrics frames deliver — counting here too would
                        // double every campaign in the fleet totals.
                        shard.remaining.remove(&rec.index);
                        shard.last_progress = Instant::now();
                        if let Entry::Vacant(slot) = results.entry(rec.index) {
                            on_record(&rec);
                            slot.insert(rec);
                        }
                    }
                    WorkerMsg::Heartbeat {
                        slot,
                        campaign,
                        ticks,
                        stage,
                    } if !stale => {
                        let advanced = shard
                            .last_ticks
                            .insert(slot, ticks)
                            .is_none_or(|prev| ticks > prev);
                        if advanced {
                            shard.last_progress = Instant::now();
                        }
                        bridge_heartbeat(shard, slot, campaign, ticks, &stage);
                    }
                    // Seed counts now travel in metrics frames (as
                    // SeedsExecuted deltas); the stats line survives as a
                    // lightweight protocol heartbeat and readout.
                    WorkerMsg::Stats { seeds } if !stale => {
                        shard.last_seeds = seeds;
                    }
                    WorkerMsg::Metrics(snap) => {
                        merge_metrics_frame(shard, wid, stale, snap);
                    }
                    // `done` with campaigns missing is a protocol breach;
                    // the exit handler treats it as a death.
                    WorkerMsg::Done if !stale && shard.remaining.is_empty() => {
                        shard.done = true;
                    }
                    _ => {}
                }
            }
            Ok(Event::Eof(wid, generation)) => {
                if generation == shards[wid].generation {
                    let status = reap(&mut shards[wid]);
                    handle_worker_loss(&mut shards[wid], wid, &status, opts);
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }

        // Housekeeping: stall kills and scheduled respawns.
        let now = Instant::now();
        for (wid, shard) in shards.iter_mut().enumerate() {
            if shard.finished() {
                continue;
            }
            if let (Some(timeout), Some(_)) = (opts.stall_timeout, shard.child.as_ref()) {
                if now.duration_since(shard.last_progress) >= timeout {
                    kill(shard);
                    // Orphan the dead child's pending EOF so it can't be
                    // double-counted as a second loss before the respawn.
                    shard.generation = u32::MAX;
                    let detail = format!("no progress for {:.1}s, killed", timeout.as_secs_f64());
                    handle_worker_loss(shard, wid, &detail, opts);
                }
            }
            if shard.retry_at.is_some_and(|at| now >= at) {
                shard.retry_at = None;
                obs::inc(obs::Counter::WorkerRestarts);
                eprintln!(
                    "supervisor: re-dispatching worker {wid} (attempt {}/{}, campaigns {})",
                    shard.attempts + 1,
                    opts.max_attempts,
                    fmt_indices(&shard.remaining),
                );
                if let Err(e) = spawn_shard(shard, wid, &mut spawn, &tx) {
                    let detail = format!("respawn failed: {e}");
                    handle_worker_loss(shard, wid, &detail, opts);
                }
            }
        }
    }

    // Tear down whatever is still running (all campaigns accounted for —
    // e.g. another shard's drained tail completed this shard's indices).
    for shard in &mut shards {
        kill(shard);
        end_bridged_heartbeats(shard);
        for handle in shard.readers.drain(..) {
            let _ = handle.join();
        }
    }
    drop(tx);

    // Fabricate crashed records for campaigns lost with a dead shard, via
    // the CampaignOutcome accessors so the triage vocabulary stays single-
    // sourced.
    let mut out = Vec::with_capacity(pending.len());
    for &i in pending {
        match results.remove(&i) {
            Some(rec) => out.push(rec),
            None => {
                let shard = shards.iter().find(|s| s.remaining.contains(&i));
                let outcome: CampaignOutcome<()> = CampaignOutcome::Crashed {
                    attempts: shard.map_or(0, |s| s.attempts),
                    detail: format!(
                        "worker process lost ({})",
                        shard.map_or("unknown", |s| s.last_err.as_str())
                    ),
                };
                obs::inc(obs::Counter::CampaignsCrashed);
                out.push(OutcomeRecord {
                    index: i,
                    contract: names.get(i).cloned().unwrap_or_default(),
                    outcome: outcome.kind().to_string(),
                    stage: outcome.stage().to_string(),
                    detail: outcome.detail(),
                    seed: seed ^ (i as u64),
                    truncated: false,
                    branches: 0,
                    findings: String::new(),
                    virtual_us: 0,
                    iterations: 0,
                    smt_queries: 0,
                    exec_us: 0,
                    solve_us: 0,
                    elapsed_ms: 0,
                });
            }
        }
    }
    Ok(out)
}

/// Spawn (or respawn) `shard`'s worker and wire its stdout to the event
/// channel. Increments the attempt/generation counters.
fn spawn_shard<F>(
    shard: &mut Shard,
    wid: usize,
    spawn: &mut F,
    tx: &mpsc::Sender<Event>,
) -> std::io::Result<()>
where
    F: FnMut(u32, &[usize]) -> std::io::Result<Child>,
{
    shard.attempts += 1;
    shard.generation = shard.attempts;
    shard.last_ticks.clear();
    shard.last_seeds = 0;
    // New process, new cumulative registry: the delta baseline restarts at
    // zero so the replacement's counts merge in full.
    *shard.last_snap = obs::RegistrySnapshot::zero();
    shard.last_progress = Instant::now();
    let indices: Vec<usize> = shard.remaining.iter().copied().collect();
    let mut child = spawn(shard.attempts, &indices)?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| std::io::Error::other("worker spawned without a piped stdout"))?;
    let generation = shard.generation;
    let tx = tx.clone();
    shard.readers.push(std::thread::spawn(move || {
        let reader = BufReader::new(stdout);
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if let Some(msg) = parse_worker_line(&line) {
                if tx.send(Event::Msg(wid, generation, msg)).is_err() {
                    return;
                }
            }
        }
        let _ = tx.send(Event::Eof(wid, generation));
    }));
    shard.child = Some(child);
    Ok(())
}

/// Merge one worker metrics frame into the fleet plane: the delta against
/// the shard's generation baseline lands in the supervisor's global
/// registry (fleet totals) and the per-shard store (`shard="N"` series).
///
/// Stale frames — a killed generation's drained tail — are rejected
/// outright: the ghost's last merged frame already stands as true work,
/// and the replacement's baseline is back at zero, so merging the tail
/// would double-count everything the ghost reported.
fn merge_metrics_frame(
    shard: &mut Shard,
    wid: usize,
    stale: bool,
    snap: Box<obs::RegistrySnapshot>,
) {
    if stale {
        obs::inc(obs::Counter::MetricsFramesRejected);
        return;
    }
    if !obs::enabled() {
        return;
    }
    let delta = snap.saturating_delta(&shard.last_snap);
    delta.apply_to(obs::global());
    obs::fleet().apply(wid, &delta);
    // Gauges are levels, not sums-of-deltas: the fleet value is the sum of
    // each shard's latest reading.
    obs::global().gauge_set(
        obs::Gauge::CampaignsRunning,
        obs::fleet().gauge_sum(obs::Gauge::CampaignsRunning),
    );
    obs::inc(obs::Counter::MetricsFramesMerged);
    shard.last_snap = snap;
}

/// A worker died (EOF + exit), stalled out, or failed to respawn: name the
/// lost shard, then either schedule a backed-off retry or mark it dead.
fn handle_worker_loss(shard: &mut Shard, wid: usize, detail: &str, opts: &SupervisorOpts) {
    if shard.finished() {
        shard.done = shard.remaining.is_empty();
        return;
    }
    shard.last_err = detail.to_string();
    end_bridged_heartbeats(shard);
    eprintln!(
        "supervisor: worker {wid} lost (campaigns {}): {detail}",
        fmt_indices(&shard.remaining),
    );
    if shard.attempts < opts.max_attempts {
        // Exponential backoff: base × 2^(retries so far).
        let backoff = opts.backoff * 2u32.saturating_pow(shard.attempts.saturating_sub(1));
        eprintln!(
            "supervisor: retrying worker {wid} in {:.2}s",
            backoff.as_secs_f64()
        );
        shard.retry_at = Some(Instant::now() + backoff);
    } else {
        eprintln!(
            "supervisor: worker {wid} exhausted {} attempt(s); marking campaigns {} crashed",
            opts.max_attempts,
            fmt_indices(&shard.remaining),
        );
        shard.dead = true;
    }
}

/// Wait for the current child (must have exited or been killed) and
/// describe its exit status.
fn reap(shard: &mut Shard) -> String {
    match shard.child.take() {
        Some(mut child) => match child.wait() {
            Ok(status) => format!("exited: {status}"),
            Err(e) => format!("wait failed: {e}"),
        },
        None => "no child".to_string(),
    }
}

/// Kill and reap the current child, if any.
fn kill(shard: &mut Shard) {
    if let Some(mut child) = shard.child.take() {
        let _ = child.kill();
        let _ = child.wait();
    }
}

/// Mirror a relayed worker heartbeat into the supervisor's own table so
/// the ProgressMonitor sees subprocess campaigns. Slots are claimed lazily
/// per (shard, worker-slot) and only when observability is on.
fn bridge_heartbeat(shard: &mut Shard, worker_slot: usize, campaign: u64, ticks: u64, stage: &str) {
    if !obs::enabled() {
        return;
    }
    let table = obs::heartbeats();
    let slot = *shard
        .hb_slots
        .entry(worker_slot)
        .or_insert_with(|| table.claim_slot());
    let known = table
        .snapshot()
        .into_iter()
        .find(|r| r.slot == slot)
        .map(|r| r.campaign);
    if known != Some(campaign) {
        table.begin(slot, campaign);
    }
    // One tick per relayed advance keeps `last_ms` fresh; the absolute
    // worker-side count is monitoring detail, not state.
    if ticks > 0 {
        table.tick(slot);
    }
    table.set_stage(slot, obs::Stage::from_name(stage));
}

/// Idle out every heartbeat slot bridged for `shard` (worker lost or sweep
/// over).
fn end_bridged_heartbeats(shard: &mut Shard) {
    if shard.hb_slots.is_empty() {
        return;
    }
    let table = obs::heartbeats();
    for (_, slot) in std::mem::take(&mut shard.hb_slots) {
        table.end(slot);
    }
}

fn fmt_indices(set: &BTreeSet<usize>) -> String {
    let mut s = String::new();
    for (n, i) in set.iter().enumerate() {
        if n == 8 {
            s.push_str(&format!("… ({} total)", set.len()));
            return s;
        }
        if n > 0 {
            s.push(',');
        }
        s.push_str(&i.to_string());
    }
    if s.is_empty() {
        s.push('-');
    }
    s
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::process::{Command, Stdio};

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("c{i:04}.wasm")).collect()
    }

    fn record(index: usize, seed: u64) -> OutcomeRecord {
        OutcomeRecord {
            index,
            contract: format!("c{index:04}.wasm"),
            outcome: "ok".to_string(),
            stage: "-".to_string(),
            detail: String::new(),
            seed: seed ^ index as u64,
            truncated: false,
            branches: 3,
            findings: String::new(),
            virtual_us: 100,
            iterations: 4,
            smt_queries: 1,
            exec_us: 90,
            solve_us: 10,
            elapsed_ms: 1,
        }
    }

    /// A worker that prints the given protocol lines via `sh` and exits
    /// with `code`.
    fn sh_worker(lines: &[String], code: i32) -> std::io::Result<Child> {
        let mut script = String::new();
        for l in lines {
            script.push_str("printf '%s\\n' '");
            script.push_str(l);
            script.push_str("'\n");
        }
        script.push_str(&format!("exit {code}\n"));
        Command::new("sh")
            .arg("-c")
            .arg(script)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
    }

    fn fast_opts(procs: usize) -> SupervisorOpts {
        SupervisorOpts {
            procs,
            max_attempts: 3,
            backoff: Duration::from_millis(5),
            stall_timeout: Some(Duration::from_secs(2)),
            poll: Duration::from_millis(5),
        }
    }

    #[test]
    fn merges_outcomes_from_clean_workers_in_index_order() {
        let names = names(5);
        let pending: Vec<usize> = (0..5).collect();
        let mut journaled = Vec::new();
        let out = run_supervised(
            &fast_opts(2),
            &names,
            7,
            &pending,
            |_, indices| {
                let mut lines: Vec<String> =
                    indices.iter().map(|&i| record(i, 7).to_jsonl()).collect();
                lines.push("{\"type\":\"done\"}".to_string());
                sh_worker(&lines, 0)
            },
            |rec| journaled.push(rec.index),
        )
        .expect("supervised run");
        assert_eq!(out.len(), 5);
        for (i, rec) in out.iter().enumerate() {
            assert_eq!(rec.index, i);
            assert_eq!(rec.outcome, "ok");
        }
        journaled.sort_unstable();
        assert_eq!(journaled, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn dead_worker_is_retried_and_converges() {
        let names = names(4);
        let pending: Vec<usize> = (0..4).collect();
        let mut spawns = Vec::new();
        let out = run_supervised(
            &fast_opts(1),
            &names,
            3,
            &pending,
            |attempt, indices| {
                spawns.push((attempt, indices.to_vec()));
                if attempt == 1 {
                    // First attempt: one outcome, then die without `done`.
                    sh_worker(&[record(0, 3).to_jsonl()], 1)
                } else {
                    let mut lines: Vec<String> =
                        indices.iter().map(|&i| record(i, 3).to_jsonl()).collect();
                    lines.push("{\"type\":\"done\"}".to_string());
                    sh_worker(&lines, 0)
                }
            },
            |_| {},
        )
        .expect("supervised run");
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|r| r.outcome == "ok"));
        assert_eq!(spawns.len(), 2, "exactly one retry");
        assert_eq!(spawns[1].0, 2);
        assert_eq!(
            spawns[1].1,
            vec![1, 2, 3],
            "retry re-dispatches only unfinished campaigns"
        );
    }

    #[test]
    fn exhausted_retries_mark_remaining_crashed() {
        let names = names(3);
        let pending: Vec<usize> = (0..3).collect();
        let opts = SupervisorOpts {
            max_attempts: 2,
            ..fast_opts(1)
        };
        let mut spawns = 0;
        let out = run_supervised(
            &opts,
            &names,
            9,
            &pending,
            |_, _| {
                spawns += 1;
                sh_worker(&[record(0, 9).to_jsonl()], 137)
            },
            |_| {},
        )
        .expect("supervised run");
        assert_eq!(spawns, 2);
        assert_eq!(out[0].outcome, "ok", "drained outcome survives the death");
        for rec in &out[1..] {
            assert_eq!(rec.outcome, "crashed");
            assert_eq!(rec.contract, names[rec.index]);
            assert_eq!(rec.seed, 9 ^ rec.index as u64);
            assert!(rec.detail.contains("after 2 attempt(s)"), "{}", rec.detail);
        }
    }

    #[test]
    fn stalled_worker_is_killed_and_retried() {
        let names = names(2);
        let pending: Vec<usize> = (0..2).collect();
        let opts = SupervisorOpts {
            stall_timeout: Some(Duration::from_millis(80)),
            ..fast_opts(1)
        };
        let mut attempts = 0;
        let out = run_supervised(
            &opts,
            &names,
            1,
            &pending,
            |attempt, indices| {
                attempts = attempt;
                if attempt == 1 {
                    // Hang without emitting anything: the stall detector
                    // must kill and re-dispatch.
                    Command::new("sleep")
                        .arg("600")
                        .stdout(Stdio::piped())
                        .spawn()
                } else {
                    let mut lines: Vec<String> =
                        indices.iter().map(|&i| record(i, 1).to_jsonl()).collect();
                    lines.push("{\"type\":\"done\"}".to_string());
                    sh_worker(&lines, 0)
                }
            },
            |_| {},
        )
        .expect("supervised run");
        assert_eq!(attempts, 2, "stall must trigger a re-dispatch");
        assert!(out.iter().all(|r| r.outcome == "ok"));
    }

    /// Serializes tests that assert on the process-global [`obs::fleet`]
    /// store (and resets it), so parallel tests can't cross-contaminate.
    fn fleet_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        obs::enable();
        obs::fleet().reset();
        guard
    }

    /// A metrics frame claiming `seeds` cumulative SeedsExecuted.
    fn frame(seeds: u64) -> String {
        let mut snap = obs::RegistrySnapshot::zero();
        snap.counters[obs::Counter::SeedsExecuted as usize] = seeds;
        snap.to_frame()
    }

    fn fleet_seeds(wid: usize) -> u64 {
        obs::fleet()
            .snapshot()
            .into_iter()
            .find(|(id, _)| *id == wid)
            .map(|(_, snap)| snap.counters[obs::Counter::SeedsExecuted as usize])
            .unwrap_or(0)
    }

    #[test]
    fn metrics_frames_merge_as_deltas_within_a_generation() {
        let _guard = fleet_lock();
        let names = names(2);
        let pending: Vec<usize> = (0..2).collect();
        let out = run_supervised(
            &fast_opts(1),
            &names,
            7,
            &pending,
            |_, indices| {
                // Two cumulative frames: 100 then 150. The merged total
                // must be 150, not 250 — frames are absolutes, not deltas.
                let mut lines = vec![frame(100), frame(150)];
                lines.extend(indices.iter().map(|&i| record(i, 7).to_jsonl()));
                lines.push("{\"type\":\"done\"}".to_string());
                sh_worker(&lines, 0)
            },
            |_| {},
        )
        .expect("supervised run");
        assert!(out.iter().all(|r| r.outcome == "ok"));
        assert_eq!(
            fleet_seeds(0),
            150,
            "cumulative frames must merge as deltas"
        );
    }

    #[test]
    fn killed_worker_generations_never_double_count() {
        let _guard = fleet_lock();
        let names = names(2);
        let pending: Vec<usize> = (0..2).collect();
        let out = run_supervised(
            &fast_opts(1),
            &names,
            3,
            &pending,
            |attempt, indices| {
                if attempt == 1 {
                    // Report 100 seeds, then die without `done`.
                    sh_worker(&[frame(100)], 1)
                } else {
                    // The replacement restarts its registry from zero: its
                    // 30 must land on top of the ghost's 100, not replace
                    // or double it.
                    let mut lines = vec![frame(30)];
                    lines.extend(indices.iter().map(|&i| record(i, 3).to_jsonl()));
                    lines.push("{\"type\":\"done\"}".to_string());
                    sh_worker(&lines, 0)
                }
            },
            |_| {},
        )
        .expect("supervised run");
        assert!(out.iter().all(|r| r.outcome == "ok"));
        assert_eq!(
            fleet_seeds(0),
            130,
            "ghost's merged work stays, replacement re-reports from zero"
        );
    }

    #[test]
    fn stale_generation_frame_is_rejected_without_poisoning_totals() {
        let _guard = fleet_lock();
        let mut shard = Shard {
            remaining: BTreeSet::new(),
            attempts: 1,
            generation: 1,
            child: None,
            readers: Vec::new(),
            last_progress: Instant::now(),
            last_ticks: BTreeMap::new(),
            last_seeds: 0,
            last_snap: Box::new(obs::RegistrySnapshot::zero()),
            retry_at: None,
            last_err: String::new(),
            dead: false,
            done: false,
            hb_slots: BTreeMap::new(),
        };
        let mut snap = obs::RegistrySnapshot::zero();
        snap.counters[obs::Counter::SeedsExecuted as usize] = 40;
        merge_metrics_frame(&mut shard, 9, false, Box::new(snap.clone()));
        assert_eq!(fleet_seeds(9), 40);

        // The drained tail of a killed generation claims a huge cumulative
        // count; merging it against the fresh zero baseline would inject
        // phantom work.
        let mut tail = obs::RegistrySnapshot::zero();
        tail.counters[obs::Counter::SeedsExecuted as usize] = 1_000_000;
        merge_metrics_frame(&mut shard, 9, true, Box::new(tail));
        assert_eq!(fleet_seeds(9), 40, "stale frame must not poison totals");

        // The live generation keeps merging normally afterwards.
        snap.counters[obs::Counter::SeedsExecuted as usize] = 55;
        merge_metrics_frame(&mut shard, 9, false, Box::new(snap));
        assert_eq!(fleet_seeds(9), 55);
    }

    #[test]
    fn worker_frames_never_clobber_monitor_owned_gauges() {
        let _guard = fleet_lock();
        let mut shard = Shard {
            remaining: BTreeSet::new(),
            attempts: 1,
            generation: 1,
            child: None,
            readers: Vec::new(),
            last_progress: Instant::now(),
            last_ticks: BTreeMap::new(),
            last_seeds: 0,
            last_snap: Box::new(obs::RegistrySnapshot::zero()),
            retry_at: None,
            last_err: String::new(),
            dead: false,
            done: false,
            hb_slots: BTreeMap::new(),
        };
        // StalledCampaigns and HeartbeatOverflow belong to the supervisor's
        // own ProgressMonitor; CampaignsRunning is the one gauge summed from
        // shard frames.
        obs::global().gauge_set(obs::Gauge::HeartbeatOverflow, 1);
        let mut snap = obs::RegistrySnapshot::zero();
        snap.gauges[obs::Gauge::HeartbeatOverflow as usize] = 5;
        snap.gauges[obs::Gauge::CampaignsRunning as usize] = 2;
        merge_metrics_frame(&mut shard, 0, false, Box::new(snap));
        assert_eq!(
            obs::global().gauge(obs::Gauge::HeartbeatOverflow),
            1,
            "a worker's overflow reading must not overwrite the monitor's"
        );
        assert_eq!(
            obs::global().gauge(obs::Gauge::CampaignsRunning),
            obs::fleet().gauge_sum(obs::Gauge::CampaignsRunning),
            "running count is the sum of shard levels"
        );
        assert_eq!(obs::global().gauge(obs::Gauge::CampaignsRunning), 2);
    }

    #[test]
    fn metrics_frame_parses_and_tampering_is_rejected() {
        let line = frame(42);
        match parse_worker_line(&line) {
            Some(WorkerMsg::Metrics(snap)) => {
                assert_eq!(snap.counters[obs::Counter::SeedsExecuted as usize], 42);
            }
            other => panic!("expected metrics frame, got {other:?}"),
        }
        // Digest tamper: flip the seed count in the payload.
        let tampered = line.replace(",42,", ",43,");
        assert_ne!(line, tampered, "fixture must actually contain the value");
        assert!(
            parse_worker_line(&tampered).is_none(),
            "tampered frame must be dropped"
        );
        // Torn frame: truncation mid-payload is dropped, not a panic.
        assert!(parse_worker_line(&line[..line.len() / 2]).is_none());
    }

    #[test]
    fn protocol_parser_is_tolerant() {
        assert!(parse_worker_line("not json at all").is_none());
        assert!(parse_worker_line("{\"type\":\"mystery\"}").is_none());
        assert!(
            parse_worker_line("{\"v\":1,\"index\":0}").is_none(),
            "bad record"
        );
        assert!(matches!(
            parse_worker_line("{\"type\":\"done\"}"),
            Some(WorkerMsg::Done)
        ));
        let hb = parse_worker_line(
            "{\"type\":\"hb\",\"slot\":2,\"campaign\":5,\"ticks\":10,\"stage\":\"solve\"}",
        );
        match hb {
            Some(WorkerMsg::Heartbeat {
                slot,
                campaign,
                ticks,
                stage,
            }) => {
                assert_eq!((slot, campaign, ticks, stage.as_str()), (2, 5, 10, "solve"));
            }
            other => panic!("expected heartbeat, got {other:?}"),
        }
        let rec = record(1, 4);
        match parse_worker_line(&rec.to_jsonl()) {
            Some(WorkerMsg::Outcome(parsed)) => assert_eq!(parsed, rec),
            other => panic!("expected outcome, got {other:?}"),
        }
    }
}
