//! The CosmWasm-substrate campaign: adversarial entry probes, a bounded
//! coverage-guided fuzz loop, and the two CosmWasm oracle classes.
//!
//! Where the EOSIO engine ([`crate::engine::Engine`]) runs Algorithm 1 with
//! symbolic replay, the CosmWasm campaign is a deterministic behavioral
//! fuzzer: the message space of CosmWasm-shaped contracts is a small
//! discrete opcode enum (our corpus mirrors real `ExecuteMsg` enums), so an
//! exhaustive entry/message/funds sweep plus a seeded random loop reaches
//! every guard without a solver. The oracles are behavioral, not syntactic:
//! they read the chain's event stream ([`CwEvent`]) for state commits that
//! should not have happened, never the contract's code.
//!
//! - **UnauthInstantiate** (§2.3-adjacent, CosmWasm CTF "unauthorized
//!   instantiate"): after the owner has instantiated, the attacker calls
//!   `instantiate` again. If that dispatch succeeds *and* persists state,
//!   privileged configuration was overwritten without authorization. A
//!   correct contract aborts (no write survives), so it cannot flag.
//! - **UncheckedReply** (CosmWasm CTF "reply without success check"): a
//!   `reply` entered with `success = 0` that still writes storage or moves
//!   funds commits state for a submessage that failed. A correct contract
//!   returns early on failure, so it cannot flag.

use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wasai_chain::cosmwasm::{CwChain, CwConfig, CwEntry, CwEvent, CwReceipt};
use wasai_chain::name::Name;
use wasai_chain::ChainError;
use wasai_obs as obs;

use crate::clock::VirtualClock;
use crate::config::FuzzConfig;
use crate::coverage::{BranchKey, CoverageSeries};
use crate::fleet::stage;
use crate::harness::{accounts, PreparedTarget};
use crate::report::{ExploitRecord, FuzzReport, VulnClass};
use crate::telemetry::{self, Stage, TelemetryEvent, TelemetrySink};

/// Well-known CosmWasm harness account names (the EOSIO campaign's
/// [`accounts`] cast, reshaped for the instantiate/execute model).
pub mod cw_accounts {
    use wasai_chain::name::Name;

    /// The legitimate deployer/owner wallet.
    pub fn owner() -> Name {
        Name::new("owner")
    }

    /// The attacker-controlled wallet.
    pub fn attacker() -> Name {
        Name::new("attacker")
    }

    /// A plain wallet used as a bank-send / submessage target.
    pub fn payee() -> Name {
        Name::new("payee")
    }
}

/// Message opcodes swept exhaustively before the random loop. Corpus
/// contracts keep their `ExecuteMsg` space inside this range.
const MSG_SWEEP: i64 = 8;

/// Funds levels for the sweep: unfunded (submessages fail → failed replies)
/// and funded (submessages succeed → legitimate paths).
const FUNDS_SWEEP: [i64; 2] = [0, 50];

/// One dispatch outcome as the scanner sees it.
#[derive(Debug)]
pub struct DispatchOutcome<'a> {
    /// Which entry export ran.
    pub entry: CwEntry,
    /// `info.sender` of the dispatch.
    pub sender: Name,
    /// Whether the dispatch committed (reverted dispatches commit nothing,
    /// so their writes are not exploits).
    pub succeeded: bool,
    /// The chain's event stream for the dispatch.
    pub events: &'a [CwEvent],
}

/// The CosmWasm vulnerability scanner: accumulates verdicts for
/// [`VulnClass::COSMWASM`] across a campaign's dispatches.
#[derive(Debug)]
pub struct CwScanner {
    target: Name,
    owner: Name,
    findings: BTreeSet<VulnClass>,
    exploits: Vec<ExploitRecord>,
}

impl CwScanner {
    /// A scanner for `target`, whose legitimate instantiator is `owner`.
    pub fn new(target: Name, owner: Name) -> Self {
        CwScanner {
            target,
            owner,
            findings: BTreeSet::new(),
            exploits: Vec::new(),
        }
    }

    /// Analyze one dispatch. `payload` describes it for exploit records.
    pub fn observe(&mut self, outcome: &DispatchOutcome<'_>, payload: &str) {
        if !outcome.succeeded {
            return;
        }
        if outcome.entry == CwEntry::Instantiate
            && outcome.sender != self.owner
            && outcome.events.iter().any(
                |e| matches!(e, CwEvent::StorageWrite { contract, .. } if *contract == self.target),
            )
        {
            self.flag(
                VulnClass::UnauthInstantiate,
                format!("re-instantiate by non-owner persisted state: {payload}"),
            );
        }
        // A write or bank send attributed to a failed reply frame: events
        // between `Reply { success: false }` and the next entry/reply
        // boundary belong to that reply's body.
        let mut failed_reply: Option<(Name, i64)> = None;
        for ev in outcome.events {
            match ev {
                CwEvent::Reply {
                    contract,
                    id,
                    success: false,
                } => failed_reply = Some((*contract, *id)),
                CwEvent::Reply { .. } | CwEvent::Entry { .. } => failed_reply = None,
                CwEvent::StorageWrite { contract, .. }
                | CwEvent::StorageRemove { contract, .. } => {
                    if let Some((c, id)) = failed_reply {
                        if c == *contract {
                            self.flag(
                                VulnClass::UncheckedReply,
                                format!("reply(id={id}, success=0) committed state: {payload}"),
                            );
                        }
                    }
                }
                CwEvent::BankSend { from, .. } => {
                    if let Some((c, id)) = failed_reply {
                        if c == *from {
                            self.flag(
                                VulnClass::UncheckedReply,
                                format!("reply(id={id}, success=0) moved funds: {payload}"),
                            );
                        }
                    }
                }
                _ => {}
            }
        }
    }

    fn flag(&mut self, class: VulnClass, payload: String) {
        if self.findings.insert(class) {
            self.exploits.push(ExploitRecord { class, payload });
        }
    }

    /// Findings and their exploit records, in detection order.
    pub fn verdicts(self) -> (BTreeSet<VulnClass>, Vec<ExploitRecord>) {
        (self.findings, self.exploits)
    }
}

/// Run one CosmWasm campaign over a prepared target.
///
/// The instrumented module, branch-site table and compiled artifact are the
/// same ones the EOSIO engine would use — preparation is substrate-neutral.
///
/// # Errors
///
/// Fails if the contract cannot be deployed (does not compile/validate).
pub fn run_campaign(
    prepared: Arc<PreparedTarget>,
    cfg: FuzzConfig,
    sink: Option<Box<dyn TelemetrySink>>,
) -> Result<FuzzReport, ChainError> {
    CwCampaign::new(prepared, cfg, sink)?.run()
}

struct CwCampaign {
    prepared: Arc<PreparedTarget>,
    cfg: FuzzConfig,
    chain: CwChain,
    rng: StdRng,
    clock: VirtualClock,
    scanner: CwScanner,
    explored: HashSet<BranchKey>,
    coverage_series: CoverageSeries,
    iterations: u64,
    stall: u64,
    truncated: bool,
    sink: Option<Box<dyn TelemetrySink>>,
}

impl CwCampaign {
    fn new(
        prepared: Arc<PreparedTarget>,
        cfg: FuzzConfig,
        sink: Option<Box<dyn TelemetrySink>>,
    ) -> Result<Self, ChainError> {
        stage::enter(stage::PREPARE);
        let target = accounts::target();
        let mut chain = CwChain::with_config(CwConfig::default());
        chain.create_wallet(cw_accounts::owner(), 1_000_000);
        chain.create_wallet(cw_accounts::attacker(), 1_000_000);
        chain.create_wallet(cw_accounts::payee(), 0);
        chain.deploy_compiled(target, prepared.compiled.clone());
        stage::enter(stage::CAMPAIGN);
        Ok(CwCampaign {
            rng: StdRng::seed_from_u64(cfg.rng_seed),
            scanner: CwScanner::new(target, cw_accounts::owner()),
            prepared,
            cfg,
            chain,
            clock: VirtualClock::new(),
            explored: HashSet::new(),
            coverage_series: CoverageSeries::new(),
            iterations: 0,
            stall: 0,
            truncated: false,
            sink,
        })
    }

    fn emit(&mut self, event: TelemetryEvent) {
        if let Some(sink) = self.sink.as_mut() {
            sink.record(event);
        }
    }

    fn has_export(&self, name: &str) -> bool {
        self.prepared.info.original.exported_func(name).is_some()
    }

    fn deadline_fired(&mut self) -> bool {
        if !self.truncated && self.cfg.deadline.expired() {
            self.truncated = true;
        }
        self.truncated
    }

    /// Dispatch one entry call, feed scanner/coverage/telemetry.
    fn dispatch(&mut self, entry: CwEntry, sender: Name, msg: i64, funds: i64) {
        let target = accounts::target();
        stage::enter(stage::EXECUTE);
        let result = self.chain.dispatch(entry, target, sender, msg, funds);
        stage::enter(stage::CAMPAIGN);
        obs::inc(obs::Counter::SeedsExecuted);
        let (succeeded, receipt): (bool, CwReceipt) = match result {
            Ok(r) => (true, r),
            Err(e) => match e.receipt() {
                Some(r) => (false, r.clone()),
                None => return,
            },
        };
        let vtime_before = self.clock.micros();
        self.clock
            .charge_execution(&self.cfg.cost, receipt.steps_used);
        self.emit(TelemetryEvent::StageTiming {
            stage: Stage::Execute,
            dur_us: self.clock.micros() - vtime_before,
            vtime: self.clock.micros(),
        });

        let payload = format!("msg={msg} funds={funds} sender={sender}");
        self.scanner.observe(
            &DispatchOutcome {
                entry,
                sender,
                succeeded,
                events: &receipt.events,
            },
            &payload,
        );

        let before = self.explored.len();
        self.prepared
            .branch_sites
            .extend_from_trace(&mut self.explored, &receipt.trace);
        if self.explored.len() > before {
            self.stall = 0;
        } else {
            self.stall += 1;
        }
        obs::add(
            obs::Counter::CoverageBranches,
            (self.explored.len() - before) as u64,
        );
        self.coverage_series
            .push(self.clock.micros(), self.explored.len());
        if self.sink.is_some() {
            let branches = self.explored.len();
            self.emit(TelemetryEvent::SeedExecuted {
                action: entry.export().to_string(),
                payload,
                coverage_delta: branches - before,
                branches,
                vtime: self.clock.micros(),
            });
        }
    }

    /// The adversarial probe sequence: owner setup, attacker
    /// re-instantiate, exhaustive entry/message/funds sweep.
    fn probe_sweep(&mut self) {
        let owner = cw_accounts::owner();
        let attacker = cw_accounts::attacker();
        if self.has_export("instantiate") {
            // Legitimate setup, then the takeover probe.
            self.dispatch(CwEntry::Instantiate, owner, 1, 0);
            self.dispatch(CwEntry::Instantiate, attacker, 1, 0);
        }
        if self.has_export("execute") {
            for funds in FUNDS_SWEEP {
                for msg in 0..MSG_SWEEP {
                    self.dispatch(CwEntry::Execute, attacker, msg, funds);
                }
            }
        }
        if self.has_export("query") {
            for msg in 0..4 {
                self.dispatch(CwEntry::Query, attacker, msg, 0);
            }
        }
    }

    fn run(mut self) -> Result<FuzzReport, ChainError> {
        let entries = ["instantiate", "execute", "query", "reply"]
            .iter()
            .filter(|e| self.has_export(e))
            .count();
        self.emit(TelemetryEvent::CampaignStarted {
            seed: self.cfg.rng_seed,
            actions: entries,
            vtime: 0,
        });
        obs::add(
            obs::Counter::BranchSites,
            self.prepared.branch_sites.directions() as u64,
        );

        self.probe_sweep();

        // The random loop: residual message/funds/sender combinations the
        // sweep missed, until coverage stalls or time runs out.
        let fuzzable = self.has_export("execute");
        while fuzzable
            && !self.clock.timed_out(self.cfg.timeout_us)
            && self.stall < self.cfg.stall_iters
            && !self.deadline_fired()
        {
            let msg = self.rng.gen_range(0..(2 * MSG_SWEEP));
            let funds = [0, 0, 10, 200][self.rng.gen_range(0..4usize)];
            let sender = if self.rng.gen_bool(0.25) {
                cw_accounts::owner()
            } else {
                cw_accounts::attacker()
            };
            self.dispatch(CwEntry::Execute, sender, msg, funds);
            self.iterations += 1;
            obs::inc(obs::Counter::Iterations);
            obs::worker::tick();
        }

        // Final probe pass: deeper state may open new event sequences.
        self.probe_sweep();

        let scanner = std::mem::replace(
            &mut self.scanner,
            CwScanner::new(accounts::target(), cw_accounts::owner()),
        );
        let (findings, exploits) = scanner.verdicts();
        let branches = self.explored.len();
        if self.sink.is_some() {
            for ev in telemetry::oracle_verdicts_for(
                &VulnClass::COSMWASM,
                &findings,
                &[],
                self.clock.micros(),
            ) {
                self.emit(ev);
            }
            self.emit(TelemetryEvent::CampaignFinished {
                iterations: self.iterations,
                branches,
                truncated: self.truncated,
                vtime: self.clock.micros(),
            });
        }
        let mut coverage_series = std::mem::take(&mut self.coverage_series);
        coverage_series.push(self.cfg.timeout_us.max(self.clock.micros()), branches);
        Ok(FuzzReport {
            findings,
            exploits,
            branches,
            coverage_series,
            iterations: self.iterations,
            virtual_us: self.clock.micros(),
            // CosmWasm campaigns are black-box: the clock only ever
            // advances through execution charges, so the whole budget is
            // execution time.
            exec_virtual_us: self.clock.micros(),
            solve_virtual_us: 0,
            smt_queries: 0,
            custom_findings: Vec::new(),
            truncated: self.truncated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome<'a>(
        entry: CwEntry,
        sender: Name,
        succeeded: bool,
        events: &'a [CwEvent],
    ) -> DispatchOutcome<'a> {
        DispatchOutcome {
            entry,
            sender,
            succeeded,
            events,
        }
    }

    #[test]
    fn attacker_instantiate_with_write_flags() {
        let target = accounts::target();
        let mut s = CwScanner::new(target, cw_accounts::owner());
        let events = vec![CwEvent::StorageWrite {
            contract: target,
            key: 0,
        }];
        s.observe(
            &outcome(CwEntry::Instantiate, cw_accounts::attacker(), true, &events),
            "probe",
        );
        let (findings, exploits) = s.verdicts();
        assert_eq!(findings, BTreeSet::from([VulnClass::UnauthInstantiate]));
        assert_eq!(exploits.len(), 1);
    }

    #[test]
    fn owner_instantiate_never_flags() {
        let target = accounts::target();
        let mut s = CwScanner::new(target, cw_accounts::owner());
        let events = vec![CwEvent::StorageWrite {
            contract: target,
            key: 0,
        }];
        s.observe(
            &outcome(CwEntry::Instantiate, cw_accounts::owner(), true, &events),
            "setup",
        );
        assert!(s.verdicts().0.is_empty());
    }

    #[test]
    fn reverted_attacker_instantiate_never_flags() {
        let target = accounts::target();
        let mut s = CwScanner::new(target, cw_accounts::owner());
        let events = vec![CwEvent::StorageWrite {
            contract: target,
            key: 0,
        }];
        // The write happened but the dispatch reverted: nothing persisted.
        s.observe(
            &outcome(
                CwEntry::Instantiate,
                cw_accounts::attacker(),
                false,
                &events,
            ),
            "probe",
        );
        assert!(s.verdicts().0.is_empty());
    }

    #[test]
    fn write_inside_failed_reply_flags() {
        let target = accounts::target();
        let mut s = CwScanner::new(target, cw_accounts::owner());
        let events = vec![
            CwEvent::Reply {
                contract: target,
                id: 9,
                success: false,
            },
            CwEvent::StorageWrite {
                contract: target,
                key: 5,
            },
        ];
        s.observe(
            &outcome(CwEntry::Execute, cw_accounts::attacker(), true, &events),
            "play",
        );
        let (findings, _) = s.verdicts();
        assert_eq!(findings, BTreeSet::from([VulnClass::UncheckedReply]));
    }

    #[test]
    fn write_inside_successful_reply_never_flags() {
        let target = accounts::target();
        let mut s = CwScanner::new(target, cw_accounts::owner());
        let events = vec![
            CwEvent::Reply {
                contract: target,
                id: 9,
                success: true,
            },
            CwEvent::StorageWrite {
                contract: target,
                key: 5,
            },
        ];
        s.observe(
            &outcome(CwEntry::Execute, cw_accounts::attacker(), true, &events),
            "play",
        );
        assert!(s.verdicts().0.is_empty());
    }

    #[test]
    fn write_after_reply_frame_closes_never_flags() {
        let target = accounts::target();
        let mut s = CwScanner::new(target, cw_accounts::owner());
        let events = vec![
            CwEvent::Reply {
                contract: target,
                id: 9,
                success: false,
            },
            // A new entry closes the failed-reply frame before the write.
            CwEvent::Entry {
                contract: target,
                entry: CwEntry::Execute,
                sender: cw_accounts::attacker(),
                msg: 2,
                funds: 0,
            },
            CwEvent::StorageWrite {
                contract: target,
                key: 5,
            },
        ];
        s.observe(
            &outcome(CwEntry::Execute, cw_accounts::attacker(), true, &events),
            "play",
        );
        assert!(s.verdicts().0.is_empty());
    }
}
