#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

//! # wasai-core — the WASAI concolic fuzzer (§3)
//!
//! The paper's primary contribution, assembled from the workspace
//! substrates: [`engine::Engine`] drives Algorithm 1 — instrumented
//! execution on the local chain (`wasai-chain` + `wasai-vm`), symbolic trace
//! replay and constraint flipping (`wasai-symex` + `wasai-smt`), seed
//! selection over the database dependency graph, and the vulnerability
//! [`scanner::Scanner`] with the five oracles of §3.5.
//!
//! Use the [`Wasai`] façade for the one-call API; the submodules are public
//! so the baselines and the experiment harness can share the chain setup,
//! payload templates and coverage metric.

pub mod chaos;
pub mod clock;
pub mod config;
pub mod coverage;
pub mod cw;
pub mod dbg;
pub mod engine;
pub mod fleet;
pub mod harness;
pub mod obs_bridge;
pub mod oracle;
pub mod pool;
pub mod profile;
pub mod report;
pub mod scanner;
pub mod seed;
pub mod substrate;
pub mod telemetry;
pub mod wasai;

pub use clock::{CostModel, VirtualClock};
pub use config::FuzzConfig;
pub use coverage::{BranchSites, CoverageSeries};
pub use cw::CwScanner;
pub use engine::Engine;
pub use fleet::journal::{corpus_digest, Journal, JournalMeta, OutcomeRecord};
pub use fleet::supervisor::{run_supervised, SupervisorOpts};
pub use fleet::{
    jobs_from_env, run_campaign_isolated, run_jobs, run_jobs_isolated, run_jobs_isolated_with_sink,
    run_jobs_timed, CampaignOutcome, CampaignRun, FleetStats,
};
pub use harness::{PreparedTarget, TargetInfo};
pub use obs_bridge::{MirrorSink, MonitorHandle, MonitorReport, ProgressMonitor};
pub use oracle::{ApiUsageOracle, CustomOracle};
pub use report::{ExploitRecord, FuzzReport, VulnClass};
pub use scanner::{PayloadKind, Scanner};
pub use seed::Seed;
pub use substrate::{
    substrate, CampaignContext, CampaignTarget, ConformanceHarness, ConformanceOp,
    ConformanceVerdict, Substrate, SubstrateKind,
};
pub use telemetry::{
    Metrics, NullSink, Recorder, SmtOutcome, Stage, TelemetryEvent, TelemetrySink, VtimeHistogram,
};
pub use wasai::Wasai;
