//! Audit a hand-written contract: build a custom EOSIO-style module with
//! [`ModuleBuilder`], give it an ABI, and run the full WASAI pipeline.
//!
//! ```sh
//! cargo run --release --example audit_lottery
//! ```
//!
//! The contract reproduces Listing 4 of the paper: a reveal action that
//! derives "randomness" from tapos state and pays the winner with an inline
//! action — both the BlockinfoDep and the Rollback bug.

use wasai::prelude::*;
use wasai::wasai_wasm::instr::{Instr, MemArg};
use wasai::wasai_wasm::types::{BlockType, ValType::*};
use wasai::wasai_wasm::ModuleBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut b = ModuleBuilder::with_memory(1);
    let tapos_prefix = b.import_func("env", "tapos_block_prefix", &[], &[I32]);
    let tapos_num = b.import_func("env", "tapos_block_num", &[], &[I32]);
    let send_inline = b.import_func("env", "send_inline", &[I64, I64, I32, I32], &[]);
    let read = b.import_func("env", "read_action_data", &[I32, I32], &[I32]);
    let size = b.import_func("env", "action_data_size", &[], &[I32]);

    // reveal(self, who): Listing 4's body — a = prefix * num; if (a % 2) pay.
    let reveal = b.func(
        &[I64, I64],
        &[],
        &[I32],
        vec![
            Instr::Call(tapos_prefix),
            Instr::Call(tapos_num),
            Instr::I32Mul,
            Instr::I32Const(1),
            Instr::I32And,
            Instr::If(BlockType::Empty),
            // Serialize transfer(self, who, 1.0000 EOS, "") at address 512.
            Instr::I32Const(512),
            Instr::LocalGet(0),
            Instr::I64Store(MemArg::default()),
            Instr::I32Const(520),
            Instr::LocalGet(1),
            Instr::I64Store(MemArg::default()),
            Instr::I32Const(528),
            Instr::I64Const(10_000),
            Instr::I64Store(MemArg::default()),
            Instr::I32Const(536),
            Instr::I64Const(wasai::wasai_chain::asset::eos_symbol().raw() as i64),
            Instr::I64Store(MemArg::default()),
            Instr::I32Const(544),
            Instr::I32Const(0),
            Instr::I32Store8(MemArg::default()),
            Instr::I64Const(Name::new("eosio.token").as_i64()),
            Instr::I64Const(Name::new("transfer").as_i64()),
            Instr::I32Const(512),
            Instr::I32Const(33),
            Instr::Call(send_inline),
            Instr::End,
            Instr::End,
        ],
    );

    // apply(receiver, code, action): dispatch reveal via call_indirect.
    let t_reveal = b.module().local_func(reveal).unwrap().type_idx;
    b.table(1).elem(0, vec![reveal]);
    let apply = b.func(
        &[I64, I64, I64],
        &[],
        &[I32],
        vec![
            Instr::LocalGet(1),
            Instr::LocalGet(0),
            Instr::I64Eq,
            Instr::If(BlockType::Empty),
            Instr::LocalGet(2),
            Instr::I64Const(Name::new("reveal").as_i64()),
            Instr::I64Eq,
            Instr::If(BlockType::Empty),
            Instr::Call(size),
            Instr::LocalSet(3),
            Instr::I32Const(1024),
            Instr::LocalGet(3),
            Instr::Call(read),
            Instr::Drop,
            Instr::LocalGet(0),
            Instr::I32Const(1024),
            Instr::I64Load(MemArg::default()),
            Instr::I32Const(0),
            Instr::CallIndirect(t_reveal),
            Instr::End,
            Instr::End,
            Instr::End,
        ],
    );
    b.export_func("apply", apply);
    let module = b.build();
    wasai::wasai_wasm::validate::validate(&module)?;
    println!(
        "hand-built lottery: {} instructions across {} functions",
        module.code_size(),
        module.funcs.len()
    );

    let abi = Abi::new(vec![ActionDecl::new(
        Name::new("reveal"),
        vec![ParamType::Name],
    )]);
    let report = Wasai::new(module, abi)
        .with_config(FuzzConfig::default())
        .run()?;

    println!("findings: {:?}", report.findings);
    println!(
        "coverage: {} branches over {} iterations",
        report.branches, report.iterations
    );
    assert!(report.has(VulnClass::BlockinfoDep), "Listing 4's PRNG bug");
    assert!(
        report.has(VulnClass::Rollback),
        "Listing 4's inline-payout bug"
    );
    println!("\nListing 4's two bugs confirmed: use a verified PRNG and a defer scheme.");
    Ok(())
}
