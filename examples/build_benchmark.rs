//! Build a labeled benchmark slice and write real `.wasm` binaries to disk —
//! the §4.2 corpus pipeline end to end (generate → inject → obfuscate →
//! encode).
//!
//! ```sh
//! cargo run --release --example build_benchmark
//! ```

use std::fs;
use std::path::Path;

use wasai::wasai_corpus::{obfuscate, table4_benchmark};
use wasai::wasai_wasm::{decode, encode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = Path::new("target/benchmark_slice");
    fs::create_dir_all(out)?;

    let samples = table4_benchmark(1234, 0.005);
    println!(
        "generated {} labeled samples (0.5% of the paper's 3,340)",
        samples.len()
    );

    let mut manifest = String::from("file,group,vulnerable,bytes,instructions\n");
    for (i, s) in samples.iter().enumerate() {
        let bytes = encode::encode(&s.contract.module);
        // Round-trip sanity: the binary decodes back to the same module.
        assert_eq!(decode::decode(&bytes)?, s.contract.module);
        let name = format!("sample_{i:03}.wasm");
        fs::write(out.join(&name), &bytes)?;
        manifest.push_str(&format!(
            "{name},{},{},{},{}\n",
            s.group,
            s.is_vulnerable(),
            bytes.len(),
            s.contract.module.code_size()
        ));
    }

    // Also emit one obfuscated variant to show the RQ3 pipeline.
    let obf = obfuscate(&samples[0].contract, 42);
    let obf_bytes = encode::encode(&obf.module);
    fs::write(out.join("sample_000_obfuscated.wasm"), &obf_bytes)?;
    manifest.push_str(&format!(
        "sample_000_obfuscated.wasm,{},{},{},{}\n",
        samples[0].group,
        samples[0].is_vulnerable(),
        obf_bytes.len(),
        obf.module.code_size()
    ));

    fs::write(out.join("manifest.csv"), &manifest)?;
    println!(
        "wrote {} .wasm files + manifest.csv to {}",
        samples.len() + 1,
        out.display()
    );
    println!("\nmanifest:\n{manifest}");
    Ok(())
}
