//! Quickstart: audit one Wasm smart contract with WASAI.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a deliberately vulnerable EOSIO-style lottery contract, runs
//! the concolic fuzzing campaign against it on the local chain, and prints
//! the findings with their exploit payloads.

use wasai::prelude::*;
use wasai::wasai_corpus::{GateKind, RewardKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A lottery dApp with every §2.3 bug: no code guard (Fake EOS), no
    // payee guard (Fake Notif), no permission checks (MissAuth), tapos
    // randomness (BlockinfoDep) and an inline payout (Rollback).
    let contract = generate(Blueprint {
        seed: 2024,
        code_guard: false,
        payee_guard: false,
        auth_check: false,
        blockinfo: true,
        sdk_work: 0,
        reward: RewardKind::Inline,
        gate: GateKind::Solvable { depth: 2 },
        eosponser_branches: 2,
    });
    println!(
        "contract: {} instructions, {} actions declared, ground truth {:?}",
        contract.module.code_size(),
        contract.abi.actions.len(),
        contract.label
    );

    // Run the campaign: instrument → deploy on the local chain with
    // eosio.token and the adversary agents → fuzz with concolic feedback.
    let report = Wasai::new(contract.module, contract.abi)
        .with_config(FuzzConfig::default())
        .run()?;

    println!(
        "\ncampaign: {} iterations, {} SMT queries, {} branches, {:.1} virtual seconds",
        report.iterations,
        report.smt_queries,
        report.branches,
        report.virtual_us as f64 / 1e6
    );
    println!("\nfindings:");
    for class in &report.findings {
        println!("  [VULNERABLE] {class}");
    }
    println!("\nexploit payloads:");
    for e in &report.exploits {
        println!("  {} — {}", e.class, e.payload);
    }
    assert_eq!(
        report.findings.len(),
        5,
        "all five classes should be flagged"
    );
    Ok(())
}
