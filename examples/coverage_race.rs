//! A single-contract coverage race: WASAI's concolic feedback vs
//! EOSFuzzer's random seeds on a contract whose deep code hides behind
//! exact-value verification (a miniature Figure 3).
//!
//! ```sh
//! cargo run --release --example coverage_race
//! ```

use wasai::prelude::*;
use wasai::wasai_baselines::EosFuzzer;
use wasai::wasai_core::TargetInfo;
use wasai::wasai_corpus::{inject_verification, GateKind, RewardKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Deep solver-gated structure: a 4-deep nonce gate plus an exact
    // quantity check at the eosponser entry.
    let base = generate(Blueprint {
        seed: 99,
        blockinfo: true,
        reward: RewardKind::Inline,
        gate: GateKind::Solvable { depth: 4 },
        eosponser_branches: 3,
        ..Blueprint::default()
    });
    let (contract, key) = inject_verification(&base, 100, 2);
    println!(
        "target: {} instructions; verification demands exactly {} sub-units of EOS",
        contract.module.code_size(),
        key.amount
    );

    let cfg = FuzzConfig::default();
    let wasai_report = Wasai::new(contract.module.clone(), contract.abi.clone())
        .with_config(cfg)
        .run()?;
    let eosfuzzer_report =
        EosFuzzer::new(TargetInfo::new(contract.module, contract.abi), cfg)?.run();

    println!(
        "\n{:<12} {:>10} {:>12} {:>12} {:>10}",
        "tool", "branches", "iterations", "SMT", "findings"
    );
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>10}",
        "WASAI",
        wasai_report.branches,
        wasai_report.iterations,
        wasai_report.smt_queries,
        wasai_report.findings.len()
    );
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>10}",
        "EOSFuzzer",
        eosfuzzer_report.branches,
        eosfuzzer_report.iterations,
        eosfuzzer_report.smt_queries,
        eosfuzzer_report.findings.len()
    );
    println!(
        "\ncoverage ratio: {:.2}x",
        wasai_report.branches as f64 / eosfuzzer_report.branches.max(1) as f64
    );
    assert!(wasai_report.branches > eosfuzzer_report.branches);
    assert!(
        wasai_report.has(VulnClass::BlockinfoDep),
        "only the solver gets this deep"
    );
    assert!(!eosfuzzer_report.has(VulnClass::BlockinfoDep));
    Ok(())
}
