//! The corpus pipeline end to end: every generated/injected/obfuscated
//! sample must validate, survive the binary round trip, instrument cleanly
//! and behave per its ground-truth label when audited.

use wasai::prelude::*;
use wasai::wasai_corpus::{
    inject_verification, make_vulnerable, obfuscate, table4_benchmark, wild_corpus, WildRates,
};
use wasai::wasai_wasm::{decode, encode, instrument, validate};

#[test]
fn benchmark_samples_roundtrip_and_instrument() {
    for s in table4_benchmark(77, 0.004) {
        validate::validate(&s.contract.module).unwrap();
        let bytes = encode::encode(&s.contract.module);
        assert_eq!(decode::decode(&bytes).unwrap(), s.contract.module);
        let inst = instrument::instrument(&s.contract.module).unwrap();
        validate::validate(&inst.module).unwrap();
    }
}

#[test]
fn obfuscated_and_verified_variants_stay_valid() {
    let base = generate(Blueprint {
        seed: 500,
        ..Blueprint::default()
    });
    let v = make_vulnerable(&base, VulnClass::FakeNotif);
    let o = obfuscate(&v, 1);
    let (w, _) = inject_verification(&o, 2, 2);
    validate::validate(&w.module).unwrap();
    let inst = instrument::instrument(&w.module).unwrap();
    validate::validate(&inst.module).unwrap();
    // Triple-transformed contract still audits correctly.
    let report = Wasai::new(w.module, w.abi)
        .with_config(FuzzConfig::quick())
        .run()
        .unwrap();
    assert!(report.has(VulnClass::FakeNotif), "report: {report:?}");
}

#[test]
fn wild_patched_contracts_audit_clean() {
    let corpus = wild_corpus(9, 30, WildRates::default());
    for w in corpus.iter().filter(|w| w.latest.is_some()).take(2) {
        let latest = w.latest.as_ref().unwrap();
        let report = Wasai::new(latest.module.clone(), latest.abi.clone())
            .with_config(FuzzConfig::quick())
            .run()
            .unwrap();
        assert!(
            report.findings.is_empty(),
            "patched version flagged: {report:?}"
        );
    }
}

#[test]
fn wild_deployed_vulnerable_contracts_are_flagged() {
    let corpus = wild_corpus(11, 20, WildRates::default());
    let vulnerable = corpus
        .iter()
        .find(|w| w.deployed.label.contains(&VulnClass::FakeEos))
        .expect("some wild contract lacks the code guard");
    let report = Wasai::new(
        vulnerable.deployed.module.clone(),
        vulnerable.deployed.abi.clone(),
    )
    .with_config(FuzzConfig::quick())
    .run()
    .unwrap();
    assert!(report.has(VulnClass::FakeEos));
}

#[test]
fn traces_reference_only_real_original_sites() {
    // Invariant behind the whole replay design: every Site record emitted by
    // an instrumented execution must resolve to a real instruction of the
    // ORIGINAL module (func exists, pc within the body).
    use wasai::wasai_chain::{Chain, NativeKind};
    use wasai::wasai_vm::TraceKind;

    let c = generate(Blueprint {
        seed: 900,
        code_guard: false,
        ..Blueprint::default()
    });
    let instrumented = instrument::instrument(&c.module).unwrap().module;
    let mut chain = Chain::new();
    chain.deploy_native(Name::new("eosio.token"), NativeKind::Token);
    chain.create_account(Name::new("alice")).unwrap();
    chain
        .deploy_wasm(Name::new("victim"), instrumented, c.abi.clone())
        .unwrap();
    chain.issue(
        Name::new("eosio.token"),
        Name::new("alice"),
        Asset::eos(100),
    );
    let receipt = chain
        .push_action(
            Name::new("eosio.token"),
            Name::new("transfer"),
            &[Name::new("alice")],
            &[
                ParamValue::Name(Name::new("alice")),
                ParamValue::Name(Name::new("victim")),
                ParamValue::Asset(Asset::eos(10)),
                ParamValue::String("inv".into()),
            ],
        )
        .unwrap();
    assert!(!receipt.trace.is_empty());
    for rec in &receipt.trace {
        match rec.kind {
            TraceKind::Site { func, pc } => {
                let f = c
                    .module
                    .local_func(func)
                    .expect("site func exists in original");
                assert!(
                    (pc as usize) < f.body.len(),
                    "site pc {pc} out of range for func {func}"
                );
            }
            TraceKind::FuncBegin { func } | TraceKind::FuncEnd { func } => {
                assert!(c.module.local_func(func).is_some());
            }
            TraceKind::CallPre { callee } | TraceKind::CallPost { callee } => {
                assert!(callee == -1 || (callee as u32) < c.module.num_funcs());
            }
        }
    }
}
