//! Every campaign in this workspace is deterministic: same contract + same
//! seed → byte-identical report. This is what makes EXPERIMENTS.md exactly
//! reproducible.

use wasai::prelude::*;
use wasai::wasai_baselines::{eosafe_analyze, EosFuzzer, EosafeConfig};
use wasai::wasai_core::TargetInfo;
use wasai::wasai_corpus::{GateKind, RewardKind};

fn contract() -> LabeledContract {
    generate(Blueprint {
        seed: 55,
        code_guard: false,
        blockinfo: true,
        reward: RewardKind::Inline,
        gate: GateKind::Solvable { depth: 2 },
        ..Blueprint::default()
    })
}

#[test]
fn wasai_campaigns_are_reproducible() {
    let c = contract();
    let run = || {
        Wasai::new(c.module.clone(), c.abi.clone())
            .with_config(FuzzConfig::quick())
            .run()
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "identical seeds must give identical reports");
}

#[test]
fn wasai_seed_changes_the_trajectory_but_not_the_verdict() {
    let c = contract();
    let run = |seed| {
        Wasai::new(c.module.clone(), c.abi.clone())
            .with_config(FuzzConfig {
                rng_seed: seed,
                ..FuzzConfig::quick()
            })
            .run()
            .unwrap()
    };
    let a = run(1);
    let b = run(2);
    assert_eq!(
        a.findings, b.findings,
        "verdicts must be stable across seeds"
    );
}

#[test]
fn eosfuzzer_campaigns_are_reproducible() {
    let c = contract();
    let run = || {
        EosFuzzer::new(
            TargetInfo::new(c.module.clone(), c.abi.clone()),
            FuzzConfig::quick(),
        )
        .unwrap()
        .run()
    };
    assert_eq!(run(), run());
}

#[test]
fn eosafe_is_a_pure_function_of_the_module() {
    let c = contract();
    let a = eosafe_analyze(&c.module, &c.abi, EosafeConfig::default());
    let b = eosafe_analyze(&c.module, &c.abi, EosafeConfig::default());
    assert_eq!(a, b);
}
