//! Tier-1 gate for the solver reuse layer: the query memo cache and
//! shared-prefix incremental solving must be observationally pure.
//!
//! The contract (DESIGN.md): campaign reports are byte-identical with reuse
//! on and off, telemetry traces are identical except for the
//! `cache_hit`/`incremental` tags, and a fleet-shared [`SolverCache`] —
//! whose hit pattern *does* depend on scheduling — must leave both
//! artifacts untouched, tags included, at any worker count.

use std::sync::Arc;

use wasai::wasai_core::{telemetry, FuzzConfig, TelemetryEvent, Wasai};
use wasai::wasai_corpus::{generate, Blueprint, GateKind, RewardKind};
use wasai::wasai_smt::{Budget, Deadline, SolverCache};

fn blueprint(seed: u64) -> Blueprint {
    Blueprint {
        seed,
        code_guard: true,
        payee_guard: true,
        auth_check: true,
        blockinfo: false,
        sdk_work: 0,
        reward: RewardKind::Inline,
        gate: GateKind::Open,
        eosponser_branches: 2,
    }
}

fn config() -> FuzzConfig {
    FuzzConfig {
        timeout_us: 2_000_000,
        stall_iters: 8,
        rng_seed: 7,
        ..FuzzConfig::default()
    }
}

/// A campaign over `bp`, optionally with reuse disabled or a shared cache.
fn run(
    bp: Blueprint,
    reuse: bool,
    cache: Option<Arc<SolverCache>>,
) -> (String, Vec<TelemetryEvent>) {
    let c = generate(bp);
    let mut w = Wasai::new(c.module, c.abi).with_config(FuzzConfig {
        smt_reuse: reuse,
        ..config()
    });
    if let Some(cache) = cache {
        w = w.with_solver_cache(cache);
    }
    let (report, events) = w.run_traced().expect("campaign runs");
    (report.render(), events)
}

/// Clear the reuse tags, leaving everything else untouched.
fn strip_tags(events: &[TelemetryEvent]) -> Vec<TelemetryEvent> {
    events
        .iter()
        .cloned()
        .map(|ev| match ev {
            TelemetryEvent::SmtQuery {
                outcome,
                conflicts,
                props,
                vtime,
                ..
            } => TelemetryEvent::SmtQuery {
                outcome,
                conflicts,
                props,
                cache_hit: false,
                incremental: false,
                vtime,
            },
            other => other,
        })
        .collect()
}

/// A campaign over `bp` with a custom solve budget, feeding `cache`.
fn run_with_budget(
    bp: Blueprint,
    smt_budget: Budget,
    cache: &Arc<SolverCache>,
) -> Vec<TelemetryEvent> {
    let c = generate(bp);
    let w = Wasai::new(c.module, c.abi)
        .with_config(FuzzConfig {
            smt_reuse: true,
            smt_budget,
            ..config()
        })
        .with_solver_cache(cache.clone());
    let (_, events) = w.run_traced().expect("campaign runs");
    events
}

#[test]
fn reuse_on_and_off_agree_on_reports_and_traces() {
    let (report_on, events_on) = run(blueprint(3), true, None);
    let (report_off, events_off) = run(blueprint(3), false, None);

    assert_eq!(
        report_on, report_off,
        "campaign reports must be byte-identical with reuse on/off"
    );
    assert_eq!(
        strip_tags(&events_on),
        strip_tags(&events_off),
        "traces must be identical modulo the reuse tags"
    );
    // With reuse off every query is from scratch: all tags read false, so
    // the stripped comparison above also proves the off-trace verbatim.
    assert_eq!(strip_tags(&events_off), events_off);
    // And the reuse run must actually have reused something, or this test
    // exercises nothing.
    let reused = events_on.iter().any(|ev| {
        matches!(
            ev,
            TelemetryEvent::SmtQuery {
                cache_hit: true,
                ..
            } | TelemetryEvent::SmtQuery {
                incremental: true,
                ..
            }
        )
    });
    assert!(
        reused,
        "reuse-on campaign never hit the cache or the session"
    );
}

#[test]
fn fleet_cache_is_invisible_in_reports_and_traces() {
    // Reference: two campaigns over the same contract, no shared cache.
    let (ref_a, ev_a) = run(blueprint(5), true, None);
    let (ref_b, ev_b) = run(blueprint(5), true, None);
    assert_eq!(ref_a, ref_b, "identical campaigns are deterministic");

    // Same two campaigns sharing one fleet cache: the second one's queries
    // are all warm in L2, yet nothing observable may change — tags
    // included, since L2 hit patterns depend on scheduling in a real fleet.
    let cache = Arc::new(SolverCache::new());
    let (shared_a, sev_a) = run(blueprint(5), true, Some(cache.clone()));
    let (shared_b, sev_b) = run(blueprint(5), true, Some(cache.clone()));
    assert!(cache.hits() > 0, "second campaign must hit the fleet cache");
    assert_eq!(shared_a, ref_a);
    assert_eq!(shared_b, ref_b);
    assert_eq!(sev_a, ev_a, "fleet cache must not perturb traces");
    assert_eq!(sev_b, ev_b, "fleet cache must not perturb traces");
}

#[test]
fn jobs_one_and_four_share_a_cache_identically() {
    // The fleet-level version of the invariant: campaigns over a mixed
    // corpus, serial vs 4 workers, all sharing one solver cache per run.
    // Serialized traces (tags included) must be byte-identical even though
    // the L2 hit pattern differs between the two schedules.
    let bps = [blueprint(3), blueprint(5), blueprint(3), blueprint(9)];
    let trace_of = |jobs: usize| -> String {
        let cache = Arc::new(SolverCache::new());
        let runs = wasai::wasai_core::run_jobs(jobs, bps.to_vec(), |_, bp| {
            run(bp, true, Some(cache.clone()))
        });
        let mut out = String::new();
        for (i, (report, events)) in runs.iter().enumerate() {
            out.push_str(report);
            out.push_str(&telemetry::write_trace([(i, events.as_slice())]));
        }
        out
    };
    assert_eq!(
        trace_of(1),
        trace_of(4),
        "shared-cache fleets must serialize identically at any worker count"
    );
}

#[test]
fn deadline_truncated_unknowns_do_not_poison_the_fleet() {
    // Reference: a healthy campaign over a private cache.
    let (ref_report, ref_events) = run(blueprint(3), true, None);

    // A sibling campaign whose per-query wall-clock watchdog has already
    // fired: every solve that reaches the SAT search truncates to Unknown.
    // Those Unknowns are watchdog artifacts — they must never be memoized
    // fleet-wide, or siblings would replay them for queries they had time
    // to solve, nondeterministically suppressing seeds and findings.
    // Same conflict cap as the healthy campaign so the canonical keys
    // match — this test is about the Unknown policy, not key separation
    // (that is `heterogeneous_conflict_budgets_do_not_alias`).
    let cache = Arc::new(SolverCache::new());
    let truncated_events = run_with_budget(
        blueprint(3),
        Budget {
            deadline: Deadline::after_secs(0.0),
            ..config().smt_budget
        },
        &cache,
    );
    let truncated = truncated_events
        .iter()
        .filter(|ev| {
            matches!(
                ev,
                TelemetryEvent::SmtQuery {
                    outcome: telemetry::SmtOutcome::Unknown,
                    ..
                }
            )
        })
        .count();
    assert!(
        truncated > 0,
        "watchdog campaign produced no truncated queries; this test is vacuous"
    );

    // A healthy campaign sharing that cache must be byte-identical to the
    // reference, reuse tags included.
    let (report, events) = run(blueprint(3), true, Some(cache));
    assert_eq!(
        report, ref_report,
        "deadline-truncated Unknowns leaked into the fleet cache"
    );
    assert_eq!(events, ref_events);
}

#[test]
fn heterogeneous_conflict_budgets_do_not_alias() {
    // The conflict cap decides where a search gives up, so it is part of
    // the canonical key: a campaign solving under a starved cap must not
    // hand its (deterministic but cap-specific) outcomes to a sibling with
    // a real budget.
    let (ref_report, ref_events) = run(blueprint(5), true, None);

    let cache = Arc::new(SolverCache::new());
    run_with_budget(blueprint(5), Budget::conflicts(1), &cache);

    let (report, events) = run(blueprint(5), true, Some(cache));
    assert_eq!(
        report, ref_report,
        "starved-budget outcomes aliased a full-budget campaign"
    );
    assert_eq!(events, ref_events);
}
