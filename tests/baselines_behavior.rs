//! The baselines must exhibit the behaviours the WASAI evaluation measures:
//! EOSFuzzer cannot pass solver-grade gates; EOSAFE's Rollback oracle
//! false-positives on dead code; both lose where WASAI wins.

use wasai::prelude::*;
use wasai::wasai_baselines::{eosafe_analyze, EosFuzzer, EosafeConfig};
use wasai::wasai_core::TargetInfo;
use wasai::wasai_corpus::{GateKind, RewardKind};

#[test]
fn eosfuzzer_detects_plain_fake_eos() {
    let c = generate(Blueprint {
        seed: 21,
        code_guard: false,
        ..Blueprint::default()
    });
    let report = EosFuzzer::new(TargetInfo::new(c.module, c.abi), FuzzConfig::quick())
        .unwrap()
        .run();
    assert!(report.has(VulnClass::FakeEos));
    assert_eq!(report.smt_queries, 0, "EOSFuzzer never solves constraints");
}

#[test]
fn eosfuzzer_misses_gated_blockinfo_that_wasai_finds() {
    let bp = Blueprint {
        seed: 3,
        blockinfo: true,
        reward: RewardKind::Inline,
        gate: GateKind::Solvable { depth: 2 },
        eosponser_branches: 1,
        ..Blueprint::default()
    };
    let c = generate(bp);
    let ef = EosFuzzer::new(
        TargetInfo::new(c.module.clone(), c.abi.clone()),
        FuzzConfig::quick(),
    )
    .unwrap()
    .run();
    assert!(
        !ef.has(VulnClass::BlockinfoDep),
        "random fuzzing cannot guess a 64-bit gate constant"
    );
    let wa = Wasai::new(c.module, c.abi)
        .with_config(FuzzConfig::quick())
        .run()
        .unwrap();
    assert!(
        wa.has(VulnClass::BlockinfoDep),
        "the concolic loop must pass the gate"
    );
}

#[test]
fn eosafe_detects_missing_code_guard_statically() {
    let vuln = generate(Blueprint {
        seed: 31,
        code_guard: false,
        ..Blueprint::default()
    });
    let safe = generate(Blueprint {
        seed: 31,
        code_guard: true,
        ..Blueprint::default()
    });
    let rv = eosafe_analyze(&vuln.module, &vuln.abi, EosafeConfig::default());
    let rs = eosafe_analyze(&safe.module, &safe.abi, EosafeConfig::default());
    assert!(rv.has(VulnClass::FakeEos));
    assert!(!rs.has(VulnClass::FakeEos));
    assert!(rv.located_dispatcher && rs.located_dispatcher);
}

#[test]
fn eosafe_rollback_oracle_false_positives_on_dead_code() {
    // The §4.2 flaw: send_inline on an unsatisfiable branch still flags.
    let dead = generate(Blueprint {
        seed: 32,
        blockinfo: true,
        reward: RewardKind::Inline,
        gate: GateKind::Unsatisfiable { depth: 2 },
        ..Blueprint::default()
    });
    let r = eosafe_analyze(&dead.module, &dead.abi, EosafeConfig::default());
    assert!(
        r.has(VulnClass::Rollback),
        "EOSAFE analyzes all branches even if constraints are impossible"
    );
    // WASAI, being dynamic, does not fall for it (see detection.rs).
}

#[test]
fn eosafe_detects_payee_guard_presence() {
    let guarded = generate(Blueprint {
        seed: 33,
        payee_guard: true,
        ..Blueprint::default()
    });
    let open = generate(Blueprint {
        seed: 33,
        payee_guard: false,
        ..Blueprint::default()
    });
    let rg = eosafe_analyze(&guarded.module, &guarded.abi, EosafeConfig::default());
    let ro = eosafe_analyze(&open.module, &open.abi, EosafeConfig::default());
    assert!(
        !rg.has(VulnClass::FakeNotif),
        "guard compare found on explored paths"
    );
    assert!(ro.has(VulnClass::FakeNotif));
}

#[test]
fn eosafe_missauth_requires_feasible_path() {
    let vuln = generate(Blueprint {
        seed: 34,
        auth_check: false,
        ..Blueprint::default()
    });
    let safe = generate(Blueprint {
        seed: 34,
        auth_check: true,
        ..Blueprint::default()
    });
    let rv = eosafe_analyze(&vuln.module, &vuln.abi, EosafeConfig::default());
    let rs = eosafe_analyze(&safe.module, &safe.abi, EosafeConfig::default());
    assert!(rv.has(VulnClass::MissAuth));
    assert!(!rs.has(VulnClass::MissAuth));
}

#[test]
fn eosafe_never_flags_blockinfo() {
    let c = generate(Blueprint {
        seed: 35,
        blockinfo: true,
        gate: GateKind::Open,
        reward: RewardKind::None,
        ..Blueprint::default()
    });
    let r = eosafe_analyze(&c.module, &c.abi, EosafeConfig::default());
    assert!(
        !r.has(VulnClass::BlockinfoDep),
        "EOSAFE has no BlockinfoDep oracle"
    );
}
