//! The fleet metrics plane: worker subprocesses stream full registry
//! snapshots to the supervisor, which merges them into fleet totals plus
//! per-shard `shard="N"` series. These tests drive the real `wasai` binary
//! and check the plane's load-bearing properties end to end:
//!
//! - a `--metrics-dump` under `--procs N` reports the same deterministic
//!   fleet totals as a single-process run (the PR's satellite 1 regression);
//! - a mid-sweep scrape of `--metrics-addr` exposes per-shard series;
//! - `--profile-out` is byte-identical at any `WASAI_JOBS` and under
//!   `--procs`, and adding it perturbs no other output;
//! - `wasai stats --fleet` renders the shard split from a dump.

use std::fs;
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

use wasai::wasai_core::telemetry::parse_json_fields;

/// A fresh scratch directory under the target dir (no tempfile dependency).
fn scratch_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("test-scratch")
        .join(format!("{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Generate a labeled corpus with real action-function branches.
fn write_corpus(dir: &Path) {
    let out = Command::new(env!("CARGO_BIN_EXE_wasai"))
        .arg("gen")
        .arg(dir)
        .arg("3")
        .arg("7")
        .output()
        .expect("spawn wasai gen");
    assert!(out.status.success(), "gen failed: {out:?}");
}

fn read_dump(path: &Path) -> std::collections::BTreeMap<String, u64> {
    let raw = fs::read_to_string(path).expect("metrics dump");
    parse_json_fields(&raw)
        .expect("parseable metrics dump")
        .into_iter()
        .filter_map(|(k, v)| v.as_num().map(|n| (k, n)))
        .collect()
}

/// Deterministic work counters: identical at any `--procs` / `WASAI_JOBS`
/// because they count simulated work, not wall time or cache luck.
const DETERMINISTIC_SERIES: &[&str] = &[
    "wasai_campaigns_total{outcome=\"ok\"}",
    "wasai_seeds_executed_total",
    "wasai_iterations_total",
    "wasai_coverage_branches_total",
    "wasai_branch_sites_total",
    "wasai_flips_total",
    "wasai_replays_total",
];

/// Run an `audit-dir` sweep over `dir`, returning (dump path, stdout).
fn sweep(dir: &Path, tag: &str, procs: Option<&str>, extra: &[&str]) -> (PathBuf, String) {
    let dump = dir.join(format!("dump-{tag}.json"));
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_wasai"));
    cmd.arg("audit-dir")
        .arg(dir)
        .arg("5")
        .arg("--deadline-secs")
        .arg("300")
        .arg("--metrics-dump")
        .arg(&dump)
        .env("WASAI_PROGRESS", "0");
    if let Some(n) = procs {
        cmd.arg("--procs").arg(n);
    }
    for arg in extra {
        cmd.arg(arg);
    }
    let out = cmd.output().expect("spawn wasai");
    assert_eq!(out.status.code(), Some(0), "{tag}: {out:?}");
    (dump, verdict_lines(&out.stdout))
}

/// Per-contract verdict lines: stdout up to the summary (which reports
/// wall-clock time and so differs run to run by design).
fn verdict_lines(stdout: &[u8]) -> String {
    String::from_utf8_lossy(stdout)
        .lines()
        .take_while(|l| !l.is_empty())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Satellite 1: under `--procs N` the dump must report *fleet totals* — the
/// metrics frames stream every worker's registry to the supervisor — so the
/// deterministic series match a single-process run exactly. Before the
/// metrics plane, worker counters died with the worker processes and the
/// supervisor's dump undercounted everything the workers did.
#[test]
fn metrics_dump_under_procs_reports_fleet_totals() {
    let dir = scratch_dir("fleet-dump");
    write_corpus(&dir);

    let (dump1, stdout1) = sweep(&dir, "procs1", None, &[]);
    let (dump4, stdout4) = sweep(&dir, "procs4", Some("4"), &[]);
    assert_eq!(stdout1, stdout4, "verdicts drifted across --procs");

    let d1 = read_dump(&dump1);
    let d4 = read_dump(&dump4);
    for key in DETERMINISTIC_SERIES {
        assert_eq!(
            d1.get(*key),
            d4.get(*key),
            "{key} drifted between procs=1 and procs=4"
        );
        assert!(
            d1.get(*key).copied().unwrap_or(0) > 0,
            "{key} never counted"
        );
    }
    // The supervisor counted the merged frames and rejected none.
    assert!(
        d4.get("wasai_metrics_frames_merged_total")
            .copied()
            .unwrap_or(0)
            >= 4,
        "expected at least one merged frame per worker: {d4:?}"
    );
    assert_eq!(
        d4.get("wasai_metrics_frames_rejected_total").copied(),
        Some(0),
        "frames rejected in a clean run"
    );
    // Per-shard series exist in the procs dump and sum to the fleet total.
    let shard_seeds: u64 = d4
        .iter()
        .filter(|(k, _)| k.starts_with("wasai_seeds_executed_total{shard=\""))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(
        Some(shard_seeds),
        d4.get("wasai_seeds_executed_total").copied(),
        "shard series don't sum to the fleet total: {d4:?}"
    );
    // The single-process dump has no shard series to confuse dashboards.
    assert!(
        !d1.keys().any(|k| k.contains("shard=")),
        "procs=1 dump grew shard series: {d1:?}"
    );
}

/// Minimal HTTP GET against the metrics listener.
fn http_get(addr: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect metrics listener");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .expect("set timeout");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut buf = String::new();
    stream.read_to_string(&mut buf).expect("read response");
    let (_, body) = buf.split_once("\r\n\r\n").expect("header/body split");
    body.to_string()
}

/// The tentpole's live view: scraping `--metrics-addr` during (or right
/// after, under linger) a `--procs` sweep serves per-shard series next to
/// the fleet rollup.
#[test]
fn live_scrape_under_procs_serves_shard_series() {
    let dir = scratch_dir("fleet-scrape");
    write_corpus(&dir);
    let mut child = Command::new(env!("CARGO_BIN_EXE_wasai"))
        .arg("audit-dir")
        .arg(&dir)
        .arg("5")
        .arg("--deadline-secs")
        .arg("300")
        .arg("--procs")
        .arg("2")
        .arg("--metrics-addr")
        .arg("127.0.0.1:0")
        .env("WASAI_PROGRESS", "0")
        .env("WASAI_METRICS_LINGER_SECS", "60")
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn wasai");

    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("stderr closed before listener banner")
            .expect("read stderr");
        if let Some(rest) = line.strip_prefix("metrics listening on http://") {
            break rest
                .strip_suffix("/metrics")
                .expect("banner ends in /metrics")
                .to_string();
        }
    };

    // Workers stream a frame at least every 200ms; poll until both shards
    // have merged one (the linger window keeps the listener alive after the
    // sweep, so this cannot deadlock on a fast run).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let body = loop {
        let body = http_get(&addr, "/metrics");
        let shards_up = body.contains("shard=\"0\"") && body.contains("shard=\"1\"");
        if shards_up || std::time::Instant::now() > deadline {
            break body;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    };
    for series in [
        "wasai_seeds_executed_total{shard=\"0\"}",
        "wasai_seeds_executed_total{shard=\"1\"}",
    ] {
        assert!(body.contains(series), "missing {series}:\n{body}");
    }
    // Totals precede their shard split (exposition readability contract).
    let total_at = body
        .find("\nwasai_seeds_executed_total ")
        .expect("fleet total line");
    let shard_at = body
        .find("wasai_seeds_executed_total{shard=")
        .expect("shard line");
    assert!(total_at < shard_at, "shard series before the fleet total");

    // The JSON twin carries the same shard keys.
    let jbody = http_get(&addr, "/metrics.json");
    let fields = parse_json_fields(&jbody).expect("parseable /metrics.json");
    assert!(
        fields
            .keys()
            .any(|k| k.starts_with("wasai_seeds_executed_total{shard=")),
        "JSON twin missing shard series: {jbody}"
    );

    child.kill().expect("kill lingering child");
    child.wait().expect("reap child");
}

/// `--profile-out` folds the virtual-clock span partition, so the file is
/// byte-identical at any `WASAI_JOBS` and under `--procs`, and turning it
/// on perturbs neither verdicts nor triage.
#[test]
fn profile_is_byte_identical_across_schedules_and_out_of_band() {
    let dir = scratch_dir("fleet-profile");
    write_corpus(&dir);

    let run = |tag: &str, jobs: &str, procs: Option<&str>, profile: bool| {
        let profile_path = dir.join(format!("profile-{tag}.folded"));
        let triage_path = dir.join(format!("triage-{tag}.jsonl"));
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_wasai"));
        cmd.arg("audit-dir")
            .arg(&dir)
            .arg("5")
            .arg("--deadline-secs")
            .arg("300")
            .arg("--triage")
            .arg(&triage_path)
            .env("WASAI_JOBS", jobs)
            .env("WASAI_PROGRESS", "0");
        if profile {
            cmd.arg("--profile-out").arg(&profile_path);
        }
        if let Some(n) = procs {
            cmd.arg("--procs").arg(n);
        }
        let out = cmd.output().expect("spawn wasai");
        assert_eq!(out.status.code(), Some(0), "{tag}: {out:?}");
        let profile_text = if profile {
            fs::read_to_string(&profile_path).expect("profile exists")
        } else {
            String::new()
        };
        let triage = fs::read_to_string(&triage_path).expect("triage exists");
        // Strip the only wall-clock field before comparing schedules.
        let triage_det: String = triage
            .lines()
            .map(|l| {
                let (head, _) = l.rsplit_once(",\"elapsed_ms\"").expect("elapsed_ms last");
                format!("{head}}}\n")
            })
            .collect();
        (profile_text, triage_det, verdict_lines(&out.stdout))
    };

    let (profile1, triage1, stdout1) = run("j1", "1", None, true);
    assert!(
        profile1.lines().count() >= 3,
        "profile too small for a 3-contract corpus:\n{profile1}"
    );
    for line in profile1.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("weight separator");
        assert!(stack.starts_with("wasai;"), "bad stack root: {line}");
        assert!(
            stack.ends_with(";execute") || stack.ends_with(";solve"),
            "bad leaf frame: {line}"
        );
        weight.parse::<u64>().expect("numeric weight");
    }

    let (profile4, triage4, stdout4) = run("j4", "4", None, true);
    assert_eq!(profile1, profile4, "profile drifted across WASAI_JOBS");
    assert_eq!(triage1, triage4, "triage drifted across WASAI_JOBS");
    assert_eq!(stdout1, stdout4, "verdicts drifted across WASAI_JOBS");

    let (profile_p, _, stdout_p) = run("p2", "2", Some("2"), true);
    assert_eq!(profile1, profile_p, "profile drifted under --procs");
    assert_eq!(stdout1, stdout_p, "verdicts drifted under --procs");

    // Out-of-band: the profile flag changes nothing else.
    let (_, triage_dark, stdout_dark) = run("dark", "1", None, false);
    assert_eq!(triage1, triage_dark, "--profile-out perturbed triage");
    assert_eq!(stdout1, stdout_dark, "--profile-out perturbed verdicts");
}

/// `wasai stats --fleet` renders a procs dump as the fleet-total table
/// followed by one table per shard.
#[test]
fn stats_fleet_renders_shard_tables_from_a_procs_dump() {
    let dir = scratch_dir("fleet-stats");
    write_corpus(&dir);
    let (dump, _) = sweep(&dir, "stats", Some("2"), &[]);

    let out = Command::new(env!("CARGO_BIN_EXE_wasai"))
        .arg("stats")
        .arg(&dump)
        .arg("--fleet")
        .output()
        .expect("spawn wasai stats");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fleet totals:"), "no totals table:\n{text}");
    assert!(text.contains("\nshard 0:"), "no shard 0 table:\n{text}");
    assert!(text.contains("\nshard 1:"), "no shard 1 table:\n{text}");
    // Shard tables show the de-labeled series names.
    let shard0 = text.split("\nshard 0:").nth(1).expect("shard 0 section");
    assert!(
        shard0.contains("wasai_seeds_executed_total"),
        "shard table missing seeds series:\n{text}"
    );
    assert!(
        !shard0.contains("shard=\""),
        "shard label leaked into a shard table:\n{text}"
    );

    // --fleet on a non-dump input is a usage error, not a silent fallback.
    let triage = dir.join("t.jsonl");
    fs::write(&triage, "{\"contract\":\"x\",\"outcome\":\"ok\"}\n").expect("write triage stub");
    let out = Command::new(env!("CARGO_BIN_EXE_wasai"))
        .arg("stats")
        .arg(&triage)
        .arg("--fleet")
        .output()
        .expect("spawn wasai stats");
    assert_ne!(out.status.code(), Some(0), "--fleet accepted a triage file");
}
