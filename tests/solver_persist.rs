//! The persistent solver cache's end-to-end contract, driven through the
//! real `wasai` binary:
//!
//! - **Warm start**: a second sweep pointed at the same `--solver-cache`
//!   file answers (nearly) every fleet lookup from disk, and its reports
//!   are byte-identical to the cold run's — persistence is observationally
//!   pure, exactly like the in-memory cache it extends.
//! - **Schedule independence**: the saved cache file is a pure function of
//!   the corpus, not of `WASAI_JOBS` or `--procs` — entries are idempotent
//!   and eviction keeps the smallest N keys, so any arrival order converges
//!   to the same bytes.
//! - **Portfolio neutrality**: `--portfolio K` races variant configurations
//!   for diagnostics only; verdicts and triage stay byte-identical to
//!   `K = 1`.
//! - **Durability**: a mid-file corruption is refused with a line number
//!   (fail loudly, like the fleet journal), while other damage shapes are
//!   covered by the unit suite in `crates/smt/src/persist.rs`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use wasai::wasai_core::telemetry::parse_json_fields;

/// A fresh scratch directory under the target dir (no tempfile dependency;
/// target/ is already gitignored and writable).
fn scratch_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("test-scratch")
        .join(format!("{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Generate a small labeled corpus with the repo's own generator.
fn gen_corpus(dir: &Path) {
    let out = Command::new(env!("CARGO_BIN_EXE_wasai"))
        .arg("gen")
        .arg(dir)
        .arg("4")
        .arg("1")
        .output()
        .expect("spawn wasai gen");
    assert!(out.status.success(), "gen failed: {out:?}");
}

struct SweepRun {
    exit_code: i32,
    /// Per-contract verdict lines (stdout up to the summary blank line —
    /// the summary carries wall-clock timings and is not part of the
    /// byte-identity contract).
    verdicts: Vec<String>,
    stderr: String,
}

/// Run `wasai audit-dir <dir> 5 …` with a deterministic environment.
fn run_audit_dir(dir: &Path, extra_args: &[&str], envs: &[(&str, &str)]) -> SweepRun {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_wasai"));
    cmd.arg("audit-dir")
        .arg(dir)
        .arg("5")
        .arg("--deadline-secs")
        .arg("300")
        .env_remove("WASAI_CHAOS")
        .env_remove("WASAI_PROCS")
        .env_remove("WASAI_PORTFOLIO")
        .env("WASAI_JOBS", "2")
        .env("WASAI_PROGRESS", "0");
    for a in extra_args {
        cmd.arg(a);
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn wasai audit-dir");
    let verdicts = String::from_utf8_lossy(&out.stdout)
        .lines()
        .take_while(|l| !l.is_empty())
        .map(str::to_string)
        .collect();
    SweepRun {
        exit_code: out.status.code().expect("exit code"),
        verdicts,
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

/// Read one integer series out of a `--metrics-dump` snapshot.
fn dump_counter(path: &Path, series: &str) -> u64 {
    let raw = fs::read_to_string(path).expect("metrics dump exists");
    let fields = parse_json_fields(&raw).expect("parseable metrics dump");
    fields
        .get(series)
        .and_then(|v| v.as_num())
        .unwrap_or_else(|| panic!("series {series} missing from {}", path.display()))
}

#[test]
fn warm_start_hits_disk_and_reports_stay_byte_identical() {
    let dir = scratch_dir("persist-warm");
    gen_corpus(&dir);
    let cache = dir.join("solver.cache");
    let cache_arg = cache.to_str().unwrap().to_string();

    let cold_dump = dir.join("cold.json");
    let cold = run_audit_dir(
        &dir,
        &[
            "--solver-cache",
            &cache_arg,
            "--metrics-dump",
            cold_dump.to_str().unwrap(),
        ],
        &[],
    );
    assert_eq!(cold.exit_code, 0, "cold sweep failed: {}", cold.stderr);
    assert!(cache.is_file(), "cold sweep must create the cache file");
    let cold_bytes = fs::read(&cache).expect("cache file readable");
    assert!(
        fs::read_to_string(&cache)
            .unwrap()
            .starts_with("wasai-solver-cache v"),
        "cache file must carry the versioned header"
    );

    let warm_dump = dir.join("warm.json");
    let warm = run_audit_dir(
        &dir,
        &[
            "--solver-cache",
            &cache_arg,
            "--metrics-dump",
            warm_dump.to_str().unwrap(),
        ],
        &[],
    );
    assert_eq!(warm.exit_code, 0, "warm sweep failed: {}", warm.stderr);
    assert_eq!(
        cold.verdicts, warm.verdicts,
        "a warm-started sweep must render byte-identical reports"
    );
    assert_eq!(
        fs::read(&cache).expect("cache file readable"),
        cold_bytes,
        "re-saving a fully warmed cache must be byte-identical"
    );

    // The whole point of the warm start: the second run answers its fleet
    // lookups from disk instead of re-solving.
    let lookups = dump_counter(&warm_dump, "wasai_smt_cache_lookups_total{level=\"fleet\"}");
    let hits = dump_counter(&warm_dump, "wasai_smt_cache_hits_total{level=\"fleet\"}");
    assert!(lookups > 0, "warm sweep performed no fleet lookups");
    let rate = hits as f64 / lookups as f64;
    assert!(
        rate >= 0.8,
        "warm fleet hit rate {rate:.2} ({hits}/{lookups}) below 0.8"
    );
    let cold_hits = dump_counter(&cold_dump, "wasai_smt_cache_hits_total{level=\"fleet\"}");
    assert!(
        hits > cold_hits,
        "warm hits ({hits}) must exceed cold hits ({cold_hits})"
    );
}

#[test]
fn cache_file_is_independent_of_jobs_and_procs() {
    let dir = scratch_dir("persist-sched");
    gen_corpus(&dir);

    let mut reference: Option<(Vec<u8>, Vec<String>)> = None;
    for (tag, extra, envs) in [
        ("j1", vec![], vec![("WASAI_JOBS", "1")]),
        ("j4", vec![], vec![("WASAI_JOBS", "4")]),
        ("p2", vec!["--procs", "2"], vec![("WASAI_JOBS", "2")]),
    ] {
        let cache = dir.join(format!("solver-{tag}.cache"));
        let cache_arg = cache.to_str().unwrap().to_string();
        let mut args = vec!["--solver-cache", &cache_arg];
        args.extend(extra);
        let run = run_audit_dir(&dir, &args, &envs);
        assert_eq!(run.exit_code, 0, "{tag} sweep failed: {}", run.stderr);
        let bytes = fs::read(&cache).expect("cache file readable");
        match &reference {
            None => reference = Some((bytes, run.verdicts)),
            Some((ref_bytes, ref_stdout)) => {
                assert_eq!(
                    &bytes, ref_bytes,
                    "{tag}: cache file must not depend on the schedule"
                );
                assert_eq!(
                    &run.verdicts, ref_stdout,
                    "{tag}: reports must not depend on the schedule"
                );
            }
        }
    }
}

#[test]
fn portfolio_races_never_change_reports() {
    let dir = scratch_dir("persist-portfolio");
    gen_corpus(&dir);
    let base = run_audit_dir(&dir, &[], &[]);
    assert_eq!(base.exit_code, 0, "base sweep failed: {}", base.stderr);
    let flagged = run_audit_dir(&dir, &["--portfolio", "3"], &[]);
    assert_eq!(flagged.exit_code, 0);
    assert_eq!(
        base.verdicts, flagged.verdicts,
        "--portfolio 3 must not change reported verdicts"
    );
    let env_run = run_audit_dir(&dir, &[], &[("WASAI_PORTFOLIO", "3")]);
    assert_eq!(env_run.exit_code, 0);
    assert_eq!(base.verdicts, env_run.verdicts);
}

#[test]
fn corrupt_cache_file_is_refused_with_a_line_number() {
    let dir = scratch_dir("persist-corrupt");
    gen_corpus(&dir);
    let cache = dir.join("solver.cache");
    let cache_arg = cache.to_str().unwrap().to_string();
    let cold = run_audit_dir(&dir, &["--solver-cache", &cache_arg], &[]);
    assert_eq!(cold.exit_code, 0, "cold sweep failed: {}", cold.stderr);

    // Flip a digit inside the first record (line 2): digest check fails.
    let text = fs::read_to_string(&cache).expect("cache file readable");
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    assert!(lines.len() >= 2, "expected at least one cache record");
    lines[1] = lines[1].replace(['0', '1'], "2");
    fs::write(&cache, lines.join("\n") + "\n").expect("rewrite cache");

    let run = run_audit_dir(&dir, &["--solver-cache", &cache_arg], &[]);
    assert_eq!(run.exit_code, 1, "corrupt cache must be fatal");
    assert!(
        run.stderr.contains("line 2"),
        "error must name the corrupt line: {}",
        run.stderr
    );
}
