//! Robustness: campaigns must terminate and stay useful on adversarial
//! targets — infinite loops, trap-happy contracts, nonstandard dispatchers.

use wasai::prelude::*;
use wasai::wasai_wasm::instr::Instr;
use wasai::wasai_wasm::types::{BlockType, ValType::*};
use wasai::wasai_wasm::ModuleBuilder;

#[test]
fn infinite_loop_contract_cannot_hang_the_campaign() {
    // apply() spins forever: every transaction exhausts its fuel and
    // reverts; the campaign must still terminate (virtual clock + stall).
    let mut b = ModuleBuilder::with_memory(1);
    let apply = b.func(
        &[I64, I64, I64],
        &[],
        &[],
        vec![
            Instr::Loop(BlockType::Empty),
            Instr::Br(0),
            Instr::End,
            Instr::End,
        ],
    );
    b.export_func("apply", apply);
    let abi = Abi::new(vec![ActionDecl::transfer()]);
    let report = Wasai::new(b.build(), abi)
        .with_config(FuzzConfig::quick())
        .run()
        .expect("campaign terminates");
    // Each spinning transaction burns its full fuel budget, so the virtual
    // clock (not iteration count) is what bounds the campaign.
    assert!(report.virtual_us > 0);
    assert!(
        report.findings.is_empty(),
        "a spinning contract serves nobody"
    );
}

#[test]
fn trap_only_contract_is_clean() {
    let mut b = ModuleBuilder::with_memory(1);
    let apply = b.func(
        &[I64, I64, I64],
        &[],
        &[],
        vec![Instr::Unreachable, Instr::End],
    );
    b.export_func("apply", apply);
    let abi = Abi::new(vec![ActionDecl::transfer()]);
    let report = Wasai::new(b.build(), abi)
        .with_config(FuzzConfig::quick())
        .run()
        .expect("campaign terminates");
    assert!(report.findings.is_empty());
}

#[test]
fn direct_call_dispatcher_is_still_analyzed() {
    // A dispatcher that calls its eosponser DIRECTLY (no call_indirect):
    // the §3.4.2 fallback locates the action function as the last function
    // entered, and Fake EOS detection still works.
    let mut b = ModuleBuilder::with_memory(1);
    let db_store = b.import_func(
        "env",
        "db_store_i64",
        &[I64, I64, I64, I64, I32, I32],
        &[I32],
    );
    let tapos = b.import_func("env", "tapos_block_num", &[], &[I32]);
    let eosponser = b.func(
        &[I64, I64, I64, I32, I32],
        &[],
        &[],
        vec![
            Instr::LocalGet(0),
            Instr::I64Const(Name::new("log").as_i64()),
            Instr::LocalGet(0),
            Instr::Call(tapos),
            Instr::I64ExtendI32U,
            Instr::I32Const(0),
            Instr::I32Const(4),
            Instr::Call(db_store),
            Instr::Drop,
            Instr::End,
        ],
    );
    let apply = b.func(
        &[I64, I64, I64],
        &[],
        &[],
        vec![
            Instr::LocalGet(2),
            Instr::I64Const(Name::new("transfer").as_i64()),
            Instr::I64Eq,
            Instr::If(BlockType::Empty),
            // No code guard, direct call with placeholder args.
            Instr::LocalGet(0),
            Instr::LocalGet(1),
            Instr::LocalGet(2),
            Instr::I32Const(0),
            Instr::I32Const(0),
            Instr::Call(eosponser),
            Instr::End,
            Instr::End,
        ],
    );
    b.export_func("apply", apply);
    let abi = Abi::new(vec![ActionDecl::transfer()]);
    let report = Wasai::new(b.build(), abi)
        .with_config(FuzzConfig::quick())
        .run()
        .expect("campaign runs");
    assert!(
        report.has(VulnClass::FakeEos),
        "fallback action-function location must still catch the bug: {report:?}"
    );
}

#[test]
fn contract_without_eosponser_is_handled() {
    // Only a custom action, no transfer at all — payload sweeps are skipped
    // and ordinary fuzzing proceeds.
    let mut b = ModuleBuilder::with_memory(1);
    let tapos = b.import_func("env", "tapos_block_prefix", &[], &[I32]);
    let apply = b.func(
        &[I64, I64, I64],
        &[],
        &[],
        vec![Instr::Call(tapos), Instr::Drop, Instr::End],
    );
    b.export_func("apply", apply);
    let abi = Abi::new(vec![ActionDecl::new(
        Name::new("tick"),
        vec![ParamType::U64],
    )]);
    let report = Wasai::new(b.build(), abi)
        .with_config(FuzzConfig::quick())
        .run()
        .expect("campaign runs");
    assert!(report.has(VulnClass::BlockinfoDep));
    assert!(!report.has(VulnClass::FakeEos));
}

#[test]
fn invalid_module_is_rejected_up_front() {
    let mut b = ModuleBuilder::new();
    let apply = b.func(&[I64, I64, I64], &[], &[], vec![Instr::I32Add, Instr::End]);
    b.export_func("apply", apply);
    let err = Wasai::new(b.build(), Abi::default()).run();
    assert!(
        err.is_err(),
        "stack-broken modules must fail instrumentation/deployment"
    );
}
