//! Crash-proof fleet contract: the supervised multi-process sweep and the
//! durable outcome journal must converge to byte-identical reports.
//!
//! - **Differential**: `audit-dir --procs {1,2,4}` produces the same
//!   verdict lines and the same triage bytes (modulo wall-clock
//!   `elapsed_ms`) as an unsupervised `WASAI_JOBS=1` run — worker sharding
//!   and retry interleavings are scheduling details, never result inputs.
//! - **Durability**: a journal truncated mid-file (the crash shape) resumes
//!   by re-running exactly the missing campaigns, asserted through the
//!   `wasai_journal_replayed_total` / `wasai_campaigns_total` counters.
//! - **Chaos** (`cargo test --features chaos --test supervisor_resume`):
//!   `WASAI_CHAOS=kill@i` worker kills, retry exhaustion (`crashed`
//!   triage), and a SIGKILLed supervisor resumed to completion.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use wasai::wasai_core::telemetry::parse_json_fields;

/// A fresh scratch directory under the target dir (no tempfile dependency;
/// target/ is already gitignored and writable).
fn scratch_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("test-scratch")
        .join(format!("{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Generate the shared labeled corpus (6 contracts, a mix of clean and
/// vulnerable) with the repo's own generator.
fn gen_corpus(dir: &Path) {
    let out = Command::new(env!("CARGO_BIN_EXE_wasai"))
        .arg("gen")
        .arg(dir)
        .arg("6")
        .arg("1")
        .output()
        .expect("spawn wasai gen");
    assert!(out.status.success(), "gen failed: {out:?}");
}

const SWEEP_SEED: &str = "5";

struct SweepRun {
    exit_code: i32,
    /// Per-contract verdict lines (stdout up to the summary blank line).
    verdicts: Vec<String>,
    /// Triage lines with the wall-clock `elapsed_ms` field stripped —
    /// everything else is part of the byte-identity contract.
    triage: Vec<String>,
}

/// Strip the only wall-clock field from a triage line.
fn strip_elapsed(line: &str) -> String {
    match line.find(",\"elapsed_ms\":") {
        Some(cut) => format!("{}}}", &line[..cut]),
        None => line.to_string(),
    }
}

/// Run `wasai audit-dir <dir> 5 --triage … <extra>` and split its output.
fn run_audit_dir(dir: &Path, tag: &str, extra_args: &[&str], envs: &[(&str, &str)]) -> SweepRun {
    let triage_path = dir.join(format!("triage-{tag}.jsonl"));
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_wasai"));
    cmd.arg("audit-dir")
        .arg(dir)
        .arg(SWEEP_SEED)
        .arg("--deadline-secs")
        .arg("300")
        .arg("--triage")
        .arg(&triage_path)
        // The supervised differential must not depend on ambient settings.
        .env_remove("WASAI_CHAOS")
        .env_remove("WASAI_PROCS")
        .env("WASAI_PROGRESS", "0")
        .env("WASAI_RETRY_BACKOFF_MS", "20");
    for a in extra_args {
        cmd.arg(a);
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn wasai audit-dir");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let verdicts = stdout
        .lines()
        .take_while(|l| !l.is_empty())
        .map(str::to_string)
        .collect();
    let triage = fs::read_to_string(&triage_path)
        .expect("triage report exists")
        .lines()
        .map(strip_elapsed)
        .collect();
    SweepRun {
        exit_code: out.status.code().expect("exit code"),
        verdicts,
        triage,
    }
}

/// Read one integer series out of a `--metrics-dump` snapshot.
fn dump_counter(path: &Path, series: &str) -> u64 {
    let raw = fs::read_to_string(path).expect("metrics dump exists");
    let fields = parse_json_fields(&raw).expect("parseable metrics dump");
    fields
        .get(series)
        .and_then(|v| v.as_num())
        .unwrap_or_else(|| panic!("series {series} missing from {}", path.display()))
}

#[test]
fn supervised_procs_converge_byte_identically() {
    let dir = scratch_dir("sup-differential");
    gen_corpus(&dir);
    let baseline = run_audit_dir(&dir, "base", &[], &[("WASAI_JOBS", "1")]);
    assert_eq!(baseline.exit_code, 0);
    assert_eq!(baseline.verdicts.len(), 6);
    for procs in ["1", "2", "4"] {
        let supervised = run_audit_dir(
            &dir,
            &format!("procs{procs}"),
            &["--procs", procs],
            &[("WASAI_JOBS", "4")],
        );
        assert_eq!(supervised.exit_code, 0, "--procs {procs}");
        assert_eq!(
            supervised.verdicts, baseline.verdicts,
            "verdicts changed at --procs {procs}"
        );
        assert_eq!(
            supervised.triage, baseline.triage,
            "triage changed at --procs {procs}"
        );
    }
}

#[test]
fn truncated_journal_resumes_by_rerunning_exactly_the_missing_campaigns() {
    let dir = scratch_dir("sup-resume");
    gen_corpus(&dir);
    let baseline = run_audit_dir(&dir, "base", &[], &[("WASAI_JOBS", "1")]);

    // Journal a full run, then chop the journal back to header + 3 records
    // plus a torn half-record — the bytes a SIGKILL mid-append leaves.
    let journal = dir.join("sweep.journal");
    let journaled = run_audit_dir(
        &dir,
        "journal",
        &["--journal", journal.to_str().expect("utf8 path")],
        &[("WASAI_JOBS", "1")],
    );
    assert_eq!(journaled.triage, baseline.triage);
    let text = fs::read_to_string(&journal).expect("journal exists");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 7, "header + one record per campaign");
    let mut kept: String = lines[..4].join("\n");
    kept.push('\n');
    kept.push_str(&lines[4][..lines[4].len() / 2]); // torn tail, no newline
    fs::write(&journal, kept).expect("truncate journal");

    let dump = dir.join("resume-metrics.json");
    let resumed = run_audit_dir(
        &dir,
        "resume",
        &[
            "--resume",
            journal.to_str().expect("utf8 path"),
            "--metrics-dump",
            dump.to_str().expect("utf8 path"),
        ],
        &[("WASAI_JOBS", "1")],
    );
    assert_eq!(resumed.exit_code, 0);
    assert_eq!(resumed.verdicts, baseline.verdicts);
    assert_eq!(resumed.triage, baseline.triage);
    // The exact re-run set: 3 restored without execution, 3 executed.
    assert_eq!(dump_counter(&dump, "wasai_journal_replayed_total"), 3);
    assert_eq!(
        dump_counter(&dump, "wasai_campaigns_total{outcome=\"ok\"}"),
        3,
        "journaled campaigns must not re-execute"
    );
    // The journal was repaired and completed in place.
    let repaired = fs::read_to_string(&journal).expect("journal exists");
    assert_eq!(repaired.lines().count(), 7, "journal complete after resume");
    assert!(repaired.ends_with('\n'), "no torn tail after resume");
}

#[test]
fn trace_out_refuses_procs_and_resume() {
    let dir = scratch_dir("sup-incompat");
    gen_corpus(&dir);
    for extra in [
        &["--trace-out", "t.jsonl", "--procs", "2"][..],
        &["--trace-out", "t.jsonl", "--journal", "j.jsonl"][..],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_wasai"))
            .arg("audit-dir")
            .arg(&dir)
            .arg(SWEEP_SEED)
            .args(extra)
            .env("WASAI_PROGRESS", "0")
            .output()
            .expect("spawn wasai");
        assert_eq!(out.status.code(), Some(1), "{extra:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--trace-out is incompatible"), "{err}");
    }
}

#[cfg(feature = "chaos")]
mod chaos {
    use super::*;
    use std::process::Stdio;
    use std::time::{Duration, Instant};

    /// Worker kill at campaign 1: the supervisor retries the lost shard and
    /// the sweep's verdicts and triage stay byte-identical to an
    /// unsupervised, chaos-free run.
    #[test]
    fn killed_worker_is_retried_and_sweep_is_byte_identical() {
        let dir = scratch_dir("sup-chaos-kill");
        gen_corpus(&dir);
        let baseline = run_audit_dir(&dir, "base", &[], &[("WASAI_JOBS", "1")]);
        assert_eq!(baseline.exit_code, 0);
        for procs in ["2", "4"] {
            let chaotic = run_audit_dir(
                &dir,
                &format!("kill{procs}"),
                &["--procs", procs],
                &[("WASAI_JOBS", "4"), ("WASAI_CHAOS", "kill@1")],
            );
            assert_eq!(chaotic.exit_code, 0, "--procs {procs}");
            assert_eq!(chaotic.verdicts, baseline.verdicts, "--procs {procs}");
            assert_eq!(chaotic.triage, baseline.triage, "--procs {procs}");
        }
    }

    /// With retries exhausted (`WASAI_MAX_ATTEMPTS=1`), the killed shard's
    /// unfinished campaigns are triaged `crashed` and the sweep exits 2 —
    /// while every campaign outside the shard matches the baseline.
    #[test]
    fn exhausted_retries_triage_crashed_and_spare_other_shards() {
        let dir = scratch_dir("sup-chaos-crashed");
        gen_corpus(&dir);
        let baseline = run_audit_dir(&dir, "base", &[], &[("WASAI_JOBS", "1")]);
        // Two procs over six campaigns: shard 0 = {0,1,2}, shard 1 = {3,4,5}.
        // kill@1 aborts shard 0's worker after campaign 0 completed.
        let chaotic = run_audit_dir(
            &dir,
            "crashed",
            &["--procs", "2"],
            &[
                ("WASAI_JOBS", "2"),
                ("WASAI_CHAOS", "kill@1"),
                ("WASAI_MAX_ATTEMPTS", "1"),
            ],
        );
        assert_eq!(chaotic.exit_code, 2, "crashed campaigns are failures");
        for (i, line) in chaotic.triage.iter().enumerate() {
            if line.contains("\"outcome\":\"crashed\"") {
                assert!(
                    line.contains("\"stage\":\"campaign\"")
                        && line.contains("worker process lost")
                        && line.contains("after 1 attempt(s)"),
                    "crashed record shape: {line}"
                );
                assert!((1..=2).contains(&i), "only shard 0's tail crashes: {line}");
            } else {
                assert_eq!(line, &baseline.triage[i], "unaffected campaign changed");
            }
        }
        assert!(
            chaotic
                .triage
                .iter()
                .any(|l| l.contains("\"outcome\":\"crashed\"")),
            "retry exhaustion must surface as crashed triage"
        );
    }

    /// Kill the **supervisor** with SIGKILL mid-sweep (one shard stalled,
    /// the other journaled), then `--resume`: the sweep completes without
    /// re-executing journaled campaigns and matches the baseline.
    #[test]
    fn sigkilled_supervisor_resumes_to_an_identical_report() {
        let dir = scratch_dir("sup-chaos-sigkill");
        gen_corpus(&dir);
        let baseline = run_audit_dir(&dir, "base", &[], &[("WASAI_JOBS", "1")]);

        // Shard 1 ({3,4,5}) stalls its worker process on campaign 3 and the
        // 600s stall detector never fires, so the supervisor hangs with
        // shard 0's three records safely journaled — then dies by SIGKILL.
        let journal = dir.join("sweep.journal");
        let mut supervisor = Command::new(env!("CARGO_BIN_EXE_wasai"))
            .arg("audit-dir")
            .arg(&dir)
            .arg(SWEEP_SEED)
            .arg("--deadline-secs")
            .arg("300")
            .arg("--procs")
            .arg("2")
            .arg("--journal")
            .arg(&journal)
            .env("WASAI_JOBS", "2")
            .env("WASAI_PROGRESS", "0")
            .env("WASAI_CHAOS", "stallproc@3")
            .env("WASAI_WORKER_STALL_SECS", "600")
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn supervised sweep");
        let deadline = Instant::now() + Duration::from_secs(120);
        let journaled = loop {
            let n = fs::read_to_string(&journal)
                .map(|t| t.lines().filter(|l| l.contains("\"index\":")).count())
                .unwrap_or(0);
            if n >= 3 {
                break n;
            }
            assert!(Instant::now() < deadline, "shard 0 never journaled");
            std::thread::sleep(Duration::from_millis(50));
        };
        supervisor.kill().expect("SIGKILL supervisor");
        let _ = supervisor.wait();
        // Reap the orphaned (stalled) worker; the scratch path only appears
        // in this test's worker command lines.
        let _ = Command::new("pkill")
            .args(["-9", "-f", dir.to_str().expect("utf8 path")])
            .status();

        let dump = dir.join("resume-metrics.json");
        let resumed = run_audit_dir(
            &dir,
            "resume",
            &[
                "--resume",
                journal.to_str().expect("utf8 path"),
                "--metrics-dump",
                dump.to_str().expect("utf8 path"),
            ],
            &[("WASAI_JOBS", "1")],
        );
        assert_eq!(resumed.exit_code, 0);
        assert_eq!(resumed.verdicts, baseline.verdicts);
        assert_eq!(resumed.triage, baseline.triage);
        assert_eq!(
            dump_counter(&dump, "wasai_journal_replayed_total"),
            journaled as u64
        );
        assert_eq!(
            dump_counter(&dump, "wasai_campaigns_total{outcome=\"ok\"}"),
            6 - journaled as u64,
            "journaled campaigns must not re-execute after supervisor SIGKILL"
        );
    }
}
