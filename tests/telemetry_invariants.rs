//! Telemetry determinism and accounting invariants.
//!
//! The trace is not a best-effort log: every virtual microsecond the clock
//! charges appears in exactly one `stage_timing` event, every solver call in
//! exactly one `smt_query` event, and the whole stream is keyed by virtual
//! time — so traces are byte-identical at any worker count, and the metrics
//! folded from a trace must reconcile exactly with the campaign's report.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use wasai::prelude::*;
use wasai::wasai_core::{Metrics, Stage, TelemetryEvent};
use wasai::wasai_corpus::{generate, Blueprint, GateKind, RewardKind};
use wasai::wasai_wasm::instr::Instr;
use wasai::wasai_wasm::types::{BlockType, ValType::*};
use wasai::wasai_wasm::{encode, ModuleBuilder};

/// A solver-engaging blueprint: the reward template sits behind a nested
/// 64-bit gate, so the campaign exercises all four stages.
fn solver_blueprint() -> Blueprint {
    Blueprint {
        seed: 3,
        code_guard: true,
        payee_guard: true,
        auth_check: true,
        blockinfo: true,
        sdk_work: 0,
        reward: RewardKind::Inline,
        gate: GateKind::Solvable { depth: 2 },
        eosponser_branches: 1,
    }
}

fn traced(bp: Blueprint) -> (FuzzReport, Vec<TelemetryEvent>) {
    let c = generate(bp);
    Wasai::new(c.module, c.abi)
        .with_config(FuzzConfig::quick())
        .run_traced()
        .expect("campaign runs")
}

#[test]
fn stage_vtime_totals_equal_the_final_clock_reading() {
    let (report, events) = traced(solver_blueprint());
    let metrics = Metrics::from_events(&events);
    assert!(
        metrics.stage_total_us(Stage::Execute) > 0,
        "campaign must have executed seeds"
    );
    assert!(
        metrics.stage_total_us(Stage::Solve) > 0,
        "campaign must have engaged the solver"
    );
    assert_eq!(
        metrics.total_vtime_us(),
        report.virtual_us,
        "every clock charge must appear in exactly one stage_timing event"
    );
}

#[test]
fn smt_query_events_reconcile_with_the_report() {
    let (report, events) = traced(solver_blueprint());
    let metrics = Metrics::from_events(&events);
    assert!(report.smt_queries > 0, "solver must have been engaged");
    assert_eq!(
        metrics.smt_queries(),
        report.smt_queries,
        "one smt_query event per solver call"
    );
    // Coverage accounting reconciles too: the deltas in seed_executed events
    // sum to the final branch count.
    assert_eq!(metrics.coverage_gained, report.branches as u64);
    // And the final event is the campaign's own summary.
    match events.last() {
        Some(TelemetryEvent::CampaignFinished {
            branches,
            truncated,
            vtime,
            ..
        }) => {
            assert_eq!(*branches, report.branches);
            assert_eq!(*truncated, report.truncated);
            assert_eq!(*vtime, report.virtual_us);
        }
        other => panic!("expected CampaignFinished last, got {other:?}"),
    }
}

#[test]
fn traced_and_untraced_campaigns_produce_the_same_report() {
    // Attaching a sink must not perturb the campaign: the default (no sink)
    // report is unchanged by tracing.
    let c = generate(solver_blueprint());
    let plain = Wasai::new(c.module.clone(), c.abi.clone())
        .with_config(FuzzConfig::quick())
        .run()
        .expect("campaign runs");
    let (traced_report, _) = traced(solver_blueprint());
    assert_eq!(plain.render(), traced_report.render());
    assert_eq!(plain.findings, traced_report.findings);
    assert_eq!(plain.virtual_us, traced_report.virtual_us);
    assert_eq!(plain.smt_queries, traced_report.smt_queries);
}

// --- subprocess: the full CLI surface -----------------------------------

fn scratch_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("test-scratch")
        .join(format!("{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn write_contract(dir: &Path, name: &str) {
    let mut b = ModuleBuilder::with_memory(1);
    let apply = b.func(
        &[I64, I64, I64],
        &[],
        &[],
        vec![
            Instr::LocalGet(1),
            Instr::I64Const(0),
            Instr::I64Ne,
            Instr::If(BlockType::Empty),
            Instr::Nop,
            Instr::End,
            Instr::End,
        ],
    );
    b.export_func("apply", apply);
    fs::write(dir.join(format!("{name}.wasm")), encode::encode(&b.build())).expect("write wasm");
    fs::write(
        dir.join(format!("{name}.abi")),
        "transfer(name,name,asset,string)\n",
    )
    .expect("write abi");
}

#[test]
fn trace_is_byte_identical_at_any_worker_count_and_stats_renders_it() {
    let dir = scratch_dir("trace-jobs");
    write_contract(&dir, "alpha");
    write_contract(&dir, "beta");
    write_contract(&dir, "gamma");

    let run = |jobs: &str| -> String {
        let trace_path = dir.join(format!("trace-{jobs}.jsonl"));
        let out = Command::new(env!("CARGO_BIN_EXE_wasai"))
            .arg("audit-dir")
            .arg(&dir)
            .arg("9")
            .arg("--trace-out")
            .arg(&trace_path)
            .env("WASAI_JOBS", jobs)
            .output()
            .expect("spawn wasai");
        assert_eq!(out.status.code(), Some(0), "{:?}", out);
        fs::read_to_string(&trace_path).expect("trace exists")
    };

    let serial = run("1");
    let parallel = run("4");
    assert!(!serial.is_empty());
    assert_eq!(
        serial, parallel,
        "traces must be byte-identical across worker counts"
    );

    // `wasai stats` summarizes the trace: per-stage virtual time, SMT
    // outcomes, and per-oracle verdict counts.
    let stats = Command::new(env!("CARGO_BIN_EXE_wasai"))
        .arg("stats")
        .arg(dir.join("trace-1.jsonl"))
        .output()
        .expect("spawn wasai stats");
    assert_eq!(stats.status.code(), Some(0));
    let text = String::from_utf8_lossy(&stats.stdout);
    assert!(text.contains("=== campaign telemetry ==="), "{text}");
    assert!(text.contains("per-stage virtual time:"), "{text}");
    for stage in Stage::ALL {
        assert!(text.contains(stage.name()), "missing {stage:?}: {text}");
    }
    assert!(text.contains("SMT queries:"), "{text}");
    assert!(
        text.contains("oracle verdicts (flagged / clean):"),
        "{text}"
    );
    assert!(text.contains("campaigns: 3 started, 3 finished"), "{text}");
}
