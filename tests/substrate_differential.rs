//! EOSIO byte-identity across the substrate boundary.
//!
//! The substrate refactor moved the EOSIO campaign body behind the
//! [`wasai::wasai_core::Substrate`] trait verbatim; the golden telemetry
//! snapshots (`tests/telemetry_golden.rs`) pin its output against the
//! pre-refactor bytes. This suite proves the remaining seam: routing a
//! campaign through `--substrate eosio` explicitly produces byte-identical
//! reports, traces, verdict lines and triage records to the auto-detected
//! default — in process, across thread-fleet worker counts, and across
//! `--procs` subprocess sharding.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use wasai::prelude::*;
use wasai::wasai_core::fleet;

/// A fresh scratch directory under the target dir (no tempfile dependency;
/// target/ is already gitignored and writable).
fn scratch_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("test-scratch")
        .join(format!("{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A small mixed corpus: one clean, one Fake EOS, one MissAuth sample.
fn eosio_samples() -> Vec<LabeledContract> {
    vec![
        generate(Blueprint {
            seed: 11,
            ..Blueprint::default()
        }),
        generate(Blueprint {
            seed: 12,
            code_guard: false,
            ..Blueprint::default()
        }),
        generate(Blueprint {
            seed: 13,
            auth_check: false,
            ..Blueprint::default()
        }),
    ]
}

#[test]
fn pinned_eosio_report_and_trace_match_the_default_byte_for_byte() {
    for (i, c) in eosio_samples().into_iter().enumerate() {
        let cfg = FuzzConfig {
            rng_seed: 77 ^ i as u64,
            ..FuzzConfig::quick()
        };
        let (auto_report, auto_trace) = Wasai::new(c.module.clone(), c.abi.clone())
            .with_config(cfg)
            .run_traced()
            .expect("deploys");
        let (pinned_report, pinned_trace) = Wasai::new(c.module.clone(), c.abi.clone())
            .with_config(cfg)
            .with_substrate(SubstrateKind::Eosio)
            .run_traced()
            .expect("deploys");
        assert_eq!(
            auto_report.render(),
            pinned_report.render(),
            "sample {i}: report text must be byte-identical"
        );
        assert_eq!(
            auto_trace, pinned_trace,
            "sample {i}: telemetry event streams must be identical"
        );
        assert_eq!(auto_report.findings, c.label, "sample {i}: ground truth");
    }
}

#[test]
fn thread_fleet_is_invariant_to_worker_count_with_the_substrate_pinned() {
    let samples = eosio_samples();
    let sweep = |jobs: usize| -> Vec<String> {
        let items: Vec<(usize, LabeledContract)> = samples.iter().cloned().enumerate().collect();
        fleet::run_jobs(jobs, items, |_, (i, c)| {
            Wasai::new(c.module, c.abi)
                .with_config(FuzzConfig {
                    rng_seed: 5 ^ i as u64,
                    ..FuzzConfig::quick()
                })
                .with_substrate(SubstrateKind::Eosio)
                .run()
                .expect("deploys")
                .render()
        })
    };
    assert_eq!(
        sweep(1),
        sweep(4),
        "1-worker and 4-worker sweeps must render identical reports"
    );
}

/// One CLI sweep's comparable output: per-contract verdict lines plus
/// triage records with the wall-clock `elapsed_ms` field stripped.
fn run_sweep(dir: &Path, tag: &str, extra_args: &[&str]) -> (Vec<String>, Vec<String>) {
    let triage_path = dir.join(format!("triage-{tag}.jsonl"));
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_wasai"));
    cmd.arg("audit-dir")
        .arg(dir)
        .arg("9")
        .arg("--triage")
        .arg(&triage_path)
        .env_remove("WASAI_CHAOS")
        .env_remove("WASAI_PROCS")
        .env_remove("WASAI_JOBS")
        .env("WASAI_PROGRESS", "0");
    for a in extra_args {
        cmd.arg(a);
    }
    let out = cmd.output().expect("spawn wasai audit-dir");
    assert!(
        out.status.success(),
        "sweep {tag} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let verdicts = String::from_utf8_lossy(&out.stdout)
        .lines()
        .take_while(|l| !l.is_empty())
        .map(str::to_string)
        .collect();
    let triage = fs::read_to_string(&triage_path)
        .expect("triage report exists")
        .lines()
        .map(|line| match line.find(",\"elapsed_ms\":") {
            Some(cut) => format!("{}}}", &line[..cut]),
            None => line.to_string(),
        })
        .collect();
    (verdicts, triage)
}

#[test]
fn cli_sweep_is_identical_with_and_without_the_flag_and_under_procs() {
    let dir = scratch_dir("substrate-diff");
    let out = Command::new(env!("CARGO_BIN_EXE_wasai"))
        .arg("gen")
        .arg(&dir)
        .arg("4")
        .arg("2")
        .output()
        .expect("spawn wasai gen");
    assert!(out.status.success(), "gen failed: {out:?}");

    let baseline = run_sweep(&dir, "default", &[]);
    let pinned = run_sweep(&dir, "pinned", &["--substrate", "eosio"]);
    assert_eq!(
        baseline, pinned,
        "--substrate eosio must not change a single verdict or triage byte"
    );

    let procs = run_sweep(&dir, "procs", &["--substrate", "eosio", "--procs", "2"]);
    assert_eq!(
        baseline, procs,
        "subprocess sharding inherits the substrate and stays byte-identical"
    );
    let _ = fs::remove_dir_all(&dir);
}
