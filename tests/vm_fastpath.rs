//! Tier-1 gate for the execution fast path (threaded-code tapes + COW chain
//! snapshots): the accelerated stack must be observationally pure. Reports,
//! telemetry traces and transaction receipts must be byte-identical to the
//! reference interpreter running against genesis-initialized chains, at any
//! worker count. `WASAI_VM_FAST=0` forces the reference stack at runtime;
//! these tests pin both arms explicitly (`PreparedTarget::prepare` vs
//! `PreparedTarget::prepare_reference`) so they are env-independent.

use std::sync::Arc;

use wasai::wasai_chain::abi::ParamValue;
use wasai::wasai_chain::asset::Asset;
use wasai::wasai_chain::name::Name;
use wasai::wasai_core::harness::{self, accounts};
use wasai::wasai_core::{run_jobs, PreparedTarget, TargetInfo, Wasai};
use wasai::wasai_corpus::{generate, wild_corpus, Blueprint, WildRates};
use wasai_bench::bench_fuzz_config;

fn corpus_targets(seed: u64, n: usize) -> Vec<TargetInfo> {
    wild_corpus(seed, n, WildRates::default())
        .into_iter()
        .map(|w| TargetInfo::new(w.deployed.module, w.deployed.abi))
        .collect()
}

fn transfer_params() -> Vec<ParamValue> {
    vec![
        ParamValue::Name(accounts::attacker()),
        ParamValue::Name(accounts::target()),
        ParamValue::Asset(Asset::eos(5)),
        ParamValue::String("memo".into()),
    ]
}

/// The four §3.5 payload templates plus a direct action — enough traffic to
/// exercise wasm execution, the token ledger, notifications and the db APIs.
fn payload_burst() -> Vec<wasai::wasai_chain::Transaction> {
    let p = transfer_params();
    vec![
        harness::official_transfer(&p),
        harness::direct_fake_transfer(&p),
        harness::fake_token_transfer(&p),
        harness::fake_notif_transfer(&p),
        harness::direct_action(Name::new("transfer"), &p),
    ]
}

#[test]
fn fast_path_reports_and_traces_match_reference() {
    // Full campaigns over a wild-corpus slice: the fast arm (tape execution
    // + snapshot forks) must reproduce the reference arm's report AND its
    // entire telemetry event stream bit-for-bit.
    let targets = corpus_targets(0x7a9e, 6);
    for (i, info) in targets.iter().enumerate() {
        let seed = 0xfa57 ^ i as u64;
        let fast = PreparedTarget::prepare(info.clone()).expect("prepare fast");
        let reference = PreparedTarget::prepare_reference(info.clone()).expect("prepare reference");
        let (fast_report, fast_events) = Wasai::from_prepared(fast)
            .with_config(bench_fuzz_config(seed))
            .run_traced()
            .expect("fast campaign");
        let (ref_report, ref_events) = Wasai::from_prepared(reference)
            .with_config(bench_fuzz_config(seed))
            .run_traced()
            .expect("reference campaign");
        assert_eq!(
            fast_report, ref_report,
            "contract {i}: fast-path report drifted from the reference interpreter"
        );
        assert_eq!(
            fast_events, ref_events,
            "contract {i}: fast-path telemetry drifted from the reference interpreter"
        );
    }
}

#[test]
fn fast_fleet_matches_reference_at_any_worker_count() {
    // The reference serial run is ground truth; the fast path must match it
    // on 1 worker and on 4 (campaign results may not depend on scheduling,
    // snapshot-fork order, or Arc sharing across workers).
    let targets = corpus_targets(0x11, 5);
    let reference: Vec<_> = targets
        .iter()
        .enumerate()
        .map(|(i, info)| {
            let p = PreparedTarget::prepare_reference(info.clone()).expect("prepare reference");
            Wasai::from_prepared(p)
                .with_config(bench_fuzz_config(0xe05 ^ i as u64))
                .run()
                .expect("reference campaign")
        })
        .collect();
    let prepared: Vec<Arc<PreparedTarget>> = targets
        .iter()
        .map(|info| PreparedTarget::prepare(info.clone()).expect("prepare fast"))
        .collect();
    for jobs in [1usize, 4] {
        let reports = run_jobs(jobs, (0..targets.len()).collect(), |_, i: usize| {
            Wasai::from_prepared(prepared[i].clone())
                .with_config(bench_fuzz_config(0xe05 ^ i as u64))
                .run()
                .expect("fast campaign")
        });
        assert_eq!(
            reports, reference,
            "fast path at jobs={jobs} drifted from the serial reference"
        );
    }
}

#[test]
fn loop_heavy_concrete_replay_matches_reference() {
    // The bench_vm workload shape in miniature: wild contracts whose
    // eosponser carries an sdk_work byte-mix loop — the exact code the tape
    // compiler collapses into fused backedge/indexed-load/sink ops with
    // batched fuel. Receipts (results, executed actions, api events, fuel)
    // must be bit-identical between a fast COW fork and a legacy-cost
    // genesis chain running the reference interpreter.
    use wasai::wasai_chain::ChainConfig;
    let targets: Vec<TargetInfo> = wild_corpus(
        0xbeef,
        3,
        WildRates {
            sdk_work: 512,
            ..WildRates::default()
        },
    )
    .into_iter()
    .map(|w| TargetInfo::new(w.deployed.module, w.deployed.abi))
    .collect();
    for (i, info) in targets.iter().enumerate() {
        let fast = PreparedTarget::prepare_concrete(info.clone()).expect("prepare fast");
        let reference =
            PreparedTarget::prepare_concrete_reference(info.clone()).expect("prepare reference");
        let mut forked = fast.fork_chain().expect("fork");
        let mut genesis = reference.setup_chain_genesis().expect("genesis");
        genesis.set_config(ChainConfig {
            legacy_exec_costs: true,
            ..genesis.config()
        });
        for (j, tx) in payload_burst().iter().enumerate() {
            assert_eq!(
                forked.push_transaction(tx),
                genesis.push_transaction(tx),
                "contract {i} payload {j}: loop-heavy fast path diverged from reference"
            );
        }
    }
}

#[test]
fn snapshot_fork_receipts_match_genesis_setup() {
    // A COW fork of the post-setup snapshot must be transaction-for-
    // transaction indistinguishable from a chain deployed from genesis:
    // same receipts (executed actions, api events, traces, fuel) and same
    // errors, across payloads that hit wasm, the ledger and notifications.
    let contract = generate(Blueprint::default());
    let info = TargetInfo::new(contract.module, contract.abi);
    let prepared = PreparedTarget::prepare(info).expect("prepare");
    let mut forked = prepared.fork_chain().expect("fork");
    let mut genesis = prepared.setup_chain_genesis().expect("genesis");
    for (i, tx) in payload_burst().iter().enumerate() {
        let from_fork = forked.push_transaction(tx);
        let from_genesis = genesis.push_transaction(tx);
        assert_eq!(
            from_fork, from_genesis,
            "payload {i}: snapshot fork diverged from genesis setup"
        );
    }
}

#[test]
fn sibling_forks_never_observe_each_others_writes() {
    // Overlay isolation at the chain level: a fork taken AFTER another fork
    // has executed writes must still behave exactly like genesis — the
    // sibling's db/ledger mutations must not leak through the shared base.
    let contract = generate(Blueprint::default());
    let info = TargetInfo::new(contract.module, contract.abi);
    let prepared = PreparedTarget::prepare(info).expect("prepare");
    let mut dirty = prepared.fork_chain().expect("fork dirty");
    for tx in payload_burst() {
        let _ = dirty.push_transaction(&tx);
    }
    let mut clean = prepared.fork_chain().expect("fork clean");
    let mut genesis = prepared.setup_chain_genesis().expect("genesis");
    for (i, tx) in payload_burst().iter().enumerate() {
        assert_eq!(
            clean.push_transaction(tx),
            genesis.push_transaction(tx),
            "payload {i}: a sibling fork's writes leaked into the snapshot"
        );
    }
}
