//! Golden snapshots of the telemetry layer's two user-facing artifacts: the
//! JSONL event trace and the rendered fuzz report. Campaigns are fully
//! deterministic (virtual clock, fixed seeds, no wall-clock deadline), so
//! both artifacts must be byte-identical run over run — any drift is either
//! a real behavior change (bless it) or a determinism regression (fix it).
//!
//! Regenerate the snapshots with:
//!
//! ```text
//! WASAI_BLESS=1 cargo test --test telemetry_golden
//! ```

use std::fs;
use std::path::{Path, PathBuf};

use wasai::wasai_core::{telemetry, FuzzConfig, Wasai};
use wasai::wasai_corpus::{generate, Blueprint, GateKind, RewardKind};

fn snapshot_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("snapshots")
}

fn blessing() -> bool {
    std::env::var("WASAI_BLESS").is_ok_and(|v| v == "1")
}

/// Compare `actual` against the checked-in snapshot, or overwrite the
/// snapshot under `WASAI_BLESS=1`. On mismatch the actual text lands next to
/// the build artifacts so it can be diffed (CI uploads it).
fn check_snapshot(name: &str, actual: &str) {
    let path = snapshot_dir().join(name);
    if blessing() {
        fs::create_dir_all(snapshot_dir()).expect("create snapshot dir");
        fs::write(&path, actual).expect("write snapshot");
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); generate it with \
             `WASAI_BLESS=1 cargo test --test telemetry_golden`",
            path.display()
        )
    });
    if expected != actual {
        let out_dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("target")
            .join("snapshot-failures");
        fs::create_dir_all(&out_dir).expect("create failure dir");
        let actual_path = out_dir.join(name);
        fs::write(&actual_path, actual).expect("write actual");
        let first_diff = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .map(|i| i + 1)
            .unwrap_or_else(|| expected.lines().count().min(actual.lines().count()) + 1);
        panic!(
            "snapshot {name} differs from {} (first difference at line \
             {first_diff}); actual written to {}; if the change is intended, \
             bless with `WASAI_BLESS=1 cargo test --test telemetry_golden`",
            path.display(),
            actual_path.display()
        );
    }
}

/// Run one traced campaign and return (JSONL trace, rendered report).
fn campaign(bp: Blueprint) -> (String, String) {
    let c = generate(bp);
    let (report, events) = Wasai::new(c.module, c.abi)
        .with_config(FuzzConfig {
            timeout_us: 2_000_000,
            stall_iters: 8,
            rng_seed: 7,
            ..FuzzConfig::default()
        })
        .run_traced()
        .expect("campaign runs");
    let trace = telemetry::write_trace([(0, events.as_slice())]);
    (trace, report.render())
}

fn vulnerable_blueprint() -> Blueprint {
    Blueprint {
        seed: 1,
        code_guard: false,
        sdk_work: 0,
        payee_guard: false,
        auth_check: false,
        blockinfo: true,
        reward: RewardKind::Inline,
        gate: GateKind::Open,
        eosponser_branches: 2,
    }
}

fn guarded_blueprint() -> Blueprint {
    Blueprint {
        seed: 2,
        code_guard: true,
        sdk_work: 0,
        payee_guard: true,
        auth_check: true,
        blockinfo: false,
        reward: RewardKind::Deferred,
        gate: GateKind::Open,
        eosponser_branches: 2,
    }
}

#[test]
fn vulnerable_campaign_matches_golden_trace_and_report() {
    let (trace, report) = campaign(vulnerable_blueprint());
    check_snapshot("vulnerable_trace.jsonl", &trace);
    check_snapshot("vulnerable_report.txt", &report);
}

#[test]
fn guarded_campaign_matches_golden_trace_and_report() {
    let (trace, report) = campaign(guarded_blueprint());
    check_snapshot("guarded_trace.jsonl", &trace);
    check_snapshot("guarded_report.txt", &report);
}

#[test]
fn golden_trace_round_trips_through_the_parser() {
    let (trace, _) = campaign(vulnerable_blueprint());
    let events = telemetry::parse_trace(&trace).expect("trace parses");
    let rewritten =
        telemetry::write_trace(events.iter().map(|(c, ev)| (*c, std::slice::from_ref(ev))));
    assert_eq!(trace, rewritten, "parse → write must be the identity");
}
