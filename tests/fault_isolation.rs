//! Fault isolation: one broken, panicking, or hanging contract must never
//! take down a sweep, and the survivors' results must be byte-identical to
//! a clean run's — for any worker count.
//!
//! The subprocess tests drive the real `wasai audit-dir` binary over a
//! malformed corpus (truncated binary, non-validating module, missing ABI
//! sidecar, fuel-exhausting loop) and check the documented triage contract:
//! exit code 2, one JSON-lines record per contract, failures named with
//! stage and repro seed. The `chaos`-gated tests exercise the injection
//! harness (`cargo test --features chaos --test fault_isolation`).

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use wasai::prelude::*;
use wasai::wasai_wasm::instr::Instr;
use wasai::wasai_wasm::types::{BlockType, ValType::*};
use wasai::wasai_wasm::{encode, ModuleBuilder};

/// A fresh scratch directory under the target dir (no tempfile dependency;
/// target/ is already gitignored and writable).
fn scratch_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("test-scratch")
        .join(format!("{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

const TRANSFER_ABI: &str = "transfer(name,name,asset,string)\n";

/// Write a well-formed contract that validates and runs.
fn write_good_contract(dir: &Path, name: &str) {
    let mut b = ModuleBuilder::with_memory(1);
    let apply = b.func(
        &[I64, I64, I64],
        &[],
        &[],
        vec![
            Instr::LocalGet(1),
            Instr::I64Const(0),
            Instr::I64Ne,
            Instr::If(BlockType::Empty),
            Instr::Nop,
            Instr::End,
            Instr::End,
        ],
    );
    b.export_func("apply", apply);
    fs::write(dir.join(format!("{name}.wasm")), encode::encode(&b.build())).expect("write wasm");
    fs::write(dir.join(format!("{name}.abi")), TRANSFER_ABI).expect("write abi");
}

/// Write a fuel-exhausting contract: apply() spins until the VM cuts it off.
fn write_spinning_contract(dir: &Path, name: &str) {
    let mut b = ModuleBuilder::with_memory(1);
    let apply = b.func(
        &[I64, I64, I64],
        &[],
        &[],
        vec![
            Instr::Loop(BlockType::Empty),
            Instr::Br(0),
            Instr::End,
            Instr::End,
        ],
    );
    b.export_func("apply", apply);
    fs::write(dir.join(format!("{name}.wasm")), encode::encode(&b.build())).expect("write wasm");
    fs::write(dir.join(format!("{name}.abi")), TRANSFER_ABI).expect("write abi");
}

/// Populate `dir` with three good contracts plus every malformed shape the
/// sweep must survive. Broken names sort after the good ones so the good
/// contracts keep the same indices (and thus campaign seeds) as a clean run.
fn write_malformed_corpus(dir: &Path) {
    write_good_contract(dir, "a_good_0");
    write_good_contract(dir, "a_good_1");
    write_spinning_contract(dir, "a_spin_2");
    // Truncated binary: fails in the decoder.
    fs::write(dir.join("z_truncated.wasm"), b"\0asm\x01\0\0").expect("write wasm");
    fs::write(dir.join("z_truncated.abi"), TRANSFER_ABI).expect("write abi");
    // Non-validating module: decodes, then fails instrumentation-validation.
    let mut b = ModuleBuilder::new();
    b.func(&[], &[], &[], vec![Instr::I32Add, Instr::End]);
    fs::write(dir.join("z_unvalidatable.wasm"), encode::encode(&b.build())).expect("write wasm");
    fs::write(dir.join("z_unvalidatable.abi"), TRANSFER_ABI).expect("write abi");
    // Missing ABI sidecar.
    write_good_contract(dir, "z_noabi");
    fs::remove_file(dir.join("z_noabi.abi")).expect("remove abi");
}

struct SweepRun {
    exit_code: i32,
    /// Per-contract verdict lines (stdout up to the summary blank line).
    verdicts: Vec<String>,
    triage: Vec<String>,
}

/// Run `wasai audit-dir` as a subprocess and split its output.
fn run_audit_dir(dir: &Path, jobs: &str, extra_env: &[(&str, &str)]) -> SweepRun {
    let triage_path = dir.join(format!("triage-{jobs}.jsonl"));
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_wasai"));
    cmd.arg("audit-dir")
        .arg(dir)
        .arg("5")
        .arg("--deadline-secs")
        .arg("300")
        .arg("--triage")
        .arg(&triage_path)
        .env("WASAI_JOBS", jobs);
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn wasai");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let verdicts = stdout
        .lines()
        .take_while(|l| !l.is_empty())
        .map(str::to_string)
        .collect();
    let triage = fs::read_to_string(&triage_path)
        .expect("triage report exists")
        .lines()
        .map(str::to_string)
        .collect();
    SweepRun {
        exit_code: out.status.code().expect("exit code"),
        verdicts,
        triage,
    }
}

#[test]
fn sweep_survives_malformed_corpus_and_triages_each_failure() {
    let dir = scratch_dir("malformed");
    write_malformed_corpus(&dir);
    let run = run_audit_dir(&dir, "1", &[]);

    // Documented triage exit code: sweep completed, some contracts failed.
    assert_eq!(run.exit_code, 2, "verdicts: {:?}", run.verdicts);

    // Every contract — good and broken — has a verdict line and a triage
    // record.
    assert_eq!(run.verdicts.len(), 6);
    assert_eq!(run.triage.len(), 6);

    let triage_for = |name: &str| -> &String {
        run.triage
            .iter()
            .find(|l| l.contains(&format!("\"contract\":\"{name}\"")))
            .unwrap_or_else(|| panic!("no triage line for {name}"))
    };
    // The failures are named, attributed to the prepare stage, and carry the
    // repro seed (sweep seed 5 XOR sorted index).
    for (name, index) in [("z_truncated.wasm", 4), ("z_unvalidatable.wasm", 5)] {
        let line = triage_for(name);
        assert!(line.contains("\"outcome\":\"failed\""), "{line}");
        assert!(line.contains("\"stage\":\"prepare\""), "{line}");
        assert!(line.contains(&format!("\"seed\":{}", 5 ^ index)), "{line}");
    }
    let noabi = triage_for("z_noabi.wasm");
    assert!(noabi.contains("\"outcome\":\"failed\""), "{noabi}");
    assert!(noabi.contains("z_noabi.abi"), "{noabi}");
    // The fuel-exhausting contract completes: the virtual clock bounds it.
    let spin = triage_for("a_spin_2.wasm");
    assert!(spin.contains("\"outcome\":\"ok\""), "{spin}");

    // Good contracts were audited, not skipped.
    for name in ["a_good_0.wasm", "a_good_1.wasm"] {
        assert!(
            run.verdicts.iter().any(|l| l.starts_with(name)),
            "no verdict for {name}: {:?}",
            run.verdicts
        );
    }

    // The survivors' verdict lines are byte-identical to a clean sweep over
    // only the good contracts (broken names sort last, so indices + seeds of
    // the good contracts match).
    let clean_dir = scratch_dir("clean");
    write_good_contract(&clean_dir, "a_good_0");
    write_good_contract(&clean_dir, "a_good_1");
    write_spinning_contract(&clean_dir, "a_spin_2");
    let clean = run_audit_dir(&clean_dir, "1", &[]);
    assert_eq!(clean.exit_code, 0);
    for clean_line in &clean.verdicts {
        assert!(
            run.verdicts.contains(clean_line),
            "survivor line changed: {clean_line:?} not in {:?}",
            run.verdicts
        );
    }
}

#[test]
fn malformed_sweep_is_identical_at_any_worker_count() {
    let dir = scratch_dir("malformed-jobs");
    write_malformed_corpus(&dir);
    let serial = run_audit_dir(&dir, "1", &[]);
    let parallel = run_audit_dir(&dir, "4", &[]);
    assert_eq!(serial.exit_code, parallel.exit_code);
    assert_eq!(serial.verdicts, parallel.verdicts);
    // Triage records match apart from wall-clock timings.
    let strip_elapsed = |lines: &[String]| -> Vec<String> {
        lines
            .iter()
            .map(|l| l[..l.find("\"elapsed_ms\"").expect("elapsed field")].to_string())
            .collect()
    };
    assert_eq!(
        strip_elapsed(&serial.triage),
        strip_elapsed(&parallel.triage)
    );
}

#[test]
fn aborted_campaigns_leave_structured_markers_in_the_trace() {
    let dir = scratch_dir("malformed-trace");
    write_malformed_corpus(&dir);
    let trace = |jobs: &str| -> String {
        let trace_path = dir.join(format!("trace-{jobs}.jsonl"));
        let out = Command::new(env!("CARGO_BIN_EXE_wasai"))
            .arg("audit-dir")
            .arg(&dir)
            .arg("5")
            .arg("--deadline-secs")
            .arg("300")
            .arg("--trace-out")
            .arg(&trace_path)
            .env("WASAI_JOBS", jobs)
            .output()
            .expect("spawn wasai");
        assert_eq!(out.status.code(), Some(2));
        fs::read_to_string(&trace_path).expect("trace exists")
    };

    let serial = trace("1");
    // The three broken contracts (indices 3..=5 in sorted order) appear as
    // campaign_aborted events naming stage and outcome, in index order.
    let aborted: Vec<&str> = serial
        .lines()
        .filter(|l| l.contains("\"event\":\"campaign_aborted\""))
        .collect();
    assert_eq!(aborted.len(), 3, "trace:\n{serial}");
    for (line, index) in aborted.iter().zip([3usize, 4, 5]) {
        assert!(
            line.starts_with(&format!("{{\"campaign\":{index},")),
            "{line}"
        );
        assert!(line.contains("\"stage\":\"prepare\""), "{line}");
        assert!(line.contains("\"outcome\":\"failed\""), "{line}");
    }
    // The surviving campaigns still trace normally.
    for index in [0usize, 1, 2] {
        assert!(
            serial.lines().any(|l| l.starts_with(&format!(
                "{{\"campaign\":{index},\"event\":\"campaign_started\""
            ))),
            "campaign {index} left no start event:\n{serial}"
        );
    }
    // Every line round-trips through the parser.
    for line in serial.lines() {
        wasai::wasai_core::TelemetryEvent::parse_jsonl(line)
            .unwrap_or_else(|e| panic!("unparseable trace line {line:?}: {e}"));
    }
    // And the whole trace — aborts included — is byte-identical at any
    // worker count.
    assert_eq!(serial, trace("4"));
}

#[test]
fn expired_deadline_truncates_a_campaign() {
    let mut b = ModuleBuilder::with_memory(1);
    let apply = b.func(
        &[I64, I64, I64],
        &[],
        &[],
        vec![
            Instr::LocalGet(1),
            Instr::I64Const(0),
            Instr::I64Ne,
            Instr::If(BlockType::Empty),
            Instr::Nop,
            Instr::End,
            Instr::End,
        ],
    );
    b.export_func("apply", apply);
    let abi = Abi::new(vec![ActionDecl::transfer()]);
    let report = Wasai::new(b.build(), abi)
        .with_config(FuzzConfig {
            deadline: wasai::wasai_smt::Deadline::after(std::time::Duration::ZERO),
            ..FuzzConfig::quick()
        })
        .run()
        .expect("campaign still completes");
    assert!(report.truncated, "watchdog must mark the report partial");
}

#[cfg(feature = "chaos")]
mod chaos {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};
    use std::time::{Duration, Instant};

    use wasai::wasai_core::chaos::{clear, install, ChaosPlan, Fault};
    use wasai::wasai_corpus::{wild_corpus, WildRates};
    use wasai::wasai_smt::Deadline;
    use wasai_bench::rq4_analyze_isolated;

    /// The chaos plan is process-global; serialize in-process chaos tests.
    fn chaos_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    /// Survivor slots of a chaotic run must be byte-identical to the clean
    /// run's, at every worker count.
    fn assert_survivors_identical(fault: Fault, index: usize) {
        let _guard = chaos_lock();
        let corpus = wild_corpus(11, 6, WildRates::default());
        clear();
        let baseline = rq4_analyze_isolated(&corpus, 11, 1, Deadline::NONE);
        for jobs in [1, 4] {
            install(ChaosPlan::new(vec![(index, fault)]));
            let chaotic =
                rq4_analyze_isolated(&corpus, 11, jobs, Deadline::after(Duration::from_secs(300)));
            clear();
            assert_eq!(chaotic.len(), baseline.len());
            for (i, (b, c)) in baseline.iter().zip(&chaotic).enumerate() {
                if i == index {
                    assert_ne!(c.outcome.kind(), "ok", "fault not injected at {index}");
                } else {
                    assert_eq!(
                        b.outcome, c.outcome,
                        "slot {i} changed under {fault} at {index} with {jobs} job(s)"
                    );
                }
            }
        }
    }

    #[test]
    fn injected_panic_leaves_survivors_byte_identical() {
        assert_survivors_identical(Fault::Panic, 1);
    }

    #[test]
    fn injected_trap_leaves_survivors_byte_identical() {
        assert_survivors_identical(Fault::Trap, 4);
    }

    #[test]
    fn injected_stall_times_out_within_deadline_plus_grace() {
        let _guard = chaos_lock();
        let corpus = wild_corpus(3, 4, WildRates::default());
        install(ChaosPlan::new(vec![(0, Fault::SolverStall)]));
        let start = Instant::now();
        let runs = rq4_analyze_isolated(&corpus, 3, 2, Deadline::after(Duration::from_millis(300)));
        clear();
        let wall = start.elapsed();
        match &runs[0].outcome {
            wasai::wasai_core::CampaignOutcome::TimedOut { elapsed } => {
                assert!(
                    *elapsed >= Duration::from_millis(250),
                    "stalled {elapsed:?}"
                );
            }
            other => panic!("expected timeout, got {}", other.detail()),
        }
        // Deadline (300ms) + one campaign's grace; campaigns here are
        // milliseconds, so seconds of headroom is conservative.
        assert!(wall < Duration::from_secs(30), "sweep took {wall:?}");
    }

    #[test]
    fn cli_chaos_panic_is_triaged_and_survivors_match() {
        // Subprocess: the WASAI_CHAOS env plan drives the binary (built with
        // the same `chaos` feature as this test).
        let dir = scratch_dir("cli-chaos");
        write_good_contract(&dir, "a_good_0");
        write_good_contract(&dir, "a_good_1");
        write_good_contract(&dir, "a_good_2");
        let clean = run_audit_dir(&dir, "1", &[]);
        assert_eq!(clean.exit_code, 0);
        for jobs in ["1", "4"] {
            let chaotic = run_audit_dir(&dir, jobs, &[("WASAI_CHAOS", "panic@1")]);
            assert_eq!(chaotic.exit_code, 2);
            let line = chaotic
                .triage
                .iter()
                .find(|l| l.contains("\"index\":1"))
                .expect("triage line for campaign 1");
            assert!(line.contains("\"outcome\":\"panicked\""), "{line}");
            assert!(line.contains("\"stage\":\"campaign\""), "{line}");
            assert!(line.contains(&format!("\"seed\":{}", 5 ^ 1)), "{line}");
            // Survivors: verdict lines for the other two contracts are
            // byte-identical to the clean run's.
            for name in ["a_good_0.wasm", "a_good_2.wasm"] {
                let clean_line = clean
                    .verdicts
                    .iter()
                    .find(|l| l.starts_with(name))
                    .expect("clean verdict");
                assert!(
                    chaotic.verdicts.contains(clean_line),
                    "survivor {name} changed with {jobs} job(s): {:?}",
                    chaotic.verdicts
                );
            }
        }
    }
}
