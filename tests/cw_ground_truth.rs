//! The CosmWasm ground-truth gate: 100% recall, zero false positives.
//!
//! The labeled corpus (`wasai_corpus::cw_corpus`) derives each sample's
//! label from its blueprint — a vulnerability is present exactly when its
//! guard knob is off — so the gate can demand *exact* equality between the
//! fuzzer's findings and the label: every seeded bug detected (recall) and
//! nothing flagged on the clean twins (precision). CI runs this as the
//! `substrate` job's acceptance bar.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use wasai::prelude::*;
use wasai::wasai_chain::abi::Abi;
use wasai::wasai_corpus::parse_label_sidecar;

/// A fresh scratch directory under the target dir (no tempfile dependency;
/// target/ is already gitignored and writable).
fn scratch_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("test-scratch")
        .join(format!("{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn audit_cw(module: wasai::wasai_wasm::Module) -> FuzzReport {
    Wasai::new(module, Abi::default())
        .with_config(FuzzConfig::quick())
        .with_substrate(SubstrateKind::Cosmwasm)
        .run()
        .expect("corpus contract deploys")
}

#[test]
fn every_seeded_bug_is_found_and_clean_twins_stay_clean() {
    // 12 samples cycle through all four guard combinations three times,
    // with randomized query presence and filler opcodes.
    for (i, c) in cw_corpus(0xC0FFEE, 12).into_iter().enumerate() {
        let report = audit_cw(c.module.clone());
        assert_eq!(
            report.findings, c.label,
            "sample {i} (blueprint {:?}): findings must equal the ground \
             truth exactly — a miss is a recall failure, an extra class a \
             false positive",
            c.blueprint
        );
        // Every finding carries a reproducible exploit payload.
        for class in &report.findings {
            assert!(
                report.exploits.iter().any(|e| e.class == *class),
                "sample {i}: finding {class} has no exploit record"
            );
        }
    }
}

#[test]
fn detection_is_deterministic() {
    let c = cw_corpus(7, 4)
        .into_iter()
        .find(|c| !c.label.is_empty())
        .expect("corpus contains a vulnerable sample");
    let a = audit_cw(c.module.clone());
    let b = audit_cw(c.module.clone());
    assert_eq!(a.render(), b.render(), "same module, same report bytes");
}

#[test]
fn substrate_detection_routes_the_corpus_without_the_flag() {
    // The corpus exports instantiate/execute with no `apply`, so the
    // auto-detected substrate must match the pinned one exactly.
    let c = cw_corpus(21, 4)
        .into_iter()
        .find(|c| c.label.len() == 2)
        .expect("corpus contains a doubly-vulnerable sample");
    let auto = Wasai::new(c.module.clone(), Abi::default())
        .with_config(FuzzConfig::quick())
        .run()
        .expect("deploys");
    let pinned = audit_cw(c.module.clone());
    assert_eq!(auto.render(), pinned.render());
    assert_eq!(auto.findings, c.label);
}

#[test]
fn gen_cli_writes_a_labeled_corpus_the_schema_validates() {
    let dir = scratch_dir("cw-gen");
    let out = Command::new(env!("CARGO_BIN_EXE_wasai"))
        .arg("gen")
        .arg(&dir)
        .arg("6")
        .arg("3")
        .arg("--substrate")
        .arg("cosmwasm")
        .output()
        .expect("spawn wasai gen");
    assert!(out.status.success(), "gen failed: {out:?}");
    let mut wasm_count = 0;
    for i in 0..6 {
        let base = dir.join(format!("cw_contract_{i:04}"));
        assert!(base.with_extension("wasm").exists(), "missing wasm {i}");
        assert!(base.with_extension("abi").exists(), "missing abi {i}");
        let label_text =
            fs::read_to_string(base.with_extension("label")).expect("label sidecar exists");
        let label = parse_label_sidecar(&label_text)
            .unwrap_or_else(|| panic!("label sidecar {i} violates the schema: {label_text:?}"));
        for class in &label {
            assert!(
                VulnClass::COSMWASM.contains(class),
                "cw corpus labeled with non-cw class {class}"
            );
        }
        wasm_count += 1;
    }
    assert_eq!(wasm_count, 6);

    // The on-disk corpus round-trips through the CLI sweep: findings in the
    // verdict lines must match each contract's label sidecar.
    let sweep = Command::new(env!("CARGO_BIN_EXE_wasai"))
        .arg("audit-dir")
        .arg(&dir)
        .arg("--substrate")
        .arg("cosmwasm")
        .env("WASAI_PROGRESS", "0")
        .env_remove("WASAI_PROCS")
        .output()
        .expect("spawn wasai audit-dir");
    assert!(
        out.status.success(),
        "sweep failed: {}",
        String::from_utf8_lossy(&sweep.stderr)
    );
    let stdout = String::from_utf8_lossy(&sweep.stdout);
    for i in 0..6 {
        let name = format!("cw_contract_{i:04}.wasm");
        let line = stdout
            .lines()
            .find(|l| l.starts_with(&format!("{name}:")))
            .unwrap_or_else(|| panic!("no verdict line for {name}"));
        let label_text =
            fs::read_to_string(dir.join(format!("cw_contract_{i:04}.label"))).expect("label");
        let label = parse_label_sidecar(&label_text).expect("schema");
        if label.is_empty() {
            assert!(line.contains("clean"), "{name}: expected clean, got {line}");
        } else {
            assert!(
                line.contains("VULNERABLE"),
                "{name}: expected a finding, got {line}"
            );
            for class in &label {
                assert!(
                    line.contains(&class.to_string()),
                    "{name}: verdict {line:?} is missing labeled class {class}"
                );
            }
        }
    }
    let _ = fs::remove_dir_all(&dir);
}
