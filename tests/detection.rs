//! End-to-end detection tests: WASAI vs generated ground-truth contracts.

use wasai::wasai_core::{FuzzConfig, VulnClass, Wasai};
use wasai::wasai_corpus::{generate, Blueprint, GateKind, RewardKind};

fn run(bp: Blueprint) -> wasai::wasai_core::FuzzReport {
    let c = generate(bp);
    Wasai::new(c.module, c.abi)
        .with_config(FuzzConfig::quick())
        .run()
        .expect("fuzzing runs")
}

#[test]
fn fully_vulnerable_contract_flags_all_five() {
    let bp = Blueprint {
        seed: 1,
        code_guard: false,
        payee_guard: false,
        auth_check: false,
        blockinfo: true,
        sdk_work: 0,
        reward: RewardKind::Inline,
        gate: GateKind::Open,
        eosponser_branches: 2,
    };
    let report = run(bp);
    for class in VulnClass::ALL {
        assert!(report.has(class), "missing {class}; report: {report:?}");
    }
    assert!(!report.exploits.is_empty());
}

#[test]
fn fully_guarded_contract_flags_nothing() {
    let bp = Blueprint {
        seed: 2,
        code_guard: true,
        payee_guard: true,
        auth_check: true,
        blockinfo: false,
        sdk_work: 0,
        reward: RewardKind::Deferred,
        gate: GateKind::Open,
        eosponser_branches: 2,
    };
    let report = run(bp);
    assert!(
        report.findings.is_empty(),
        "guarded contract must be clean, got {:?}",
        report.findings
    );
}

#[test]
fn solver_reaches_template_behind_64bit_gate() {
    // The concolic advantage (RQ2/RQ3): the blockinfo+rollback template sits
    // behind nested 64-bit equality checks no random fuzzer can guess.
    let bp = Blueprint {
        seed: 3,
        code_guard: true,
        payee_guard: true,
        auth_check: true,
        blockinfo: true,
        sdk_work: 0,
        reward: RewardKind::Inline,
        gate: GateKind::Solvable { depth: 2 },
        eosponser_branches: 1,
    };
    let report = run(bp);
    assert!(report.has(VulnClass::BlockinfoDep), "report: {report:?}");
    assert!(report.has(VulnClass::Rollback), "report: {report:?}");
    assert!(report.smt_queries > 0, "the solver must have been engaged");
}

#[test]
fn unsatisfiable_gate_is_not_a_false_positive() {
    let bp = Blueprint {
        seed: 4,
        code_guard: true,
        payee_guard: true,
        auth_check: true,
        blockinfo: true,
        sdk_work: 0,
        reward: RewardKind::Inline,
        gate: GateKind::Unsatisfiable { depth: 2 },
        eosponser_branches: 1,
    };
    let report = run(bp);
    assert!(
        !report.has(VulnClass::BlockinfoDep),
        "dead template must stay dead: {report:?}"
    );
    assert!(!report.has(VulnClass::Rollback));
}

#[test]
fn guard_removal_changes_exactly_the_targeted_class() {
    let safe = Blueprint {
        seed: 5,
        ..Blueprint::default()
    };
    let vulnerable = Blueprint {
        code_guard: false,
        ..safe
    };
    let r_safe = run(safe);
    let r_vuln = run(vulnerable);
    assert!(!r_safe.has(VulnClass::FakeEos));
    assert!(r_vuln.has(VulnClass::FakeEos), "report: {r_vuln:?}");
    assert_eq!(
        r_safe.has(VulnClass::MissAuth),
        r_vuln.has(VulnClass::MissAuth)
    );
}

#[test]
fn coverage_series_is_monotone() {
    let report = run(Blueprint {
        seed: 6,
        eosponser_branches: 4,
        ..Blueprint::default()
    });
    let mut prev = 0;
    for &(_, b) in report.coverage_series.points() {
        assert!(b >= prev, "coverage must be cumulative");
        prev = b;
    }
    assert!(report.branches > 0);
}

#[test]
fn custom_oracles_extend_the_scanner() {
    use wasai::wasai_chain::name::Name;
    use wasai::wasai_core::ApiUsageOracle;

    // §5: extend the detectors — flag deferred sends as a custom policy.
    let bp = Blueprint {
        seed: 8,
        reward: wasai::wasai_corpus::RewardKind::Deferred,
        gate: GateKind::Open,
        ..Blueprint::default()
    };
    let c = generate(bp);
    let report = Wasai::new(c.module, c.abi)
        .with_config(FuzzConfig::quick())
        .with_oracle(Box::new(ApiUsageOracle::new(
            "send_deferred",
            Name::new("fuzz.target"),
        )))
        .run()
        .unwrap();
    assert!(
        report
            .custom_findings
            .iter()
            .any(|(n, _)| n == "send_deferred"),
        "custom oracle must fire: {:?}",
        report.custom_findings
    );
    // The built-in detectors are unaffected: deferred payouts are safe.
    assert!(!report.has(VulnClass::Rollback));
}

#[test]
fn memo_length_gates_are_solved_unlike_the_papers_fp_case() {
    // §4.4's manual analysis: WASAI false-positived on paytobtckey1 because
    // "WASAI cannot set the transaction parameter 'memo' as a 26 bytes
    // string, thus it fails to touch guard code in the deeper program
    // states". Our reproduction models the memo length as a symbolic
    // variable (Table 2's length byte), so the solver sets it directly and
    // the guarded contract is correctly reported clean.
    use wasai::wasai_corpus::inject_verification;
    let c = generate(Blueprint {
        seed: 60,
        ..Blueprint::default()
    });
    let (v, key) = inject_verification(&c, 61, 3);
    assert!(
        key.memo_len.is_some(),
        "the third check gates on memo length"
    );
    let report = Wasai::new(v.module, v.abi)
        .with_config(wasai::wasai_core::FuzzConfig {
            timeout_us: 300_000_000,
            stall_iters: 40,
            rng_seed: 5,
            ..Default::default()
        })
        .run()
        .unwrap();
    assert!(
        !report.has(VulnClass::FakeNotif),
        "guard behind the memo gate must be discovered: {report:?}"
    );
    assert!(report.smt_queries > 0);
}
