//! The substrate conformance battery: one shared test suite, parameterized
//! over every backend behind the [`wasai::wasai_core::Substrate`] trait.
//!
//! Each backend supplies a self-test fixture contract and a harness
//! (`Substrate::conformance`) that dispatches the battery's abstract ops
//! against it. The battery then pins the semantics every substrate must
//! share for campaigns to be comparable across chains:
//!
//! - **setup/dispatch**: a deployed contract accepts a no-op dispatch;
//! - **persistence**: a committed dispatch's storage writes survive;
//! - **state rollback**: a trapped dispatch leaves no trace, including
//!   writes issued before the trap, while earlier committed state survives;
//! - **fuel**: a spinning dispatch traps at exactly the configured budget;
//! - **determinism**: the same op sequence on a fresh harness produces
//!   byte-identical verdicts, fuel included.
//!
//! A third substrate gets all of this for free by implementing the trait.

use wasai::wasai_core::{substrate, ConformanceOp, ConformanceVerdict, SubstrateKind};

const FUEL: u64 = 10_000;

const BACKENDS: [SubstrateKind; 2] = [SubstrateKind::Eosio, SubstrateKind::Cosmwasm];

#[test]
fn setup_and_noop_dispatch_succeed() {
    for kind in BACKENDS {
        let mut h = substrate(kind).conformance(FUEL);
        let v = h.dispatch(ConformanceOp::Noop);
        assert!(v.ok, "{kind}: no-op dispatch must commit");
        assert!(v.steps_used > 0, "{kind}: execution is metered");
        assert!(v.steps_used < FUEL, "{kind}: no-op stays under the budget");
    }
}

#[test]
fn committed_writes_persist() {
    for kind in BACKENDS {
        let mut h = substrate(kind).conformance(FUEL);
        assert_eq!(h.probe(1), None, "{kind}: fresh state is empty");
        assert!(h.dispatch(ConformanceOp::Store).ok, "{kind}: store commits");
        assert_eq!(
            h.probe(1),
            Some(11),
            "{kind}: a committed write must persist"
        );
    }
}

#[test]
fn trapped_dispatch_rolls_back_without_touching_prior_state() {
    for kind in BACKENDS {
        let mut h = substrate(kind).conformance(FUEL);
        assert!(h.dispatch(ConformanceOp::Store).ok);
        let v = h.dispatch(ConformanceOp::StoreThenTrap);
        assert!(!v.ok, "{kind}: a trapping dispatch must not commit");
        assert_eq!(
            h.probe(2),
            None,
            "{kind}: writes issued before the trap must roll back"
        );
        assert_eq!(
            h.probe(1),
            Some(11),
            "{kind}: rollback is per-dispatch, earlier commits survive"
        );
    }
}

#[test]
fn fuel_exhaustion_traps_at_exactly_the_budget() {
    for kind in BACKENDS {
        let mut h = substrate(kind).conformance(FUEL);
        let v = h.dispatch(ConformanceOp::Spin);
        assert!(!v.ok, "{kind}: a spinning dispatch must be cut off");
        assert_eq!(
            v.steps_used, FUEL,
            "{kind}: the step meter stops at the configured budget"
        );
        assert_eq!(h.probe(1), None, "{kind}: the cut-off commits nothing");
    }
}

#[test]
fn identical_op_sequences_produce_identical_verdicts() {
    let script = [
        ConformanceOp::Noop,
        ConformanceOp::Store,
        ConformanceOp::StoreThenTrap,
        ConformanceOp::Spin,
        ConformanceOp::Noop,
    ];
    for kind in BACKENDS {
        let run = || -> Vec<ConformanceVerdict> {
            let mut h = substrate(kind).conformance(FUEL);
            script.iter().map(|&op| h.dispatch(op)).collect()
        };
        assert_eq!(
            run(),
            run(),
            "{kind}: replaying the op script must be deterministic, fuel included"
        );
    }
}

#[test]
fn backends_declare_disjoint_oracle_classes() {
    let eosio = substrate(SubstrateKind::Eosio).oracle_classes();
    let cw = substrate(SubstrateKind::Cosmwasm).oracle_classes();
    for c in cw {
        assert!(
            !eosio.contains(c),
            "{c} is claimed by both substrates — findings would be ambiguous"
        );
    }
    assert!(substrate(SubstrateKind::Eosio)
        .entry_exports()
        .contains(&"apply"));
    assert!(substrate(SubstrateKind::Cosmwasm)
        .entry_exports()
        .contains(&"instantiate"));
}
