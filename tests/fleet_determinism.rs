//! Tier-1 gate for the parallel campaign fleet: the merged results of every
//! experiment driver must be bit-identical regardless of the worker count.
//!
//! This is the determinism contract (DESIGN.md): campaign seeds derive from
//! the sample index alone, workers write into index-keyed slots, and the
//! merge runs in index order — so `jobs = 4` must reproduce the `jobs = 1`
//! serial reference exactly. The tests pass explicit `jobs` values instead
//! of setting `WASAI_JOBS`, so they can run concurrently with each other.

use wasai::wasai_corpus::{table4_benchmark, wild_corpus, WildRates};
use wasai_bench::{evaluate_with, rq4_analyze};

#[test]
fn evaluate_is_identical_serial_and_parallel() {
    // The smallest Table 4 subsample: one vulnerable + one clean contract
    // per class, all three tools — 30 campaigns, enough to exercise the
    // queue with more jobs than workers.
    let samples = table4_benchmark(7, 0.001);
    let (serial, _) = evaluate_with(&samples, 0xe05, 1);
    let (parallel, _) = evaluate_with(&samples, 0xe05, 4);
    assert_eq!(
        serial, parallel,
        "AccuracyTable must not depend on worker count"
    );
}

#[test]
fn rq4_wild_counts_match_serial() {
    let corpus = wild_corpus(11, 8, WildRates::default());
    let (serial, _) = rq4_analyze(&corpus, 0xe05, 1);
    let (parallel, _) = rq4_analyze(&corpus, 0xe05, 4);
    assert_eq!(
        serial, parallel,
        "per-contract RQ4 outcomes must match serial"
    );
    // The aggregate counts the rq4_wild binary prints follow directly.
    let flagged = |v: &[wasai_bench::WildOutcome]| v.iter().filter(|o| o.flagged()).count();
    assert_eq!(flagged(&serial), flagged(&parallel));
}

#[test]
fn oversubscribed_fleet_still_matches() {
    // More workers than jobs: the scheduler caps the thread count at the
    // queue length; the result must still be the serial reference.
    let corpus = wild_corpus(23, 3, WildRates::default());
    let (serial, _) = rq4_analyze(&corpus, 1, 1);
    let (wide, _) = rq4_analyze(&corpus, 1, 16);
    assert_eq!(serial, wide);
}
