//! Observability is strictly out-of-band: enabling every surface at once —
//! the Prometheus listener, the JSON dump, the stderr progress monitor —
//! must leave verdict lines and golden traces byte-identical to a dark run,
//! at any worker count. These tests drive the real `wasai` binary with the
//! surfaces on and off and diff the outputs, scrape the live HTTP endpoint,
//! and (under `--features chaos`) check that the stall detector flags a
//! solver-stalled campaign while its siblings keep finishing.

use std::fs;
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

use wasai::wasai_core::telemetry::parse_json_fields;

/// A fresh scratch directory under the target dir (no tempfile dependency).
fn scratch_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("test-scratch")
        .join(format!("{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Generate a labeled corpus with real action-function branches (branches
/// in `apply` are excluded from the coverage metric, so hand-rolled stubs
/// would leave every coverage/flip counter at zero).
fn write_corpus(dir: &Path) {
    let out = Command::new(env!("CARGO_BIN_EXE_wasai"))
        .arg("gen")
        .arg(dir)
        .arg("3")
        .arg("7")
        .output()
        .expect("spawn wasai gen");
    assert!(out.status.success(), "gen failed: {out:?}");
}

struct SweepRun {
    /// Per-contract verdict lines (stdout up to the summary blank line).
    verdicts: Vec<String>,
    /// Bytes of the `--trace-out` file.
    trace: String,
    stderr: String,
}

/// Run `wasai audit-dir` with or without every observability surface on.
/// With `obs`, the run serves `/metrics` on an ephemeral port, writes a
/// `--metrics-dump` snapshot, and forces the (non-TTY) progress line on.
fn run_audit_dir(dir: &Path, jobs: &str, obs: bool) -> SweepRun {
    let tag = format!("{jobs}-{}", if obs { "obs" } else { "dark" });
    let trace_path = dir.join(format!("trace-{tag}.jsonl"));
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_wasai"));
    cmd.arg("audit-dir")
        .arg(dir)
        .arg("5")
        .arg("--deadline-secs")
        .arg("300")
        .arg("--trace-out")
        .arg(&trace_path)
        .env("WASAI_JOBS", jobs);
    if obs {
        cmd.arg("--metrics-addr")
            .arg("127.0.0.1:0")
            .arg("--metrics-dump")
            .arg(dir.join(format!("dump-{tag}.json")))
            .arg("--stall-secs")
            .arg("1")
            .env("WASAI_PROGRESS", "1");
    } else {
        cmd.env("WASAI_PROGRESS", "0");
    }
    let out = cmd.output().expect("spawn wasai");
    assert_eq!(out.status.code(), Some(0), "{tag}: {:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    SweepRun {
        verdicts: stdout
            .lines()
            .take_while(|l| !l.is_empty())
            .map(str::to_string)
            .collect(),
        trace: fs::read_to_string(&trace_path).expect("trace exists"),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

fn read_dump(dir: &Path, tag: &str) -> std::collections::BTreeMap<String, u64> {
    let raw = fs::read_to_string(dir.join(format!("dump-{tag}.json"))).expect("metrics dump");
    parse_json_fields(&raw)
        .expect("parseable metrics dump")
        .into_iter()
        .filter_map(|(k, v)| v.as_num().map(|n| (k, n)))
        .collect()
}

/// ISSUE 5's acceptance gate: verdicts and traces byte-identical with
/// observability fully on vs fully off, at `WASAI_JOBS=1` and `4`.
#[test]
fn reports_and_traces_are_byte_identical_with_observability_on() {
    let dir = scratch_dir("obs-identity");
    write_corpus(&dir);

    let baseline = run_audit_dir(&dir, "1", false);
    assert_eq!(baseline.verdicts.len(), 3, "{:?}", baseline.verdicts);
    assert!(!baseline.trace.is_empty());

    for (jobs, obs) in [("1", true), ("4", false), ("4", true)] {
        let run = run_audit_dir(&dir, jobs, obs);
        assert_eq!(
            run.verdicts, baseline.verdicts,
            "verdicts drifted at jobs={jobs} obs={obs}"
        );
        assert_eq!(
            run.trace, baseline.trace,
            "trace drifted at jobs={jobs} obs={obs}"
        );
        if obs {
            // The surfaces were actually live, not silently skipped.
            assert!(
                run.stderr
                    .contains("metrics listening on http://127.0.0.1:"),
                "no listener banner: {}",
                run.stderr
            );
            assert!(
                run.stderr.contains("[wasai] "),
                "no progress line: {}",
                run.stderr
            );
            assert!(
                run.stderr.contains("metrics dump written to"),
                "no dump notice: {}",
                run.stderr
            );
        }
    }

    // The wall-clock registry itself is deterministic where it counts work,
    // not time: seeds, coverage, flips are per-slot deterministic, so their
    // fleet-wide sums match across worker counts.
    let d1 = read_dump(&dir, "1-obs");
    let d4 = read_dump(&dir, "4-obs");
    for key in [
        "wasai_campaigns_total{outcome=\"ok\"}",
        "wasai_seeds_executed_total",
        "wasai_coverage_branches_total",
        "wasai_branch_sites_total",
        "wasai_flips_total",
        "wasai_smt_queries_total{outcome=\"sat\"}",
    ] {
        assert_eq!(d1.get(key), d4.get(key), "{key} drifted across jobs");
        assert!(d1.get(key).copied().unwrap_or(0) > 0, "{key} never counted");
    }
    // The coverage denominator bounds the numerator (directions, not sites).
    assert!(
        d1["wasai_coverage_branches_total"] <= d1["wasai_branch_sites_total"],
        "coverage {} exceeds denominator {}",
        d1["wasai_coverage_branches_total"],
        d1["wasai_branch_sites_total"]
    );
}

/// `wasai stats --format json` over the run's trace reports the same values
/// under the same Prometheus series names as the live registry dump, so
/// offline and live observability join by key.
#[test]
fn stats_json_agrees_with_live_metrics_dump() {
    let dir = scratch_dir("obs-stats");
    write_corpus(&dir);
    let run = run_audit_dir(&dir, "2", true);
    assert_eq!(run.verdicts.len(), 3);

    let out = Command::new(env!("CARGO_BIN_EXE_wasai"))
        .arg("stats")
        .arg(dir.join("trace-2-obs.jsonl"))
        .arg("--format")
        .arg("json")
        .output()
        .expect("spawn wasai stats");
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let stats = parse_json_fields(&String::from_utf8_lossy(&out.stdout)).expect("parseable stats");
    let dump = read_dump(&dir, "2-obs");

    for key in [
        "wasai_campaigns_total{outcome=\"ok\"}",
        "wasai_seeds_executed_total",
        "wasai_coverage_branches_total",
        "wasai_replays_total",
        "wasai_flips_total",
        "wasai_smt_queries_total{outcome=\"sat\"}",
        "wasai_smt_queries_total{outcome=\"unsat\"}",
        "wasai_smt_queries_total{outcome=\"unknown\"}",
        "wasai_smt_propagations_total",
    ] {
        let offline = stats.get(key).and_then(|v| v.as_num());
        assert_eq!(
            offline,
            dump.get(key).copied(),
            "offline stats and live dump disagree on {key}"
        );
    }
}

/// Minimal HTTP GET against the metrics listener.
fn http_get(addr: &str, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect metrics listener");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .expect("set timeout");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut buf = String::new();
    stream.read_to_string(&mut buf).expect("read response");
    let (head, body) = buf.split_once("\r\n\r\n").expect("header/body split");
    (head.to_string(), body.to_string())
}

/// Scrape the live `/metrics` endpoint of a running sweep: Prometheus text
/// exposition with HELP/TYPE per family, plus the JSON twin at
/// `/metrics.json`.
#[test]
fn live_http_listener_serves_prometheus_and_json() {
    let dir = scratch_dir("obs-scrape");
    write_corpus(&dir);
    let mut child = Command::new(env!("CARGO_BIN_EXE_wasai"))
        .arg("audit-dir")
        .arg(&dir)
        .arg("5")
        .arg("--deadline-secs")
        .arg("300")
        .arg("--metrics-addr")
        .arg("127.0.0.1:0")
        .env("WASAI_JOBS", "2")
        .env("WASAI_PROGRESS", "0")
        // Keep the listener up after the sweep so the scrape cannot race a
        // fast run.
        .env("WASAI_METRICS_LINGER_SECS", "60")
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn wasai");

    // The binary announces the resolved ephemeral port on stderr.
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("stderr closed before listener banner")
            .expect("read stderr");
        if let Some(rest) = line.strip_prefix("metrics listening on http://") {
            break rest
                .strip_suffix("/metrics")
                .expect("banner ends in /metrics")
                .to_string();
        }
    };

    let (head, body) = http_get(&addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "missing exposition content type: {head}"
    );
    for family in [
        "wasai_campaigns_total",
        "wasai_seeds_executed_total",
        "wasai_fleet_campaigns",
        "wasai_campaign_wall_seconds",
    ] {
        assert!(
            body.contains(&format!("# HELP {family} ")),
            "no HELP for {family}:\n{body}"
        );
        assert!(
            body.contains(&format!("# TYPE {family} ")),
            "no TYPE for {family}:\n{body}"
        );
        // Exactly one HELP per family, even with labeled series.
        assert_eq!(
            body.matches(&format!("# HELP {family} ")).count(),
            1,
            "duplicated HELP for {family}"
        );
    }
    assert!(
        body.contains("wasai_campaign_wall_seconds_bucket{le=\"+Inf\"}"),
        "histogram missing +Inf bucket:\n{body}"
    );

    let (jhead, jbody) = http_get(&addr, "/metrics.json");
    assert!(jhead.starts_with("HTTP/1.1 200"), "{jhead}");
    let fields = parse_json_fields(&jbody).expect("parseable /metrics.json");
    assert!(
        fields.contains_key("wasai_seeds_executed_total"),
        "JSON twin missing series: {jbody}"
    );

    let (nf_head, _) = http_get(&addr, "/nope");
    assert!(nf_head.starts_with("HTTP/1.1 404"), "{nf_head}");

    child.kill().expect("kill lingering child");
    child.wait().expect("reap child");
}

#[cfg(feature = "chaos")]
mod chaos {
    use std::time::{Duration, Instant};

    use wasai::wasai_core::chaos::{clear, install, ChaosPlan, Fault};
    use wasai::wasai_core::{CampaignOutcome, ProgressMonitor};
    use wasai::wasai_corpus::{wild_corpus, WildRates};
    use wasai::wasai_obs as obs;
    use wasai::wasai_smt::Deadline;
    use wasai_bench::rq4_analyze_isolated;

    /// ISSUE 5's stall satellite: with a `stall@0` fault injected, the
    /// monitor must flag campaign 0 as stalled in the solve stage while the
    /// sibling campaigns keep finishing, and the PR 2 deadline must still be
    /// what retires the stalled slot.
    #[test]
    fn monitor_flags_stalled_campaign_while_siblings_finish() {
        let reg = obs::global();
        reg.reset();
        reg.enable();
        obs::heartbeats().reset();
        clear();

        let corpus = wild_corpus(4, 6, WildRates::default());
        let total = corpus.len() as u64;
        install(ChaosPlan::new(vec![(0, Fault::SolverStall)]));
        let monitor = ProgressMonitor::new(total, Duration::from_millis(300));
        let fleet = std::thread::spawn(move || {
            rq4_analyze_isolated(&corpus, 11, 2, Deadline::after(Duration::from_secs(2)))
        });

        // Sample like the render loop does until the stall shows up (the
        // injected stall holds its worker for the full 2s deadline).
        let poll_deadline = Instant::now() + Duration::from_secs(15);
        let mut stall = None;
        while stall.is_none() && Instant::now() < poll_deadline {
            std::thread::sleep(Duration::from_millis(50));
            let report = monitor.sample();
            if !report.stalled.is_empty() {
                // The sampler also maintains the stalled-campaigns gauge.
                assert_eq!(
                    reg.gauge(obs::Gauge::StalledCampaigns),
                    report.stalled.len() as u64
                );
            }
            stall = report.stalled.first().cloned();
        }
        let runs = fleet.join().expect("fleet thread");
        clear();

        let stall = stall.expect("monitor never flagged the stalled campaign");
        assert_eq!(stall.campaign, 0, "wrong campaign flagged: {stall:?}");
        assert_eq!(stall.stage, obs::Stage::Solve, "wrong stage: {stall:?}");
        assert!(stall.idle_ms >= 300, "under-threshold report: {stall:?}");

        assert!(
            matches!(runs[0].outcome, CampaignOutcome::TimedOut { .. }),
            "stalled campaign should be deadline-retired, got {}",
            runs[0].outcome.detail()
        );
        for (i, run) in runs.iter().enumerate().skip(1) {
            assert!(
                !matches!(run.outcome, CampaignOutcome::TimedOut { .. }),
                "sibling {i} should finish while campaign 0 stalls, got {}",
                run.outcome.detail()
            );
        }

        reg.disable();
        reg.reset();
        obs::heartbeats().reset();
    }
}
