#![warn(missing_docs)]

//! # wasai — the façade crate of the WASAI reproduction
//!
//! Re-exports the whole workspace under one roof and hosts the runnable
//! examples and cross-crate integration tests. Start with
//! [`wasai_core::Wasai`] to analyze a contract, and with
//! [`wasai_corpus::generate`] to build labeled test subjects.
//!
//! ```
//! use wasai::prelude::*;
//!
//! let contract = generate(Blueprint { code_guard: false, ..Blueprint::default() });
//! let report = Wasai::new(contract.module, contract.abi)
//!     .with_config(FuzzConfig::quick())
//!     .run()?;
//! assert!(report.has(VulnClass::FakeEos));
//! # Ok::<(), wasai::wasai_chain::ChainError>(())
//! ```

pub use wasai_baselines;
pub use wasai_chain;
pub use wasai_core;
pub use wasai_corpus;
pub use wasai_obs;
pub use wasai_smt;
pub use wasai_symex;
pub use wasai_vm;
pub use wasai_wasm;

/// The most common imports in one place.
pub mod prelude {
    pub use wasai_chain::abi::{Abi, ActionDecl, ParamType, ParamValue};
    pub use wasai_chain::asset::Asset;
    pub use wasai_chain::name::Name;
    pub use wasai_chain::Chain;
    pub use wasai_core::{FuzzConfig, FuzzReport, SubstrateKind, VulnClass, Wasai};
    pub use wasai_corpus::{
        cw_corpus, generate, Blueprint, CwBlueprint, GateKind, LabeledContract, LabeledCwContract,
        RewardKind,
    };
}
