//! The `wasai` command-line tool.
//!
//! ```text
//! wasai audit     <contract.wasm> <contract.abi>  analyze a contract binary
//! wasai audit-dir <dir> [seed]                    analyze every *.wasm in a directory
//! wasai gen       <out-dir> [count] [seed]        emit a labeled sample corpus
//! wasai show      <contract.wasm>                 dump a WAT-like listing
//! ```
//!
//! `audit-dir` fans campaigns out over `WASAI_JOBS` worker threads (default:
//! available parallelism; `1` forces serial) and reports per-contract
//! verdicts in directory order regardless of worker count.
//!
//! The ABI sidecar is one action per line, `name(type,…)` with types from
//! {name, asset, string, u64, u32, u8, i64, f64}:
//!
//! ```text
//! transfer(name,name,asset,string)
//! reveal(name,u64)
//! ```

use std::fs;
use std::process::ExitCode;

use wasai::prelude::*;
use wasai::wasai_corpus::wild_corpus;
use wasai::wasai_wasm::{decode, display, encode};

fn parse_abi(text: &str) -> Result<Abi, String> {
    let mut actions = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |m: &str| format!("ABI line {}: {m}", lineno + 1);
        let (name, rest) = line
            .split_once('(')
            .ok_or_else(|| err("expected `name(…)`"))?;
        let params_str = rest.strip_suffix(')').ok_or_else(|| err("missing `)`"))?;
        let mut params = Vec::new();
        for ty in params_str
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
        {
            params.push(match ty {
                "name" => ParamType::Name,
                "asset" => ParamType::Asset,
                "string" => ParamType::String,
                "u64" | "uint64" => ParamType::U64,
                "u32" | "uint32" => ParamType::U32,
                "u8" | "uint8" => ParamType::U8,
                "i64" | "int64" => ParamType::I64,
                "f64" | "float64" => ParamType::F64,
                other => return Err(err(&format!("unknown type {other:?}"))),
            });
        }
        let action: Name = name
            .trim()
            .parse()
            .map_err(|e| err(&format!("bad action name: {e}")))?;
        actions.push(ActionDecl::new(action, params));
    }
    Ok(Abi::new(actions))
}

fn audit(wasm_path: &str, abi_path: &str) -> Result<(), String> {
    let bytes = fs::read(wasm_path).map_err(|e| format!("{wasm_path}: {e}"))?;
    let module = decode::decode(&bytes).map_err(|e| format!("{wasm_path}: {e}"))?;
    let abi = parse_abi(&fs::read_to_string(abi_path).map_err(|e| format!("{abi_path}: {e}"))?)?;
    eprintln!(
        "auditing {wasm_path}: {} instructions, {} functions, {} declared actions",
        module.code_size(),
        module.funcs.len(),
        abi.actions.len()
    );
    let report = Wasai::new(module, abi)
        .with_config(FuzzConfig::default())
        .run()
        .map_err(|e| e.to_string())?;
    println!(
        "campaign: {} iterations, {} SMT queries, {} branches covered",
        report.iterations, report.smt_queries, report.branches
    );
    if report.findings.is_empty() {
        println!("no vulnerabilities detected");
    } else {
        for class in &report.findings {
            println!("VULNERABLE: {class}");
        }
        for e in &report.exploits {
            println!("  payload [{}]: {}", e.class, e.payload);
        }
    }
    Ok(())
}

/// Analyze every `*.wasm` (with `.abi` sidecar) in a directory, in parallel.
fn audit_dir(dir: &str, seed: u64) -> Result<(), String> {
    let mut wasm_paths: Vec<std::path::PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("{dir}: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "wasm"))
        .collect();
    // Sorted order fixes the job indices (and thus each campaign's seed),
    // independent of directory enumeration order.
    wasm_paths.sort();
    if wasm_paths.is_empty() {
        return Err(format!("{dir}: no *.wasm files"));
    }
    let jobs = wasai::wasai_core::jobs_from_env();
    eprintln!(
        "auditing {} contracts from {dir} on {jobs} worker(s)",
        wasm_paths.len()
    );

    let (outcomes, stats) = wasai::wasai_core::run_jobs_timed(
        jobs,
        wasm_paths,
        |i, path| {
            let run = || -> Result<FuzzReport, String> {
                let bytes = fs::read(&path).map_err(|e| format!("{e}"))?;
                let module = decode::decode(&bytes).map_err(|e| format!("{e}"))?;
                let abi_path = path.with_extension("abi");
                let abi = parse_abi(
                    &fs::read_to_string(&abi_path)
                        .map_err(|e| format!("{}: {e}", abi_path.display()))?,
                )?;
                Wasai::new(module, abi)
                    .with_config(FuzzConfig {
                        rng_seed: seed ^ (i as u64),
                        ..FuzzConfig::default()
                    })
                    .run()
                    .map_err(|e| e.to_string())
            };
            let outcome = run();
            (path, outcome)
        },
        |(_, r)| r.as_ref().map(|r| r.virtual_us).unwrap_or(0),
    );

    let mut vulnerable = 0usize;
    let mut errors = 0usize;
    for (path, outcome) in &outcomes {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        match outcome {
            Ok(report) if report.findings.is_empty() => {
                println!("{name}: clean ({} branches)", report.branches);
            }
            Ok(report) => {
                vulnerable += 1;
                let classes: Vec<String> = report.findings.iter().map(|c| c.to_string()).collect();
                println!("{name}: VULNERABLE — {}", classes.join(", "));
            }
            Err(e) => {
                // Per-file failures are reported, not fatal: a directory
                // sweep should survive one malformed binary.
                errors += 1;
                println!("{name}: error — {e}");
            }
        }
    }
    println!(
        "\n{} contracts: {} vulnerable, {} clean, {} errors",
        outcomes.len(),
        vulnerable,
        outcomes.len() - vulnerable - errors,
        errors
    );
    println!("{}", stats.summary());
    Ok(())
}

fn gen(out_dir: &str, count: usize, seed: u64) -> Result<(), String> {
    fs::create_dir_all(out_dir).map_err(|e| e.to_string())?;
    let corpus = wild_corpus(seed, count, wasai::wasai_corpus::WildRates::default());
    for (i, w) in corpus.iter().enumerate() {
        let base = format!("{out_dir}/contract_{i:04}");
        fs::write(format!("{base}.wasm"), encode::encode(&w.deployed.module))
            .map_err(|e| e.to_string())?;
        let abi_text: String = w
            .deployed
            .abi
            .actions
            .iter()
            .map(|a| {
                let tys: Vec<String> = a.params.iter().map(|t| t.to_string()).collect();
                format!("{}({})\n", a.name, tys.join(","))
            })
            .collect();
        fs::write(format!("{base}.abi"), abi_text).map_err(|e| e.to_string())?;
        let label: Vec<String> = w.deployed.label.iter().map(|c| c.to_string()).collect();
        fs::write(format!("{base}.label"), label.join(",") + "\n").map_err(|e| e.to_string())?;
    }
    println!("wrote {count} contracts (+.abi/.label sidecars) to {out_dir}");
    Ok(())
}

fn show(wasm_path: &str) -> Result<(), String> {
    let bytes = fs::read(wasm_path).map_err(|e| format!("{wasm_path}: {e}"))?;
    let module = decode::decode(&bytes).map_err(|e| format!("{wasm_path}: {e}"))?;
    println!("{}", display::module_to_string(&module));
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let usage = "usage:\n  wasai audit <contract.wasm> <contract.abi>\n  wasai audit-dir <dir> [seed]\n  wasai gen <out-dir> [count] [seed]\n  wasai show <contract.wasm>";
    let result = match args.get(1).map(String::as_str) {
        Some("audit") if args.len() == 4 => audit(&args[2], &args[3]),
        Some("audit-dir") if args.len() >= 3 => {
            let seed = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0xe05);
            audit_dir(&args[2], seed)
        }
        Some("gen") if args.len() >= 3 => {
            let count = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(10);
            let seed = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(1);
            gen(&args[2], count, seed)
        }
        Some("show") if args.len() == 3 => show(&args[2]),
        _ => Err(usage.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
