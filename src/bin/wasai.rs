//! The `wasai` command-line tool.
//!
//! ```text
//! wasai audit     <contract.wasm> <contract.abi> [--trace-out FILE]
//!                       [--substrate eosio|cosmwasm|auto] [--profile-out FILE] [obs flags]
//!                                                 analyze a contract binary
//! wasai audit-dir <dir> [seed] [--deadline-secs S] [--triage FILE] [--trace-out FILE]
//!                       [--procs N] [--journal FILE] [--resume FILE]
//!                       [--substrate eosio|cosmwasm|auto] [--profile-out FILE] [obs flags]
//!                                                 analyze every *.wasm in a directory
//! wasai stats     <trace-or-triage.jsonl> [--format table|json] [--fleet]
//!                                                 summarize a telemetry trace or triage report
//! wasai gen       <out-dir> [count] [seed] [--substrate eosio|cosmwasm]
//!                                                 emit a labeled sample corpus
//! wasai show      <contract.wasm>                 dump a WAT-like listing
//! ```
//!
//! `--substrate` pins the chain backend for every campaign; the default
//! (`auto`) detects it per module from the entry exports (`apply` → eosio,
//! `instantiate`/`execute` → cosmwasm). Worker subprocesses spawned by
//! `--procs` inherit the flag verbatim.
//!
//! Observability flags (shared by `audit` and `audit-dir`):
//!
//! - `--metrics-addr ADDR` (or `WASAI_METRICS_ADDR`) serves live Prometheus
//!   text exposition on `http://ADDR/metrics` (JSON at `/metrics.json`) for
//!   the duration of the run; `WASAI_METRICS_LINGER_SECS` keeps the
//!   listener up that many seconds after the sweep so late scrapes land.
//! - `--metrics-dump FILE` writes a one-shot JSON snapshot of every metric
//!   at exit.
//! - `--progress` / `--no-progress` (or `WASAI_PROGRESS=1|0`) force the
//!   live stderr progress line on or off; the default is on only when
//!   stderr is a terminal. `--stall-secs N` (default 30) sets the
//!   heartbeat threshold after which a quiet campaign is flagged STALLED.
//!
//! All observability output is wall-clock and strictly out-of-band: stdout
//! verdicts, triage files, and telemetry traces are byte-identical with
//! these surfaces on or off (see DESIGN.md, "The determinism boundary").
//!
//! `audit-dir` fans campaigns out over `WASAI_JOBS` worker threads (default:
//! available parallelism; `1` forces serial) and reports per-contract
//! verdicts in directory order regardless of worker count. Campaigns are
//! fault-isolated: a contract that panics the pipeline, hangs the solver, or
//! fails to validate is triaged and the sweep keeps going. `--deadline-secs`
//! (or `WASAI_DEADLINE`, seconds) arms a wall-clock watchdog shared by every
//! stage; `--triage FILE` writes a machine-readable JSON-lines report with
//! one record per contract:
//!
//! ```text
//! {"contract":"c.wasm","index":3,"outcome":"panicked","stage":"replay",
//!  "detail":"...","seed":1234,"truncated":false,"branches":12,
//!  "virtual_us":500000,"exec_us":450000,"solve_us":50000,
//!  "iterations":96,"smt_queries":14,"elapsed_ms":17}
//! ```
//!
//! The per-campaign timeline fields (`virtual_us` = `exec_us` + `solve_us`,
//! `iterations`, `smt_queries`) are deterministic; `elapsed_ms` is the only
//! wall-clock field and stays last so it can be stripped with a one-line
//! `sed` for byte comparison across schedules.
//!
//! `--profile-out FILE` writes a folded-stack span profile (one
//! `wasai;<contract>;execute|solve <virtual-µs>` line per non-zero stage,
//! sweep order) ready for any flamegraph renderer. Weights come from the
//! virtual clock, so the file is byte-identical at any `WASAI_JOBS`,
//! `--procs` value, or resume schedule.
//!
//! `--trace-out FILE` writes the campaigns' telemetry event stream as JSON
//! lines (see `wasai_core::telemetry`), merged in campaign-index order —
//! the trace is byte-identical for every `WASAI_JOBS` value. `wasai stats`
//! renders either file kind as a human-readable table; on a
//! `--metrics-dump` snapshot, `wasai stats --fleet` splits the
//! `shard="N"` series into one table per worker shard after the
//! fleet-total rollup.
//!
//! `--procs N` (or `WASAI_PROCS`) promotes fault isolation from threads to
//! **processes**: a supervisor shards the corpus across N `audit-worker`
//! subprocesses (each running the thread fleet internally on
//! `WASAI_JOBS / N` threads) and merges their streamed outcome records.
//! A worker that dies or stalls is re-dispatched with only its unfinished
//! campaigns (bounded exponential backoff; `WASAI_MAX_ATTEMPTS`,
//! `WASAI_RETRY_BACKOFF_MS`, `WASAI_WORKER_STALL_SECS` tune it) and
//! campaigns that outlive every retry are triaged as `crashed`. Because
//! campaign seeds depend only on the sweep seed and the campaign's index,
//! verdicts and triage are byte-identical to a single-process run at any
//! `--procs` value and any kill schedule.
//!
//! `--journal FILE` additionally appends each completed campaign's outcome
//! record to a durable JSONL journal (fsync'd per record, digest-checked);
//! `--resume FILE` is the same flag with intent spelled out: if FILE
//! already holds records from an interrupted sweep of the same corpus and
//! seed, those campaigns are restored without re-running and only the
//! unfinished remainder executes. A torn final line (the power-loss case)
//! is dropped and rewritten; any other corruption is a hard error. The
//! aggregate report after a resume is byte-identical to an uninterrupted
//! run. `audit-worker` is the internal worker entrypoint spawned by
//! `--procs`; it is not part of the public interface.
//!
//! Exit codes: `0` — sweep completed, every contract audited cleanly (the
//! contracts may still be *vulnerable*; findings are verdicts, not errors);
//! `2` — sweep completed but at least one contract failed, panicked, or
//! timed out (see the triage report); `1` — fatal usage or I/O error before
//! the sweep could run.
//!
//! The ABI sidecar is one action per line, `name(type,…)` with types from
//! {name, asset, string, u64, u32, u8, i64, f64}:
//!
//! ```text
//! transfer(name,name,asset,string)
//! reveal(name,u64)
//! ```

use std::fs;
use std::io::IsTerminal;
use std::path::{Path, PathBuf};
use std::process::{ExitCode, Stdio};
use std::time::Duration;

use wasai::prelude::*;
use wasai::wasai_chain::ChainError;
use wasai::wasai_core::chaos;
use wasai::wasai_core::fleet::journal::{Journal, JournalMeta, OutcomeRecord};
use wasai::wasai_core::fleet::supervisor::{run_supervised, SupervisorOpts};
use wasai::wasai_core::fleet::{self, stage, CampaignOutcome, CampaignRun};
use wasai::wasai_core::obs_bridge::{self, ProgressMonitor};
use wasai::wasai_core::profile;
use wasai::wasai_core::telemetry::{self, json_escape, Metrics, TelemetryEvent};
use wasai::wasai_core::SubstrateKind;
use wasai::wasai_corpus::{cw_corpus, label_sidecar, wild_corpus};
use wasai::wasai_obs as obs;
use wasai::wasai_smt::Deadline;
use wasai::wasai_wasm::{decode, display, encode};

/// Observability options shared by `audit` and `audit-dir`.
#[derive(Debug, Default)]
struct ObsOpts {
    /// `--metrics-addr ADDR`: serve Prometheus exposition over HTTP.
    metrics_addr: Option<String>,
    /// `--metrics-dump FILE`: one-shot JSON metrics snapshot at exit.
    metrics_dump: Option<String>,
    /// `--progress` / `--no-progress` override (None = auto: stderr TTY).
    progress: Option<bool>,
    /// `--stall-secs N`: heartbeat stall threshold (default 30).
    stall_secs: f64,
}

impl ObsOpts {
    fn new() -> ObsOpts {
        ObsOpts {
            stall_secs: 30.0,
            ..ObsOpts::default()
        }
    }

    /// Try to consume one observability flag; `Ok(true)` if `arg` was ours.
    fn parse_flag(
        &mut self,
        arg: &str,
        it: &mut std::slice::Iter<'_, String>,
    ) -> Result<bool, String> {
        match arg {
            "--metrics-addr" => {
                let v = it.next().ok_or("--metrics-addr needs host:port")?;
                self.metrics_addr = Some(v.clone());
            }
            "--metrics-dump" => {
                let v = it.next().ok_or("--metrics-dump needs a file path")?;
                self.metrics_dump = Some(v.clone());
            }
            "--progress" => self.progress = Some(true),
            "--no-progress" => self.progress = Some(false),
            "--stall-secs" => {
                let v = it.next().ok_or("--stall-secs needs a value")?;
                self.stall_secs = v.parse().map_err(|e| format!("--stall-secs {v}: {e}"))?;
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// The metrics address, with the `WASAI_METRICS_ADDR` env fallback.
    fn resolved_addr(&self) -> Option<String> {
        self.metrics_addr.clone().or_else(|| {
            std::env::var("WASAI_METRICS_ADDR")
                .ok()
                .filter(|s| !s.trim().is_empty())
        })
    }

    /// Whether the live progress line is wanted: explicit flag, then
    /// `WASAI_PROGRESS=1|0`, then "stderr is a terminal".
    fn resolved_progress(&self) -> bool {
        if let Some(p) = self.progress {
            return p;
        }
        match std::env::var("WASAI_PROGRESS").ok().as_deref() {
            Some("1") => true,
            Some("0") => false,
            _ => std::io::stderr().is_terminal(),
        }
    }
}

/// The live observability surfaces of one run. Everything here renders to
/// stderr or a socket — stdout and result files are untouched, so reports
/// stay byte-identical whether or not a session is active.
struct ObsSession {
    server: Option<obs::http::MetricsServer>,
    monitor: Option<wasai::wasai_core::MonitorHandle>,
}

/// Start the requested observability surfaces for a run of `total`
/// campaigns. Enables the global registry iff any surface is on.
fn obs_start(opts: &ObsOpts, total: u64) -> Result<ObsSession, String> {
    let addr = opts.resolved_addr();
    let progress = opts.resolved_progress();
    if addr.is_some() || opts.metrics_dump.is_some() || progress {
        obs::enable();
    }
    // A metrics listener that can't come up must not take the audit down
    // with it: observability is strictly auxiliary to the sweep. An
    // in-use address gets a short bounded backoff (3 attempts, 250 ms
    // apart — the previous run's listener may still be draining its
    // linger window); after that — or on any other bind error — count the
    // degradation on `wasai_obs_listener_failed_total`, warn, and run
    // dark. The server is fleet-aware: supervised sweeps merge worker
    // frames into `obs::fleet()`, and each scrape renders its shards.
    let server = addr.and_then(|a| {
        let mut attempt = obs::http::MetricsServer::bind_fleet(&a, obs::global(), obs::fleet());
        for _ in 1..3 {
            let in_use = matches!(&attempt, Err(e) if e.kind() == std::io::ErrorKind::AddrInUse);
            if !in_use {
                break;
            }
            eprintln!("warning: --metrics-addr {a} is in use; retrying in 250ms");
            std::thread::sleep(Duration::from_millis(250));
            attempt = obs::http::MetricsServer::bind_fleet(&a, obs::global(), obs::fleet());
        }
        match attempt {
            Ok(srv) => {
                eprintln!("metrics listening on http://{}/metrics", srv.local_addr());
                Some(srv)
            }
            Err(e) => {
                obs::inc(obs::Counter::ObsListenerFailed);
                eprintln!(
                    "warning: --metrics-addr {a}: {e}; continuing without the metrics listener"
                );
                None
            }
        }
    });
    let monitor = progress.then(|| {
        ProgressMonitor::new(total, Duration::from_secs_f64(opts.stall_secs.max(0.0)))
            .spawn(Duration::from_millis(500), std::io::stderr().is_terminal())
    });
    Ok(ObsSession { server, monitor })
}

/// Tear a session down: stop the monitor, write the `--metrics-dump`
/// snapshot, honor `WASAI_METRICS_LINGER_SECS`, then close the listener.
fn obs_finish(mut session: ObsSession, opts: &ObsOpts) -> Result<(), String> {
    if let Some(mut monitor) = session.monitor.take() {
        monitor.stop();
    }
    if let Some(path) = &opts.metrics_dump {
        // Fleet-aware dump: under `--procs` the global registry already
        // holds the merged fleet totals and `obs::fleet()` the per-shard
        // series; single-process runs have an empty shard list and render
        // byte-identically to the plain dump.
        let shards = obs::fleet().snapshot();
        fs::write(path, obs::expo::render_json_fleet(obs::global(), &shards))
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("metrics dump written to {path}");
    }
    if session.server.is_some() {
        let linger = std::env::var("WASAI_METRICS_LINGER_SECS")
            .ok()
            .and_then(|v| v.trim().parse::<f64>().ok())
            .filter(|s| *s > 0.0);
        if let Some(secs) = linger {
            eprintln!("metrics listener lingering {secs}s for late scrapes");
            std::thread::sleep(Duration::from_secs_f64(secs));
        }
    }
    Ok(())
}

fn parse_abi(text: &str) -> Result<Abi, String> {
    let mut actions = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |m: &str| format!("ABI line {}: {m}", lineno + 1);
        let (name, rest) = line
            .split_once('(')
            .ok_or_else(|| err("expected `name(…)`"))?;
        let params_str = rest.strip_suffix(')').ok_or_else(|| err("missing `)`"))?;
        let mut params = Vec::new();
        for ty in params_str
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
        {
            params.push(match ty {
                "name" => ParamType::Name,
                "asset" => ParamType::Asset,
                "string" => ParamType::String,
                "u64" | "uint64" => ParamType::U64,
                "u32" | "uint32" => ParamType::U32,
                "u8" | "uint8" => ParamType::U8,
                "i64" | "int64" => ParamType::I64,
                "f64" | "float64" => ParamType::F64,
                other => return Err(err(&format!("unknown type {other:?}"))),
            });
        }
        let action: Name = name
            .trim()
            .parse()
            .map_err(|e| err(&format!("bad action name: {e}")))?;
        actions.push(ActionDecl::new(action, params));
    }
    Ok(Abi::new(actions))
}

/// Parse a `--substrate` value: `auto` means detect from the module's entry
/// exports (`None`), anything else must be a known substrate name.
fn parse_substrate(v: &str) -> Result<Option<SubstrateKind>, String> {
    if v == "auto" {
        return Ok(None);
    }
    SubstrateKind::parse(v)
        .map(Some)
        .ok_or_else(|| format!("--substrate must be eosio, cosmwasm or auto, got {v:?}"))
}

/// Parsed `audit` invocation: positionals plus every optional flag.
#[derive(Debug)]
struct AuditArgs {
    wasm: String,
    abi: String,
    trace_out: Option<String>,
    substrate: Option<SubstrateKind>,
    solver_cache: Option<String>,
    portfolio_k: Option<usize>,
    profile_out: Option<String>,
    obs: ObsOpts,
}

fn audit(a: &AuditArgs) -> Result<(), String> {
    let (wasm_path, abi_path) = (a.wasm.as_str(), a.abi.as_str());
    let bytes = fs::read(wasm_path).map_err(|e| format!("{wasm_path}: {e}"))?;
    let module = decode::decode(&bytes).map_err(|e| format!("{wasm_path}: {e}"))?;
    let abi = parse_abi(&fs::read_to_string(abi_path).map_err(|e| format!("{abi_path}: {e}"))?)?;
    eprintln!(
        "auditing {wasm_path}: {} instructions, {} functions, {} declared actions",
        module.code_size(),
        module.funcs.len(),
        abi.actions.len()
    );
    let session = obs_start(&a.obs, 1)?;
    // A single audit never enters the fleet scheduler, so bracket the
    // campaign's heartbeat here for the stall detector.
    obs::worker::begin(0);
    let solver_cache = open_solver_cache(a.solver_cache.as_deref())?;
    let mut wasai = Wasai::new(module, abi)
        .with_config(FuzzConfig {
            portfolio_k: resolved_portfolio(a.portfolio_k)?,
            ..FuzzConfig::default()
        })
        .with_solver_cache(solver_cache.clone());
    if let Some(kind) = a.substrate {
        wasai = wasai.with_substrate(kind);
    }
    let run_result = if let Some(path) = a.trace_out.as_deref() {
        wasai
            .run_traced()
            .map_err(|e| e.to_string())
            .and_then(|(report, events)| {
                fs::write(path, telemetry::write_trace([(0, events.as_slice())]))
                    .map_err(|e| format!("{path}: {e}"))?;
                eprintln!(
                    "telemetry trace written to {path} ({} events)",
                    events.len()
                );
                Ok(report)
            })
    } else {
        wasai.run().map_err(|e| e.to_string())
    };
    obs::worker::end();
    if let Some(path) = a.solver_cache.as_deref() {
        save_solver_cache(path, &solver_cache)?;
    }
    obs_finish(session, &a.obs)?;
    let report = run_result?;
    if let Some(path) = a.profile_out.as_deref() {
        let campaign = std::path::Path::new(wasm_path).file_name().map_or_else(
            || wasm_path.to_string(),
            |n| n.to_string_lossy().into_owned(),
        );
        let spans = [profile::ProfileSpan {
            campaign,
            exec_us: report.exec_virtual_us,
            solve_us: report.solve_virtual_us,
        }];
        fs::write(path, profile::folded_stacks(&spans)).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("span profile written to {path}");
    }
    println!(
        "campaign: {} iterations, {} SMT queries, {} branches covered",
        report.iterations, report.smt_queries, report.branches
    );
    if report.findings.is_empty() {
        println!("no vulnerabilities detected");
    } else {
        for class in &report.findings {
            println!("VULNERABLE: {class}");
        }
        for e in &report.exploits {
            println!("  payload [{}]: {}", e.class, e.payload);
        }
    }
    Ok(())
}

/// Options for `audit-dir` beyond the directory and seed.
struct AuditDirOpts {
    /// Wall-clock watchdog from `--deadline-secs` (overrides
    /// `WASAI_DEADLINE`).
    deadline_secs: Option<f64>,
    /// Destination for the JSON-lines triage report.
    triage_path: Option<String>,
    /// Destination for the JSON-lines telemetry trace.
    trace_path: Option<String>,
    /// `--procs N`: shard across worker subprocesses (None = `WASAI_PROCS`
    /// env, else 1 = in-process).
    procs: Option<usize>,
    /// `--journal FILE`: durable outcome journal.
    journal_path: Option<String>,
    /// `--resume FILE`: journal to FILE and restore any outcomes already
    /// recorded there.
    resume_path: Option<String>,
    /// `--substrate eosio|cosmwasm|auto`: pin the chain substrate for every
    /// campaign (None = auto-detect per module). Inherited verbatim by
    /// `audit-worker` subprocesses.
    substrate: Option<SubstrateKind>,
    /// `--solver-cache FILE`: warm-start the fleet solver cache from FILE
    /// before the sweep and persist it back after (created if missing).
    solver_cache_path: Option<String>,
    /// `--portfolio K`: portfolio width for hard SMT queries (None =
    /// `WASAI_PORTFOLIO` env, else 1 = off).
    portfolio_k: Option<usize>,
    /// `--profile-out FILE`: folded-stack span profile (virtual-clock
    /// weights, flamegraph-compatible, byte-identical at any job count).
    profile_path: Option<String>,
    /// Observability surfaces (metrics listener, dump, progress monitor).
    obs: ObsOpts,
}

impl Default for AuditDirOpts {
    fn default() -> Self {
        AuditDirOpts {
            deadline_secs: None,
            triage_path: None,
            trace_path: None,
            procs: None,
            journal_path: None,
            resume_path: None,
            substrate: None,
            solver_cache_path: None,
            portfolio_k: None,
            profile_path: None,
            obs: ObsOpts::new(),
        }
    }
}

impl AuditDirOpts {
    /// Worker subprocess count: flag, then `WASAI_PROCS`, then 1.
    fn resolved_procs(&self) -> Result<usize, String> {
        if let Some(p) = self.procs {
            return Ok(p.max(1));
        }
        match std::env::var("WASAI_PROCS") {
            Ok(v) => v
                .trim()
                .parse::<usize>()
                .map(|p| p.max(1))
                .map_err(|e| format!("WASAI_PROCS {v:?}: {e}")),
            Err(_) => Ok(1),
        }
    }

    /// The journal destination: `--resume` wins, then `--journal`.
    fn journal_dest(&self) -> Option<&str> {
        self.resume_path.as_deref().or(self.journal_path.as_deref())
    }
}

/// Portfolio width: flag, then `WASAI_PORTFOLIO`, then 1 (off).
fn resolved_portfolio(flag: Option<usize>) -> Result<usize, String> {
    if let Some(k) = flag {
        return Ok(k.max(1));
    }
    match std::env::var("WASAI_PORTFOLIO") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .map(|k| k.max(1))
            .map_err(|e| format!("WASAI_PORTFOLIO {v:?}: {e}")),
        Err(_) => Ok(1),
    }
}

/// Build the fleet solver cache, warm-started from `path` when one was
/// configured. A persistent cache uses the deterministic-eviction policy so
/// its on-disk end state is a pure function of the offered key set.
fn open_solver_cache(
    path: Option<&str>,
) -> Result<std::sync::Arc<wasai::wasai_smt::SolverCache>, String> {
    use wasai::wasai_smt::{persist, SolverCache};
    let Some(path) = path else {
        return Ok(std::sync::Arc::new(SolverCache::new()));
    };
    let cache = SolverCache::evicting();
    let loaded = persist::load_into(Path::new(path), &cache)?;
    if loaded > 0 {
        eprintln!("solver cache: warm-started {loaded} entries from {path}");
    }
    Ok(std::sync::Arc::new(cache))
}

/// Persist the fleet solver cache back to `path` and summarize its traffic
/// on stderr (out-of-band: fleet hit counts are schedule-dependent).
fn save_solver_cache(path: &str, cache: &wasai::wasai_smt::SolverCache) -> Result<(), String> {
    let written = wasai::wasai_smt::persist::save(Path::new(path), cache)?;
    eprintln!(
        "solver cache: saved {written} entries to {path} \
         ({}/{} fleet hits, {} stores dropped)",
        cache.hits(),
        cache.lookups(),
        cache.dropped()
    );
    Ok(())
}

/// Analyze every `*.wasm` (with `.abi` sidecar) in a directory, in parallel,
/// with per-contract fault isolation.
///
/// Returns the documented sweep exit code: `0` when every contract audited
/// cleanly, `2` when the sweep completed but some contracts failed, panicked
/// or timed out.
/// Discover the sorted `*.wasm` corpus of `dir` with its contract names.
///
/// Sorted order fixes the campaign indices (and thus each campaign's seed),
/// independent of directory enumeration order — the supervisor, its worker
/// subprocesses, and a resumed run all see the identical corpus layout.
fn corpus(dir: &str) -> Result<(Vec<PathBuf>, Vec<String>), String> {
    let mut wasm_paths: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("{dir}: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "wasm"))
        .collect();
    wasm_paths.sort();
    if wasm_paths.is_empty() {
        return Err(format!("{dir}: no *.wasm files"));
    }
    let names: Vec<String> = wasm_paths
        .iter()
        .map(|p| {
            p.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default()
        })
        .collect();
    Ok((wasm_paths, names))
}

/// Everything one campaign needs beyond its index and contract path —
/// shared by the in-process fleet and the `audit-worker` entrypoint.
struct CampaignCtx {
    seed: u64,
    deadline: Deadline,
    tracing: bool,
    substrate: Option<SubstrateKind>,
    solver_cache: std::sync::Arc<wasai::wasai_smt::SolverCache>,
    portfolio_k: usize,
}

/// Load, decode, and fuzz one contract — the campaign body shared by the
/// in-process fleet and the `audit-worker` subprocess entrypoint.
fn audit_campaign(
    i: usize,
    path: &Path,
    ctx: &CampaignCtx,
) -> Result<(FuzzReport, Vec<TelemetryEvent>), ChainError> {
    stage::enter(stage::PREPARE);
    let bytes = fs::read(path).map_err(|e| ChainError::BadContract(e.to_string()))?;
    let module = decode::decode(&bytes).map_err(|e| ChainError::BadContract(e.to_string()))?;
    let abi_path = path.with_extension("abi");
    let abi_text = fs::read_to_string(&abi_path)
        .map_err(|e| ChainError::BadContract(format!("{}: {e}", abi_path.display())))?;
    let abi = parse_abi(&abi_text).map_err(ChainError::BadContract)?;
    let mut wasai = Wasai::new(module, abi)
        .with_config(FuzzConfig {
            rng_seed: ctx.seed ^ (i as u64),
            deadline: ctx.deadline,
            portfolio_k: ctx.portfolio_k,
            ..FuzzConfig::default()
        })
        .with_solver_cache(ctx.solver_cache.clone());
    if let Some(kind) = ctx.substrate {
        wasai = wasai.with_substrate(kind);
    }
    if ctx.tracing {
        wasai.run_traced()
    } else {
        wasai.run().map(|r| (r, Vec::new()))
    }
}

/// One campaign's result as a journal-ready outcome record. The record is
/// the single source for verdict lines, triage lines, the durable journal,
/// and the worker wire protocol, so every consumer renders identical bytes.
fn record_from_run(
    index: usize,
    name: &str,
    repro_seed: u64,
    run: &CampaignRun<(FuzzReport, Vec<TelemetryEvent>)>,
) -> OutcomeRecord {
    let report = run.outcome.as_ok().map(|(report, _)| report);
    let (truncated, branches, findings, virtual_us) = match report {
        Some(report) => (
            report.truncated,
            report.branches as u64,
            report
                .findings
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            report.virtual_us,
        ),
        // Timed-out campaigns report as truncated, like a deadline-cut
        // in-campaign run would.
        None => (
            matches!(run.outcome, CampaignOutcome::TimedOut { .. }),
            0,
            String::new(),
            0,
        ),
    };
    OutcomeRecord {
        index,
        contract: name.to_string(),
        outcome: run.outcome.kind().to_string(),
        stage: run.outcome.stage().to_string(),
        detail: run.outcome.detail(),
        seed: repro_seed,
        truncated,
        branches,
        findings,
        virtual_us,
        iterations: report.map_or(0, |r| r.iterations),
        smt_queries: report.map_or(0, |r| r.smt_queries),
        exec_us: report.map_or(0, |r| r.exec_virtual_us),
        solve_us: report.map_or(0, |r| r.solve_virtual_us),
        elapsed_ms: run.elapsed.as_millis() as u64,
    }
}

fn audit_dir(dir: &str, seed: u64, opts: &AuditDirOpts) -> Result<ExitCode, String> {
    let (wasm_paths, names) = corpus(dir)?;
    let jobs = wasai::wasai_core::jobs_from_env();
    let procs = opts.resolved_procs()?;
    // Telemetry events do not cross the worker-process boundary, and a
    // resumed sweep skips journaled campaigns — either way the merged trace
    // would be incomplete, so refuse the combination up front.
    if opts.trace_path.is_some() {
        if procs > 1 {
            return Err(
                "--trace-out is incompatible with --procs > 1 (telemetry events stay \
                 inside the worker processes); drop one of the two"
                    .to_string(),
            );
        }
        if opts.journal_dest().is_some() {
            return Err(
                "--trace-out is incompatible with --journal/--resume (a resumed sweep \
                 skips journaled campaigns, leaving the trace incomplete)"
                    .to_string(),
            );
        }
    }
    let deadline = match opts.deadline_secs {
        Some(secs) if secs > 0.0 => Deadline::after_secs(secs),
        Some(_) => Deadline::NONE,
        None => fleet::deadline_from_env(),
    };
    eprintln!(
        "auditing {} contracts from {dir} on {jobs} worker(s){}{}",
        wasm_paths.len(),
        if procs > 1 {
            format!(" across {procs} process(es)")
        } else {
            String::new()
        },
        match deadline.remaining() {
            Some(d) => format!(", deadline {:.1}s", d.as_secs_f64()),
            None => String::new(),
        }
    );

    let session = obs_start(&opts.obs, wasm_paths.len() as u64)?;
    let start = std::time::Instant::now();
    // Campaigns run traced only when a trace destination was requested;
    // untraced sweeps attach no sink at all and behave exactly as before.
    let tracing = opts.trace_path.is_some();

    // Every campaign outcome lands in its index-keyed slot: freshly run,
    // streamed from a worker subprocess, or restored from a journal. The
    // report is rendered from the slots alone, so all three sources
    // produce identical bytes.
    let meta = JournalMeta::new(seed, &names);
    let mut slots: Vec<Option<OutcomeRecord>> = names.iter().map(|_| None).collect();
    let mut journal = None;
    if let Some(path) = opts.journal_dest() {
        let (j, restored) = Journal::open_or_resume(Path::new(path), &meta)?;
        if !restored.is_empty() {
            obs::add(obs::Counter::JournalReplayed, restored.len() as u64);
            eprintln!(
                "resume: restored {} of {} campaign outcome(s) from {path}; {} left to run",
                restored.len(),
                names.len(),
                names.len() - restored.len()
            );
        }
        for rec in restored {
            let idx = rec.index;
            slots[idx] = Some(rec);
        }
        journal = Some(j);
    }
    let pending: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.is_none().then_some(i))
        .collect();

    let portfolio_k = resolved_portfolio(opts.portfolio_k)?;
    let mut trace_lines = Vec::new();
    if pending.is_empty() {
        eprintln!("resume: every campaign is already journaled; rendering the report");
    } else if procs <= 1 {
        // In-process thread fleet over the pending campaigns. All campaigns
        // share one solver query cache: contracts in a sweep often repeat
        // guard shapes, and a fleet hit replays the exact result a fresh
        // solve would produce, so the triage and trace stay byte-identical.
        let ctx = CampaignCtx {
            seed,
            deadline,
            tracing,
            substrate: opts.substrate,
            solver_cache: open_solver_cache(opts.solver_cache_path.as_deref())?,
            portfolio_k,
        };
        let audit_one = |i: usize, path: PathBuf| audit_campaign(i, &path, &ctx);
        let journal_cell = journal.take().map(std::sync::Mutex::new);
        let items: Vec<(usize, PathBuf)> = pending
            .iter()
            .map(|&i| (i, wasm_paths[i].clone()))
            .collect();
        let outs = fleet::run_jobs(jobs, items, |_, (gi, path)| {
            let run = fleet::run_campaign_isolated(gi, path, deadline, &audit_one);
            let rec = record_from_run(gi, &names[gi], seed ^ gi as u64, &run);
            if let Some(cell) = &journal_cell {
                let mut j = cell.lock().unwrap_or_else(|p| p.into_inner());
                if let Err(e) = j.append(&rec) {
                    eprintln!("warning: journal append failed: {e}");
                }
            }
            (rec, run)
        });
        journal = journal_cell.map(|c| c.into_inner().unwrap_or_else(|p| p.into_inner()));
        for (rec, run) in outs {
            if tracing {
                match &run.outcome {
                    CampaignOutcome::Ok((_, events)) => {
                        trace_lines.extend(events.iter().map(|ev| ev.to_jsonl(rec.index)));
                    }
                    other => {
                        // Aborted campaigns leave a structured marker in the
                        // trace, mirroring `run_jobs_isolated_with_sink`.
                        trace_lines.push(
                            TelemetryEvent::CampaignAborted {
                                campaign: rec.index,
                                stage: other.stage().to_string(),
                                outcome: other.kind().to_string(),
                                vtime: 0,
                            }
                            .to_jsonl(rec.index),
                        );
                    }
                }
            }
            let idx = rec.index;
            slots[idx] = Some(rec);
        }
        if let Some(path) = &opts.solver_cache_path {
            save_solver_cache(path, &ctx.solver_cache)?;
        }
    } else {
        // Supervised subprocess fleet: shard the pending campaigns across
        // `procs` audit-worker children, each running the thread fleet on
        // its share of the job budget.
        let exe = std::env::current_exe().map_err(|e| format!("resolving own executable: {e}"))?;
        let worker_jobs = (jobs / procs).max(1);
        let chaos_spec = std::env::var("WASAI_CHAOS").ok();
        let env_parse = |name: &str, default: f64| -> Result<f64, String> {
            match std::env::var(name) {
                Ok(v) => v.trim().parse().map_err(|e| format!("{name} {v:?}: {e}")),
                Err(_) => Ok(default),
            }
        };
        let max_attempts = env_parse("WASAI_MAX_ATTEMPTS", 3.0)?.max(1.0) as u32;
        let backoff_ms = env_parse("WASAI_RETRY_BACKOFF_MS", 100.0)?.max(0.0);
        let stall_secs = env_parse("WASAI_WORKER_STALL_SECS", 120.0)?;
        let sup = SupervisorOpts {
            procs,
            max_attempts,
            backoff: Duration::from_millis(backoff_ms as u64),
            stall_timeout: (stall_secs > 0.0).then(|| Duration::from_secs_f64(stall_secs)),
            poll: Duration::from_millis(25),
        };
        let deadline_secs = opts.deadline_secs;
        let substrate = opts.substrate;
        // Each worker shard warm-starts from the shared cache file and saves
        // its additions to a private sibling (`FILE.shard-<first-index>`);
        // the supervisor merges the shards after the sweep. Shard names are
        // keyed by the shard's first campaign index, so a retried worker
        // overwrites its own shard instead of leaking a stale one.
        let shard_paths = std::cell::RefCell::new(std::collections::BTreeSet::<String>::new());
        let cache_path = opts.solver_cache_path.clone();
        let spawn = |attempt: u32, indices: &[usize]| {
            let csv: Vec<String> = indices.iter().map(ToString::to_string).collect();
            let mut cmd = std::process::Command::new(&exe);
            cmd.arg("audit-worker")
                .arg(dir)
                .arg("--seed")
                .arg(seed.to_string())
                .arg("--indices")
                .arg(csv.join(","))
                .env("WASAI_JOBS", worker_jobs.to_string())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit());
            if let Some(secs) = deadline_secs {
                cmd.arg("--deadline-secs").arg(secs.to_string());
            }
            if let Some(kind) = substrate {
                cmd.arg("--substrate").arg(kind.name());
            }
            if portfolio_k > 1 {
                cmd.arg("--portfolio").arg(portfolio_k.to_string());
            }
            if let Some(file) = &cache_path {
                let shard = format!("{file}.shard-{}", indices.first().copied().unwrap_or(0));
                cmd.arg("--solver-cache").arg(file);
                cmd.arg("--solver-cache-out").arg(&shard);
                shard_paths.borrow_mut().insert(shard);
            }
            if attempt > 1 {
                // Proc-level chaos faults fire at most once: strip them
                // from the environment of re-dispatched workers so a
                // `kill@i` doesn't re-kill every retry.
                if let Some(stripped) = chaos_spec
                    .as_deref()
                    .and_then(|s| chaos::ChaosPlan::parse(s).ok())
                    .map(|p| p.without_proc_faults().to_string())
                {
                    cmd.env("WASAI_CHAOS", stripped);
                }
            }
            cmd.spawn()
        };
        let journal_cell = journal.take().map(std::cell::RefCell::new);
        let records = run_supervised(&sup, &names, seed, &pending, spawn, |rec| {
            if let Some(cell) = &journal_cell {
                if let Err(e) = cell.borrow_mut().append(rec) {
                    eprintln!("warning: journal append failed: {e}");
                }
            }
        })?;
        journal = journal_cell.map(|c| c.into_inner());
        for rec in records {
            let idx = rec.index;
            slots[idx] = Some(rec);
        }
        if let Some(file) = &cache_path {
            // Merge: prior cache contents first, then every shard in sorted
            // path order. Entries are idempotent and eviction keeps the
            // smallest N keys, so the merged file is independent of which
            // worker finished first — and of `--procs` itself.
            let merged = wasai::wasai_smt::SolverCache::evicting();
            wasai::wasai_smt::persist::load_into(Path::new(file), &merged)?;
            for shard in shard_paths.borrow().iter() {
                wasai::wasai_smt::persist::load_into(Path::new(shard), &merged)?;
            }
            save_solver_cache(file, &merged)?;
            for shard in shard_paths.borrow().iter() {
                let _ = fs::remove_file(shard);
            }
        }
    }
    let wall = start.elapsed();
    drop(journal);

    // Render the report from the index-keyed slots. Per-contract failures
    // (including crashed shards) are triaged, not fatal: a sweep survives
    // malformed, panicking, hanging, or worker-killing binaries.
    let mut vulnerable = 0usize;
    let mut clean = 0usize;
    let mut failures = 0usize;
    let mut triage_lines = Vec::with_capacity(slots.len());
    let mut virtual_us = 0u64;
    for (i, slot) in slots.iter().enumerate() {
        let Some(rec) = slot else {
            return Err(format!(
                "internal error: campaign {i} finished without an outcome record"
            ));
        };
        if rec.outcome == "ok" {
            let truncated = if rec.truncated { ", truncated" } else { "" };
            if rec.findings.is_empty() {
                clean += 1;
                println!(
                    "{}: clean ({} branches{truncated})",
                    rec.contract, rec.branches
                );
            } else {
                vulnerable += 1;
                println!("{}: VULNERABLE — {}{truncated}", rec.contract, rec.findings);
            }
            virtual_us += rec.virtual_us;
        } else {
            failures += 1;
            println!("{}: {} — {}", rec.contract, rec.outcome, rec.detail);
        }
        // The per-contract audit timeline: deterministic stage/vtime
        // breakdowns and work counters before the wall-clock tail (CI's
        // byte-identity diffs strip only `elapsed_ms`).
        triage_lines.push(format!(
            "{{\"contract\":\"{}\",\"index\":{i},\"outcome\":\"{}\",\"stage\":\"{}\",\"detail\":\"{}\",\"seed\":{},\"truncated\":{},\"branches\":{},\"virtual_us\":{},\"exec_us\":{},\"solve_us\":{},\"iterations\":{},\"smt_queries\":{},\"elapsed_ms\":{}}}",
            json_escape(&rec.contract),
            rec.outcome,
            rec.stage,
            json_escape(&rec.detail),
            rec.seed,
            rec.truncated,
            rec.branches,
            rec.virtual_us,
            rec.exec_us,
            rec.solve_us,
            rec.iterations,
            rec.smt_queries,
            rec.elapsed_ms,
        ));
    }

    let stats = wasai::wasai_core::FleetStats {
        jobs: jobs.max(1),
        campaigns: slots.len(),
        virtual_us,
        wall,
    };
    println!(
        "\n{} contracts: {} vulnerable, {} clean, {} failed",
        slots.len(),
        vulnerable,
        clean,
        failures,
    );
    println!("{}", stats.summary());

    if let Some(path) = &opts.triage_path {
        fs::write(path, triage_lines.join("\n") + "\n").map_err(|e| format!("{path}: {e}"))?;
        eprintln!("triage report written to {path}");
    }
    if let Some(path) = &opts.trace_path {
        let body = if trace_lines.is_empty() {
            String::new()
        } else {
            trace_lines.join("\n") + "\n"
        };
        fs::write(path, body).map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "telemetry trace written to {path} ({} events)",
            trace_lines.len()
        );
    }
    if let Some(path) = &opts.profile_path {
        // Spans in sweep order from the deterministic record fields — any
        // WASAI_JOBS or --procs value folds to the same bytes.
        let spans: Vec<profile::ProfileSpan> = slots
            .iter()
            .flatten()
            .map(|rec| profile::ProfileSpan {
                campaign: rec.contract.clone(),
                exec_us: rec.exec_us,
                solve_us: rec.solve_us,
            })
            .collect();
        fs::write(path, profile::folded_stacks(&spans)).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("span profile written to {path} ({} campaigns)", spans.len());
    }
    // Finish observability last (the dump reflects the whole run, and the
    // listener's linger window must not delay the triage/trace files that
    // scrapers wait on).
    obs_finish(session, &opts.obs)?;

    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

/// The internal worker entrypoint behind `audit-dir --procs` (spawned by
/// the supervisor, never meant to be typed by hand): audit the given
/// campaign indices of `dir`'s sorted corpus on the in-process thread
/// fleet, streaming the status protocol on stdout — one digest-checked
/// outcome record per completed campaign, periodic heartbeat and seed-count
/// relays, and a terminal `{"type":"done"}` marker.
fn audit_worker(dir: &str, w: &WorkerArgs) -> Result<(), String> {
    let indices = &w.indices;
    let (wasm_paths, names) = corpus(dir)?;
    if let Some(&bad) = indices.iter().find(|&&i| i >= names.len()) {
        return Err(format!(
            "--indices {bad}: corpus has only {} contracts",
            names.len()
        ));
    }
    // The registry and heartbeat table feed the status relay, so a worker
    // is always instrumented; the supervisor decides what to surface.
    obs::enable();
    let deadline = match w.deadline_secs {
        Some(secs) if secs > 0.0 => Deadline::after_secs(secs),
        Some(_) => Deadline::NONE,
        None => fleet::deadline_from_env(),
    };
    let jobs = wasai::wasai_core::jobs_from_env();
    // Warm-start from the shared cache file; additions are saved to this
    // worker's private shard (the supervisor merges shards afterwards), so
    // concurrent workers never write the same file.
    let solver_cache = open_solver_cache(w.solver_cache_in.as_deref())?;

    // Heartbeat/stats pump: relay this process's heartbeat table and seed
    // counter upstream a few times a second. `println!` holds the stdout
    // lock for the whole call, so protocol lines never interleave; stdout
    // is line-buffered, so completed lines survive even an abort().
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let pump = {
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            use std::sync::atomic::Ordering;
            while !stop.load(Ordering::Relaxed) {
                for r in obs::heartbeats().snapshot() {
                    println!(
                        "{{\"type\":\"hb\",\"slot\":{},\"campaign\":{},\"ticks\":{},\"stage\":\"{}\"}}",
                        r.slot,
                        r.campaign,
                        r.ticks,
                        r.stage.name()
                    );
                }
                println!(
                    "{{\"type\":\"stats\",\"seeds\":{}}}",
                    obs::global().counter(obs::Counter::SeedsExecuted)
                );
                // Full-registry snapshot frame: every counter, gauge, and
                // histogram bucket crosses to the supervisor, which merges
                // the delta since our previous frame. Losing one frame
                // (e.g. a kill mid-line) only costs latency — the next
                // frame's cumulative absolutes supersede it.
                println!(
                    "{}",
                    obs::RegistrySnapshot::capture(obs::global()).to_frame()
                );
                std::thread::sleep(Duration::from_millis(200));
            }
        })
    };

    let ctx = CampaignCtx {
        seed: w.seed,
        deadline,
        tracing: false,
        substrate: w.substrate,
        solver_cache,
        portfolio_k: w.portfolio_k,
    };
    let audit_one = |i: usize, path: PathBuf| audit_campaign(i, &path, &ctx);
    // Serializes per-campaign shard saves across the worker's job threads.
    let shard_save_lock = std::sync::Mutex::new(());
    let items: Vec<(usize, PathBuf)> = indices
        .iter()
        .map(|&i| (i, wasm_paths[i].clone()))
        .collect();
    fleet::run_jobs(jobs, items, |_, (gi, path)| {
        // Proc-level chaos faults are honored here, and only here: the
        // thread scheduler ignores them, so the same WASAI_CHAOS plan run
        // unsupervised is undisturbed.
        match chaos::fault_at(gi) {
            Some(chaos::Fault::KillProc) => {
                eprintln!("chaos: aborting worker process at campaign {gi}");
                std::process::abort();
            }
            Some(chaos::Fault::StallProc) => {
                eprintln!("chaos: stalling worker process at campaign {gi}");
                std::thread::sleep(Duration::from_secs(3600));
            }
            _ => {}
        }
        let run = fleet::run_campaign_isolated(gi, path, deadline, &audit_one);
        // Persist the shard BEFORE announcing the record: the supervisor
        // kills workers as soon as every campaign is accounted for, so the
        // save must already be durable when the last record line lands.
        // Atomic tmp+rename saves mean a kill leaves the previous complete
        // shard, never a torn one.
        if let Some(out) = w.solver_cache_out.as_deref() {
            let _guard = shard_save_lock.lock().unwrap_or_else(|p| p.into_inner());
            if let Err(e) = wasai::wasai_smt::persist::save(Path::new(out), &ctx.solver_cache) {
                eprintln!("warning: solver cache shard {out}: {e}");
            }
        }
        let rec = record_from_run(gi, &names[gi], w.seed ^ gi as u64, &run);
        // Frame-before-record: the supervisor tears down as soon as every
        // campaign is accounted for, so the snapshot carrying this
        // campaign's counts must precede the record announcing it — the
        // exit frame below can lose the race and only costs gauge latency.
        println!(
            "{}",
            obs::RegistrySnapshot::capture(obs::global()).to_frame()
        );
        println!("{}", rec.to_jsonl());
    });
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let _ = pump.join();
    println!(
        "{{\"type\":\"stats\",\"seeds\":{}}}",
        obs::global().counter(obs::Counter::SeedsExecuted)
    );
    // Exit frame: the authoritative final registry state, emitted after
    // the fleet has quiesced so the supervisor's totals are exact even if
    // every periodic frame was missed.
    println!(
        "{}",
        obs::RegistrySnapshot::capture(obs::global()).to_frame()
    );
    println!("{{\"type\":\"done\"}}");
    Ok(())
}

/// Parsed `audit-worker` invocation (everything after the directory).
struct WorkerArgs {
    seed: u64,
    indices: Vec<usize>,
    deadline_secs: Option<f64>,
    substrate: Option<SubstrateKind>,
    /// `--solver-cache FILE`: shared warm-start source (read only).
    solver_cache_in: Option<String>,
    /// `--solver-cache-out FILE`: this worker's private shard (write only).
    solver_cache_out: Option<String>,
    portfolio_k: usize,
}

/// Parse `audit-worker`'s tail: `--seed N --indices CSV [--deadline-secs S]
/// [--substrate NAME] [--solver-cache FILE] [--solver-cache-out FILE]
/// [--portfolio K]`.
fn parse_audit_worker_args(rest: &[String]) -> Result<WorkerArgs, String> {
    let mut seed = None;
    let mut indices = None;
    let mut deadline = None;
    let mut substrate = None;
    let mut solver_cache_in = None;
    let mut solver_cache_out = None;
    let mut portfolio_k = 1usize;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--substrate" => {
                let v = it.next().ok_or("--substrate needs a value")?;
                substrate = parse_substrate(v)?;
            }
            "--solver-cache" => {
                let v = it.next().ok_or("--solver-cache needs a file path")?;
                solver_cache_in = Some(v.clone());
            }
            "--solver-cache-out" => {
                let v = it.next().ok_or("--solver-cache-out needs a file path")?;
                solver_cache_out = Some(v.clone());
            }
            "--portfolio" => {
                let v = it.next().ok_or("--portfolio needs a width")?;
                portfolio_k = v.parse().map_err(|e| format!("--portfolio {v}: {e}"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = Some(v.parse().map_err(|e| format!("--seed {v}: {e}"))?);
            }
            "--indices" => {
                let v = it.next().ok_or("--indices needs a comma-separated list")?;
                let mut list = Vec::new();
                for part in v.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                    list.push(
                        part.parse()
                            .map_err(|e| format!("--indices {part:?}: {e}"))?,
                    );
                }
                indices = Some(list);
            }
            "--deadline-secs" => {
                let v = it.next().ok_or("--deadline-secs needs a value")?;
                deadline = Some(v.parse().map_err(|e| format!("--deadline-secs {v}: {e}"))?);
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(WorkerArgs {
        seed: seed.ok_or("audit-worker needs --seed")?,
        indices: indices.ok_or("audit-worker needs --indices")?,
        deadline_secs: deadline,
        substrate,
        solver_cache_in,
        solver_cache_out,
        portfolio_k,
    })
}

fn gen(
    out_dir: &str,
    count: usize,
    seed: u64,
    substrate: Option<SubstrateKind>,
) -> Result<(), String> {
    if substrate == Some(SubstrateKind::Cosmwasm) {
        return gen_cw(out_dir, count, seed);
    }
    fs::create_dir_all(out_dir).map_err(|e| e.to_string())?;
    let corpus = wild_corpus(seed, count, wasai::wasai_corpus::WildRates::default());
    for (i, w) in corpus.iter().enumerate() {
        let base = format!("{out_dir}/contract_{i:04}");
        fs::write(format!("{base}.wasm"), encode::encode(&w.deployed.module))
            .map_err(|e| e.to_string())?;
        let abi_text: String = w
            .deployed
            .abi
            .actions
            .iter()
            .map(|a| {
                let tys: Vec<String> = a.params.iter().map(|t| t.to_string()).collect();
                format!("{}({})\n", a.name, tys.join(","))
            })
            .collect();
        fs::write(format!("{base}.abi"), abi_text).map_err(|e| e.to_string())?;
        let label: Vec<String> = w.deployed.label.iter().map(|c| c.to_string()).collect();
        fs::write(format!("{base}.label"), label.join(",") + "\n").map_err(|e| e.to_string())?;
    }
    println!("wrote {count} contracts (+.abi/.label sidecars) to {out_dir}");
    Ok(())
}

/// `gen --substrate cosmwasm`: write the labeled CosmWasm ground-truth
/// corpus. The `.abi` sidecar lists the entry exports in the same
/// `name(type,…)` line format as EOSIO sidecars so `audit-dir` loads both
/// corpora identically; labels use the shared comma-joined class schema.
fn gen_cw(out_dir: &str, count: usize, seed: u64) -> Result<(), String> {
    fs::create_dir_all(out_dir).map_err(|e| e.to_string())?;
    let corpus = cw_corpus(seed, count);
    for (i, c) in corpus.iter().enumerate() {
        let base = format!("{out_dir}/cw_contract_{i:04}");
        fs::write(format!("{base}.wasm"), encode::encode(&c.module)).map_err(|e| e.to_string())?;
        let abi_text: String = ["instantiate", "execute", "query", "reply"]
            .iter()
            .filter(|name| c.module.exported_func(name).is_some())
            .map(|name| format!("{name}(i64,i64,i64)\n"))
            .collect();
        fs::write(format!("{base}.abi"), abi_text).map_err(|e| e.to_string())?;
        fs::write(format!("{base}.label"), label_sidecar(&c.label)).map_err(|e| e.to_string())?;
    }
    println!("wrote {count} cosmwasm contracts (+.abi/.label sidecars) to {out_dir}");
    Ok(())
}

/// Summarize a JSONL telemetry trace (`--trace-out`), a triage report
/// (`--triage`), or a metrics dump (`--metrics-dump`) as a human-readable
/// table.
///
/// The formats are distinguished structurally: a metrics dump is one
/// pretty-printed JSON object (first line is a bare `{`), trace lines carry
/// `"event"`, triage lines carry `"contract"`.
/// Split a `shard="N"` label out of a Prometheus series name, returning the
/// name with the remaining labels intact: `wasai_campaigns_total{outcome="ok",shard="1"}`
/// becomes `(wasai_campaigns_total{outcome="ok"}, Some(1))`.
fn split_shard(series: &str) -> (String, Option<usize>) {
    let (Some(open), Some(close)) = (series.find('{'), series.rfind('}')) else {
        return (series.to_string(), None);
    };
    let mut kept = Vec::new();
    let mut shard = None;
    for part in series[open + 1..close].split(',') {
        match part
            .strip_prefix("shard=\"")
            .and_then(|r| r.strip_suffix('"'))
        {
            Some(v) => shard = v.parse().ok(),
            None if !part.is_empty() => kept.push(part),
            None => {}
        }
    }
    let base = if kept.is_empty() {
        series[..open].to_string()
    } else {
        format!("{}{{{}}}", &series[..open], kept.join(","))
    };
    (base, shard)
}

/// Render one `name -> value` table block, hiding zero series like the
/// single-registry view.
fn render_series_table(rows: &[(String, &telemetry::JsonValue)]) {
    let mut zeros = 0usize;
    for (name, value) in rows {
        match value.as_f64() {
            Some(0.0) => zeros += 1,
            Some(_) => match value.as_num() {
                Some(n) => println!("  {name:<48} {n:>12}"),
                None => println!("  {name:<48} {:>12}", value.as_f64().unwrap_or(0.0)),
            },
            None => println!("  {name:<48} {:>12}", value.as_str().unwrap_or("?")),
        }
    }
    if zeros > 0 {
        println!("  ({zeros} zero series not shown)");
    }
}

fn stats_cmd(path: &str, format: &str, fleet: bool) -> Result<(), String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let first = text
        .lines()
        .find(|l| !l.trim().is_empty())
        .ok_or_else(|| format!("{path}: empty file"))?;
    if first.trim() == "{" {
        // A `--metrics-dump` snapshot: one flat object keyed by Prometheus
        // series names. Render the non-zero series (this is where solver
        // counters with no telemetry event live, e.g.
        // `wasai_smt_cache_store_dropped_total`).
        let fields = telemetry::parse_json_fields(&text).map_err(|e| format!("{path}: {e}"))?;
        if format == "json" {
            print!("{text}");
            return Ok(());
        }
        if fleet {
            // Group `shard="N"` series under their shard; everything else is
            // the fleet-total rollup.
            let mut totals: Vec<(String, &telemetry::JsonValue)> = Vec::new();
            let mut shards =
                std::collections::BTreeMap::<usize, Vec<(String, &telemetry::JsonValue)>>::new();
            for (name, value) in &fields {
                match split_shard(name) {
                    (base, Some(id)) => shards.entry(id).or_default().push((base, value)),
                    (base, None) => totals.push((base, value)),
                }
            }
            println!(
                "fleet metrics {path}: {} series across {} shard(s)\n",
                fields.len(),
                shards.len()
            );
            println!("fleet totals:");
            render_series_table(&totals);
            for (id, rows) in &shards {
                println!("\nshard {id}:");
                render_series_table(rows);
            }
            return Ok(());
        }
        println!("metrics {path}: {} series\n", fields.len());
        let rows: Vec<(String, &telemetry::JsonValue)> = fields
            .iter()
            .map(|(name, value)| (name.clone(), value))
            .collect();
        render_series_table(&rows);
        return Ok(());
    }
    if fleet {
        return Err(format!(
            "{path}: --fleet requires a --metrics-dump snapshot (traces and triage reports have no shard series)"
        ));
    }
    let fields = telemetry::parse_json_fields(first).map_err(|e| format!("{path}: {e}"))?;
    if fields.contains_key("event") {
        let events = telemetry::parse_trace(&text).map_err(|e| format!("{path}: {e}"))?;
        let metrics = Metrics::from_events(events.iter().map(|(_, ev)| ev));
        if format == "json" {
            // Machine-readable, keyed by the same Prometheus series names
            // the live `/metrics` exposition uses.
            print!("{}", obs_bridge::metrics_json(&metrics));
            return Ok(());
        }
        let campaigns: std::collections::BTreeSet<usize> = events.iter().map(|&(c, _)| c).collect();
        println!(
            "trace {path}: {} events across {} campaign(s)\n",
            events.len(),
            campaigns.len()
        );
        print!("{}", metrics.render());
        Ok(())
    } else if format == "json" {
        Err(format!(
            "{path}: --format json requires a telemetry trace (triage reports are already JSON lines)"
        ))
    } else if fields.contains_key("contract") {
        let mut by_outcome = std::collections::BTreeMap::<String, usize>::new();
        let mut failed_stages = std::collections::BTreeMap::<String, usize>::new();
        let mut total = 0usize;
        let mut elapsed_ms = 0u64;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let rec = telemetry::parse_json_fields(line)
                .map_err(|e| format!("{path} line {}: {e}", lineno + 1))?;
            let outcome = rec
                .get("outcome")
                .and_then(|v| v.as_str())
                .unwrap_or("unknown")
                .to_string();
            if outcome != "ok" {
                let stage = rec
                    .get("stage")
                    .and_then(|v| v.as_str())
                    .unwrap_or("unknown")
                    .to_string();
                *failed_stages.entry(stage).or_default() += 1;
            }
            *by_outcome.entry(outcome).or_default() += 1;
            elapsed_ms += rec.get("elapsed_ms").and_then(|v| v.as_num()).unwrap_or(0);
            total += 1;
        }
        println!("triage {path}: {total} contract(s), {elapsed_ms} ms total wall clock\n");
        println!("by outcome:");
        for (outcome, n) in &by_outcome {
            println!("  {outcome:<10} {n:>5}");
        }
        if !failed_stages.is_empty() {
            println!("non-ok by stage:");
            for (stage, n) in &failed_stages {
                println!("  {stage:<10} {n:>5}");
            }
        }
        Ok(())
    } else {
        Err(format!(
            "{path}: neither a telemetry trace (no \"event\" field) nor a triage report (no \"contract\" field)"
        ))
    }
}

fn show(wasm_path: &str) -> Result<(), String> {
    let bytes = fs::read(wasm_path).map_err(|e| format!("{wasm_path}: {e}"))?;
    let module = decode::decode(&bytes).map_err(|e| format!("{wasm_path}: {e}"))?;
    println!("{}", display::module_to_string(&module));
    Ok(())
}

/// Parse `audit-dir`'s tail: positional `[seed]` plus `--deadline-secs S`,
/// `--triage FILE`, `--trace-out FILE`, and the observability flags, in any
/// order.
fn parse_audit_dir_args(rest: &[String]) -> Result<(u64, AuditDirOpts), String> {
    let mut seed = 0xe05u64;
    let mut seed_seen = false;
    let mut opts = AuditDirOpts::default();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if opts.obs.parse_flag(arg, &mut it)? {
            continue;
        }
        match arg.as_str() {
            "--deadline-secs" => {
                let v = it.next().ok_or("--deadline-secs needs a value")?;
                opts.deadline_secs =
                    Some(v.parse().map_err(|e| format!("--deadline-secs {v}: {e}"))?);
            }
            "--triage" => {
                let v = it.next().ok_or("--triage needs a file path")?;
                opts.triage_path = Some(v.clone());
            }
            "--trace-out" => {
                let v = it.next().ok_or("--trace-out needs a file path")?;
                opts.trace_path = Some(v.clone());
            }
            "--procs" => {
                let v = it.next().ok_or("--procs needs a count")?;
                opts.procs = Some(v.parse().map_err(|e| format!("--procs {v}: {e}"))?);
            }
            "--journal" => {
                let v = it.next().ok_or("--journal needs a file path")?;
                opts.journal_path = Some(v.clone());
            }
            "--resume" => {
                let v = it.next().ok_or("--resume needs a journal file path")?;
                opts.resume_path = Some(v.clone());
            }
            "--substrate" => {
                let v = it.next().ok_or("--substrate needs a value")?;
                opts.substrate = parse_substrate(v)?;
            }
            "--solver-cache" => {
                let v = it.next().ok_or("--solver-cache needs a file path")?;
                opts.solver_cache_path = Some(v.clone());
            }
            "--portfolio" => {
                let v = it.next().ok_or("--portfolio needs a width")?;
                opts.portfolio_k = Some(v.parse().map_err(|e| format!("--portfolio {v}: {e}"))?);
            }
            "--profile-out" => {
                let v = it.next().ok_or("--profile-out needs a file path")?;
                opts.profile_path = Some(v.clone());
            }
            other if !seed_seen => {
                seed = other
                    .parse()
                    .map_err(|e| format!("bad seed {other:?}: {e}"))?;
                seed_seen = true;
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok((seed, opts))
}

/// Parse `audit`'s tail: positional `<wasm> <abi>` plus `--trace-out FILE`,
/// `--solver-cache FILE`, `--portfolio K` and the observability flags, in
/// any order.
fn parse_audit_args(rest: &[String]) -> Result<AuditArgs, String> {
    let mut positional: Vec<String> = Vec::new();
    let mut trace_out = None;
    let mut substrate = None;
    let mut solver_cache = None;
    let mut portfolio_k = None;
    let mut profile_out = None;
    let mut obs_opts = ObsOpts::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if obs_opts.parse_flag(arg, &mut it)? {
            continue;
        }
        match arg.as_str() {
            "--trace-out" => {
                let v = it.next().ok_or("--trace-out needs a file path")?;
                trace_out = Some(v.clone());
            }
            "--substrate" => {
                let v = it.next().ok_or("--substrate needs a value")?;
                substrate = parse_substrate(v)?;
            }
            "--solver-cache" => {
                let v = it.next().ok_or("--solver-cache needs a file path")?;
                solver_cache = Some(v.clone());
            }
            "--portfolio" => {
                let v = it.next().ok_or("--portfolio needs a width")?;
                portfolio_k = Some(v.parse().map_err(|e| format!("--portfolio {v}: {e}"))?);
            }
            "--profile-out" => {
                let v = it.next().ok_or("--profile-out needs a file path")?;
                profile_out = Some(v.clone());
            }
            other if !other.starts_with("--") && positional.len() < 2 => {
                positional.push(other.to_string());
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    let [wasm, abi] = positional.try_into().map_err(|p: Vec<String>| {
        format!(
            "audit needs <contract.wasm> <contract.abi>, got {} positional args",
            p.len()
        )
    })?;
    Ok(AuditArgs {
        wasm,
        abi,
        trace_out,
        substrate,
        solver_cache,
        portfolio_k,
        profile_out,
        obs: obs_opts,
    })
}

/// Parse `stats`'s tail: `--format table|json` and `--fleet`, in any order.
fn parse_stats_args(rest: &[String]) -> Result<(String, bool), String> {
    let mut format = "table".to_string();
    let mut fleet = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                match v.as_str() {
                    "table" | "json" => format = v.clone(),
                    other => return Err(format!("--format must be table or json, got {other:?}")),
                }
            }
            "--fleet" => fleet = true,
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok((format, fleet))
}

/// Parse `gen`'s tail: positional `[count] [seed]` plus an optional
/// `--substrate NAME` anywhere.
///
/// A malformed count or seed is a usage error, not a silent fallback: the
/// old `.parse().ok().unwrap_or(…)` pattern turned `wasai gen out 1O0`
/// (typo'd letter O) into a 10-contract corpus with no hint anything was
/// wrong — poison for reproducibility scripts that record the command line.
fn parse_gen_args(rest: &[String]) -> Result<(usize, u64, Option<SubstrateKind>), String> {
    let mut positional = Vec::new();
    let mut substrate = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if arg == "--substrate" {
            let v = it.next().ok_or("--substrate needs a value")?;
            substrate = parse_substrate(v)?;
        } else {
            positional.push(arg.clone());
        }
    }
    if positional.len() > 2 {
        return Err(format!(
            "gen takes at most [count] [seed], got {} positional args",
            positional.len()
        ));
    }
    let count = match positional.first() {
        Some(v) => v.parse().map_err(|e| format!("gen count {v:?}: {e}"))?,
        None => 10,
    };
    let seed = match positional.get(1) {
        Some(v) => v.parse().map_err(|e| format!("gen seed {v:?}: {e}"))?,
        None => 1,
    };
    Ok((count, seed, substrate))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let usage = "usage:\n  wasai audit <contract.wasm> <contract.abi> [--trace-out FILE] [--substrate eosio|cosmwasm|auto]\n              [--solver-cache FILE] [--portfolio K] [--profile-out FILE] [obs flags]\n  wasai audit-dir <dir> [seed] [--deadline-secs S] [--triage FILE] [--trace-out FILE]\n                  [--procs N] [--journal FILE] [--resume FILE] [--substrate eosio|cosmwasm|auto]\n                  [--solver-cache FILE] [--portfolio K] [--profile-out FILE] [obs flags]\n  wasai stats <trace-triage-or-metrics.json[l]> [--format table|json] [--fleet]\n  wasai gen <out-dir> [count] [seed] [--substrate eosio|cosmwasm]\n  wasai show <contract.wasm>\n\nobs flags: --metrics-addr HOST:PORT | --metrics-dump FILE | --progress | --no-progress | --stall-secs N";
    let result: Result<ExitCode, String> = match args.get(1).map(String::as_str) {
        Some("audit") if args.len() >= 4 => parse_audit_args(&args[2..])
            .and_then(|parsed| audit(&parsed).map(|()| ExitCode::SUCCESS)),
        Some("audit-dir") if args.len() >= 3 => parse_audit_dir_args(&args[3..])
            .and_then(|(seed, opts)| audit_dir(&args[2], seed, &opts)),
        Some("audit-worker") if args.len() >= 3 => parse_audit_worker_args(&args[3..])
            .and_then(|parsed| audit_worker(&args[2], &parsed).map(|()| ExitCode::SUCCESS)),
        Some("stats") if args.len() >= 3 => parse_stats_args(&args[3..])
            .and_then(|(format, fleet)| stats_cmd(&args[2], &format, fleet))
            .map(|()| ExitCode::SUCCESS),
        Some("gen") if args.len() >= 3 => parse_gen_args(&args[3..])
            .and_then(|(count, seed, sub)| gen(&args[2], count, seed, sub))
            .map(|()| ExitCode::SUCCESS),
        Some("show") if args.len() == 3 => show(&args[2]).map(|()| ExitCode::SUCCESS),
        _ => Err(usage.to_string()),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn gen_defaults_when_no_positionals() {
        let (count, seed, sub) = parse_gen_args(&[]).expect("defaults parse");
        assert_eq!((count, seed), (10, 1));
        assert!(sub.is_none());
    }

    #[test]
    fn gen_malformed_count_is_a_usage_error_not_a_fallback() {
        // The regression: `1O0` (letter O) used to silently become count=10.
        let err = parse_gen_args(&strs(&["1O0"])).unwrap_err();
        assert!(err.contains("gen count \"1O0\""), "got {err:?}");
        let err = parse_gen_args(&strs(&["5", "0x12"])).unwrap_err();
        assert!(err.contains("gen seed \"0x12\""), "got {err:?}");
    }

    #[test]
    fn gen_rejects_extra_positionals() {
        let err = parse_gen_args(&strs(&["5", "9", "7"])).unwrap_err();
        assert!(err.contains("at most"), "got {err:?}");
    }

    #[test]
    fn gen_parses_count_seed_and_substrate_anywhere() {
        let (count, seed, sub) =
            parse_gen_args(&strs(&["8", "--substrate", "cosmwasm", "42"])).expect("parses");
        assert_eq!((count, seed), (8, 42));
        assert_eq!(sub, Some(SubstrateKind::Cosmwasm));
    }

    #[test]
    fn audit_dir_parses_solver_cache_and_portfolio() {
        let (seed, opts) = parse_audit_dir_args(&strs(&[
            "7",
            "--solver-cache",
            "warm.cache",
            "--portfolio",
            "3",
        ]))
        .expect("parses");
        assert_eq!(seed, 7);
        assert_eq!(opts.solver_cache_path.as_deref(), Some("warm.cache"));
        assert_eq!(opts.portfolio_k, Some(3));
    }

    #[test]
    fn audit_worker_parses_cache_shard_flags() {
        let w = parse_audit_worker_args(&strs(&[
            "--seed",
            "9",
            "--indices",
            "0,2",
            "--solver-cache",
            "warm.cache",
            "--solver-cache-out",
            "warm.cache.shard-0",
            "--portfolio",
            "2",
        ]))
        .expect("parses");
        assert_eq!(w.seed, 9);
        assert_eq!(w.indices, vec![0, 2]);
        assert_eq!(w.solver_cache_in.as_deref(), Some("warm.cache"));
        assert_eq!(w.solver_cache_out.as_deref(), Some("warm.cache.shard-0"));
        assert_eq!(w.portfolio_k, 2);
    }

    #[test]
    fn audit_args_parse_solver_cache() {
        let a = parse_audit_args(&strs(&[
            "c.wasm",
            "c.abi",
            "--solver-cache",
            "warm.cache",
            "--portfolio",
            "4",
        ]))
        .expect("parses");
        assert_eq!(a.wasm, "c.wasm");
        assert_eq!(a.solver_cache.as_deref(), Some("warm.cache"));
        assert_eq!(a.portfolio_k, Some(4));
    }

    #[test]
    fn audit_args_parse_profile_out() {
        let a = parse_audit_args(&strs(&["c.wasm", "c.abi", "--profile-out", "p.folded"]))
            .expect("parses");
        assert_eq!(a.profile_out.as_deref(), Some("p.folded"));
        let err = parse_audit_args(&strs(&["c.wasm", "c.abi", "--profile-out"])).unwrap_err();
        assert!(err.contains("--profile-out"), "got {err:?}");
    }

    #[test]
    fn audit_dir_parses_profile_out_anywhere() {
        let (seed, opts) =
            parse_audit_dir_args(&strs(&["--profile-out", "sweep.folded", "11"])).expect("parses");
        assert_eq!(seed, 11);
        assert_eq!(opts.profile_path.as_deref(), Some("sweep.folded"));
    }

    #[test]
    fn stats_args_default_and_flags() {
        assert_eq!(
            parse_stats_args(&[]).expect("defaults"),
            ("table".into(), false)
        );
        assert_eq!(
            parse_stats_args(&strs(&["--fleet"])).expect("fleet"),
            ("table".into(), true)
        );
        assert_eq!(
            parse_stats_args(&strs(&["--format", "json", "--fleet"])).expect("both"),
            ("json".into(), true)
        );
        let err = parse_stats_args(&strs(&["--format", "yaml"])).unwrap_err();
        assert!(err.contains("table or json"), "got {err:?}");
        let err = parse_stats_args(&strs(&["--shard"])).unwrap_err();
        assert!(err.contains("unexpected argument"), "got {err:?}");
    }

    #[test]
    fn split_shard_extracts_the_label_and_keeps_the_rest() {
        assert_eq!(
            split_shard("wasai_seeds_executed_total"),
            ("wasai_seeds_executed_total".into(), None)
        );
        assert_eq!(
            split_shard("wasai_seeds_executed_total{shard=\"3\"}"),
            ("wasai_seeds_executed_total".into(), Some(3))
        );
        assert_eq!(
            split_shard("wasai_campaigns_total{outcome=\"ok\",shard=\"1\"}"),
            ("wasai_campaigns_total{outcome=\"ok\"}".into(), Some(1))
        );
        assert_eq!(
            split_shard("wasai_campaign_wall_seconds_bucket{le=\"0.1\",shard=\"0\"}"),
            (
                "wasai_campaign_wall_seconds_bucket{le=\"0.1\"}".into(),
                Some(0)
            )
        );
    }
}
